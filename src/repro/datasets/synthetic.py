"""Generator families behind the synthetic benchmark datasets.

Three information structures drive Table 1 of the paper, and each family
below isolates one of them:

- :func:`make_prototype_dataset` -- *positional* signal: every class has
  a per-position prototype.  To control how much an order-free encoder
  (ngram) can recover, prototypes are assembled from a **shared motif
  alphabet** arranged in class-specific orders: the local windows inside
  a motif appear in every class, so only boundary windows leak local
  signal.  Models ISOLET / MNIST / FACE / UCIHAR / PAMAP2.
- :func:`make_motif_dataset` -- *translation-invariant local* signal:
  class-specific short motifs are planted at random offsets on a
  zero-mean background, so per-position means carry nothing (random
  projection fails) while windowed encoders thrive.  Models EEG / EMG.
- :func:`make_markov_dataset` -- *order-free n-gram* signal: symbol
  sequences from class-specific Markov transition tables whose stationary
  statistics are equalized in mean, so only local transitions
  discriminate.  Models LANG.
- :func:`make_tabular_dataset` -- classic class-conditional Gaussians
  with optional adjacent-pair interactions.  Models CARDIO / PAGE / DNA.

All generators take an explicit seed and return ``(X, y)``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def _smooth(rng: np.random.Generator, length: int, passes: int = 2) -> np.ndarray:
    """Random vector smoothed by repeated 3-tap averaging (band-limited)."""
    v = rng.normal(size=length)
    for _ in range(passes):
        v = np.convolve(v, [0.25, 0.5, 0.25], mode="same")
    return v


# ---------------------------------------------------------------------------
# prototype family (positional signal, tunable ngram leakage)
# ---------------------------------------------------------------------------

def make_prototype_dataset(
    n_classes: int,
    n_features: int,
    n_samples: int,
    seed: int,
    motif_len: int = 16,
    alphabet_size: int = 8,
    noise: float = 0.4,
    jitter: int = 0,
    boundary_leak: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-class prototypes built from a shared motif alphabet.

    Every class concatenates the *same multiset* of motifs in a
    class-specific order, so window contents are shared across classes
    and only window *positions* (plus motif boundaries) discriminate.

    Parameters
    ----------
    motif_len:
        Length of each alphabet motif; longer motifs mean fewer
        boundary windows, i.e. a harder problem for ngram encoding.
    alphabet_size:
        Number of distinct motifs; smaller alphabets increase window
        collisions between classes.
    noise:
        Standard deviation of the additive Gaussian noise.
    jitter:
        Maximum circular shift applied per sample (translation noise
        that hurts strictly positional methods a little).
    boundary_leak:
        Scale of a small class-specific boundary marker; raising it
        gives ngram partial signal (used to land MNIST's mid-range
        ngram accuracy rather than total failure).
    """
    rng = np.random.default_rng(seed)
    n_slots = max(2, n_features // motif_len)
    usable = n_slots * motif_len
    # lightly smoothed motifs: rough enough that every slot carries strong
    # per-position signal, smooth enough to look like sensor data
    alphabet = np.stack(
        [_smooth(rng, motif_len, passes=1) for _ in range(alphabet_size)]
    )
    alphabet /= np.abs(alphabet).max() or 1.0

    # one shared multiset of slot assignments, permuted per class
    base_slots = rng.integers(0, alphabet_size, size=n_slots)
    prototypes = np.zeros((n_classes, n_features))
    for c in range(n_classes):
        order = rng.permutation(n_slots)
        seq = alphabet[base_slots[order]].reshape(usable)
        if boundary_leak > 0:
            # class-specific boundary markers give ngram a partial foothold
            marks = rng.normal(scale=boundary_leak, size=n_slots)
            for s in range(n_slots):
                seq[s * motif_len] += marks[s]
        prototypes[c, :usable] = seq
        if usable < n_features:
            prototypes[c, usable:] = _smooth(rng, n_features - usable)

    y = rng.integers(0, n_classes, size=n_samples)
    X = prototypes[y] + rng.normal(scale=noise, size=(n_samples, n_features))
    if jitter > 0:
        shifts = rng.integers(-jitter, jitter + 1, size=n_samples)
        for i, s in enumerate(shifts):
            if s:
                X[i] = np.roll(X[i], s)
    return X, y


# ---------------------------------------------------------------------------
# motif family (translation-invariant local signal; RP fails)
# ---------------------------------------------------------------------------

def make_motif_dataset(
    n_classes: int,
    n_features: int,
    n_samples: int,
    seed: int,
    motif_len: int = 6,
    motifs_per_sample: int = 8,
    amplitude: float = 2.0,
    background: float = 0.5,
    histogram_leak: float = 0.0,
    anchored: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """Class-specific motifs planted on zero-mean noise.

    Motifs are sign-balanced (each occurrence is multiplied by a random
    ±1), so per-position and per-sample means are identical across
    classes: a linear random projection sees nothing, while windowed
    encoders match the motif shapes wherever they land.

    Two variants feed the non-window encoders the partial/positional
    signal they show in the paper:

    - ``histogram_leak`` scales the background noise per class (global,
      class-dependent variance -> value-histogram signal; the EEG
      level-id column);
    - ``anchored=True`` plants the motifs at *class-specific fixed
      positions* instead of uniformly random offsets: positional
      encoders learn which positions host activity (the EMG column,
      where level-id and permutation match the windowed encoders) while
      the random sign keeps every mean at zero, so the linear
      projection still fails.
    """
    rng = np.random.default_rng(seed)
    motifs = np.stack(
        [_smooth(rng, motif_len, passes=1) for _ in range(n_classes)]
    )
    motifs *= amplitude / (np.abs(motifs).max(axis=1, keepdims=True) + 1e-12)

    y = rng.integers(0, n_classes, size=n_samples)
    spread = 1.0 + histogram_leak * y / max(1, n_classes - 1)
    X = rng.normal(scale=background, size=(n_samples, n_features)) * spread[:, None]
    max_start = n_features - motif_len
    anchors = None
    if anchored:
        anchors = np.stack(
            [
                rng.choice(max_start + 1, size=motifs_per_sample, replace=False)
                for _ in range(n_classes)
            ]
        )
    for i in range(n_samples):
        c = y[i]
        if anchored:
            starts = anchors[c]
        else:
            starts = rng.integers(0, max_start + 1, size=motifs_per_sample)
        signs = rng.choice([-1.0, 1.0], size=motifs_per_sample)
        for s, sign in zip(starts, signs):
            X[i, s : s + motif_len] += sign * motifs[c]
    return X, y


# ---------------------------------------------------------------------------
# Markov family (order-free n-gram signal; only local transitions matter)
# ---------------------------------------------------------------------------

def make_markov_dataset(
    n_classes: int,
    n_features: int,
    n_samples: int,
    seed: int,
    alphabet_size: int = 12,
    concentration: float = 0.25,
    marginal_leak: float = 0.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Symbol sequences from class-specific Markov chains.

    Each class owns a random transition matrix; sequences are sampled
    from it, so bigram/trigram statistics identify the class while the
    global arrangement is non-stationary noise.  The symbol values are
    re-centered per sample (mean removed), killing linear-projection
    signal; ``marginal_leak`` biases each class's stationary
    distribution slightly so value-histogram methods recover partial
    accuracy (LANG's level-id column).
    """
    rng = np.random.default_rng(seed)
    transitions = np.empty((n_classes, alphabet_size, alphabet_size))
    for c in range(n_classes):
        t = rng.gamma(concentration, size=(alphabet_size, alphabet_size))
        if marginal_leak > 0:
            bias = rng.gamma(1.0, size=alphabet_size)
            t *= 1.0 + marginal_leak * bias[None, :]
        transitions[c] = t / t.sum(axis=1, keepdims=True)

    y = rng.integers(0, n_classes, size=n_samples)
    X = np.empty((n_samples, n_features))
    for i in range(n_samples):
        T = transitions[y[i]]
        state = rng.integers(alphabet_size)
        seq = np.empty(n_features, dtype=np.int64)
        for t_step in range(n_features):
            seq[t_step] = state
            state = rng.choice(alphabet_size, p=T[state])
        values = seq.astype(np.float64)
        X[i] = values - values.mean()  # remove linear (mean) signal
    return X, y


# ---------------------------------------------------------------------------
# tabular family (class-conditional Gaussians + pair interactions)
# ---------------------------------------------------------------------------

def make_tabular_dataset(
    n_classes: int,
    n_features: int,
    n_samples: int,
    seed: int,
    separation: float = 1.2,
    noise: float = 1.0,
    informative_fraction: float = 0.6,
    pair_interaction: float = 0.0,
    binary: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """Class-conditional Gaussian blobs, optionally with XOR-like pairs.

    ``pair_interaction`` injects class signal into the *product* of
    adjacent feature pairs (zero marginal means): a nonlinearity that
    window-based encoders and trees capture but per-feature encoders and
    linear models cannot -- the CARDIO column's mechanism.
    ``binary`` thresholds features to {0, 1} (DNA).
    """
    rng = np.random.default_rng(seed)
    n_informative = max(1, int(n_features * informative_fraction))
    means = np.zeros((n_classes, n_features))
    means[:, :n_informative] = rng.normal(
        scale=separation, size=(n_classes, n_informative)
    )
    y = rng.integers(0, n_classes, size=n_samples)
    X = means[y] + rng.normal(scale=noise, size=(n_samples, n_features))
    if pair_interaction > 0:
        # adjacent pairs whose signs correlate per class (zero mean each)
        n_pairs = n_features // 2
        pair_signs = rng.choice([-1.0, 1.0], size=(n_classes, n_pairs))
        signs = rng.choice([-1.0, 1.0], size=(n_samples, n_pairs))
        for p in range(n_pairs):
            a, b = 2 * p, 2 * p + 1
            target = pair_signs[y, p] * signs[:, p]
            X[:, a] += pair_interaction * signs[:, p]
            X[:, b] += pair_interaction * target
    if binary:
        X = (X > np.median(X)).astype(np.float64)
    return X, y


# ---------------------------------------------------------------------------
# drift stream (covariate drift via prototype morphing)
# ---------------------------------------------------------------------------

def make_drift_stream(
    n_classes: int,
    n_features: int,
    n_samples: int,
    seed: int,
    drift_start: float = 0.4,
    drift_end: float = 0.6,
    drift_magnitude: float = 1.0,
    noise: float = 0.4,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """An ordered sample stream whose class prototypes morph mid-stream.

    Covariate drift for the streaming experiments: every class ``c`` has
    a pre-drift prototype ``P0[c]`` and a post-drift prototype ``P1[c]``
    (an independent draw, mixed in with weight ``drift_magnitude``).
    Samples are emitted in stream order; between fractions
    ``drift_start`` and ``drift_end`` of the stream the active prototype
    interpolates linearly from ``P0`` to ``P1`` (a gradual regime
    change), before/after it is pure ``P0``/``P1``.  Class labels stay
    balanced and i.i.d. throughout -- only ``P(x | y)`` moves, which is
    exactly the failure mode a frozen model cannot see in its label
    stream but a margin-based drift detector can.

    ``drift_magnitude=1`` replaces the prototypes entirely (a model
    frozen pre-drift decays to chance); smaller values mix old and new.

    Returns ``(X, y, phase)`` where ``phase[i]`` in ``[0, 1]`` is the
    interpolation weight each sample was drawn at (0 = old regime,
    1 = new) -- handy for slicing accuracy-by-regime in the benchmark.
    """
    if not 0.0 <= drift_start <= drift_end <= 1.0:
        raise ValueError(
            f"need 0 <= drift_start <= drift_end <= 1, got "
            f"({drift_start}, {drift_end})"
        )
    rng = np.random.default_rng(seed)
    p0 = np.stack([_smooth(rng, n_features) for _ in range(n_classes)])
    p1_raw = np.stack([_smooth(rng, n_features) for _ in range(n_classes)])
    p1 = (1.0 - drift_magnitude) * p0 + drift_magnitude * p1_raw
    # normalize both regimes to comparable energy so drift changes the
    # *shape* of the classes, not the overall signal scale
    for p in (p0, p1):
        p /= np.abs(p).max() or 1.0

    y = rng.integers(0, n_classes, size=n_samples)
    pos = np.arange(n_samples) / max(1, n_samples - 1)
    if drift_end > drift_start:
        phase = np.clip((pos - drift_start) / (drift_end - drift_start),
                        0.0, 1.0)
    else:  # abrupt drift at the shared boundary
        phase = (pos >= drift_start).astype(np.float64)
    prototypes = (1.0 - phase)[:, None] * p0[y] + phase[:, None] * p1[y]
    X = prototypes + rng.normal(scale=noise, size=(n_samples, n_features))
    return X, y, phase
