"""Synthetic stand-ins for the paper's benchmark datasets.

The paper evaluates on eleven real datasets (UCI + vision/speech) and
five clustering sets (FCPS + Iris).  Those files are not available in
this offline environment, so each dataset is replaced by a deterministic
generator that reproduces the *information structure* that drives
Table 1: where the discriminative signal lives (local motifs, global
positions, value histograms) decides which encoder succeeds.  See
``DESIGN.md`` for the substitution rationale, and
:mod:`repro.datasets.synthetic` for the generator families.
"""

from repro.datasets.base import Dataset
from repro.datasets.fcps import CLUSTER_DATASETS, make_cluster_dataset
from repro.datasets.registry import (
    CLASSIFICATION_DATASETS,
    DatasetSpec,
    load_dataset,
)
from repro.datasets.synthetic import make_drift_stream

__all__ = [
    "CLASSIFICATION_DATASETS",
    "CLUSTER_DATASETS",
    "Dataset",
    "DatasetSpec",
    "load_dataset",
    "make_cluster_dataset",
    "make_drift_stream",
]
