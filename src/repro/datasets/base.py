"""Dataset container shared by the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np


@dataclass
class Dataset:
    """A classification dataset with a fixed train/test split.

    ``use_position_ids`` carries the per-application GENERIC
    configuration from the paper: order-free applications (LANG) run the
    windowed encoding with the id binding disabled (ids set to the XOR
    identity), everything else binds window positions.
    """

    name: str
    X_train: np.ndarray
    y_train: np.ndarray
    X_test: np.ndarray
    y_test: np.ndarray
    use_position_ids: bool = True
    domain: str = "tabular"
    metadata: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.X_train = np.asarray(self.X_train, dtype=np.float64)
        self.X_test = np.asarray(self.X_test, dtype=np.float64)
        self.y_train = np.asarray(self.y_train)
        self.y_test = np.asarray(self.y_test)
        if len(self.X_train) != len(self.y_train):
            raise ValueError(f"{self.name}: train X/y length mismatch")
        if len(self.X_test) != len(self.y_test):
            raise ValueError(f"{self.name}: test X/y length mismatch")
        if self.X_train.shape[1] != self.X_test.shape[1]:
            raise ValueError(f"{self.name}: train/test feature mismatch")

    @property
    def n_features(self) -> int:
        return self.X_train.shape[1]

    @property
    def n_classes(self) -> int:
        return len(np.unique(self.y_train))

    @property
    def n_train(self) -> int:
        return len(self.X_train)

    @property
    def n_test(self) -> int:
        return len(self.X_test)

    def describe(self) -> str:
        return (
            f"{self.name}: d={self.n_features}, classes={self.n_classes}, "
            f"train={self.n_train}, test={self.n_test}, domain={self.domain}"
        )
