"""Reproduction of GENERIC (DAC 2022): an HDC learning engine for the edge.

The package splits the paper's system into four layers:

- :mod:`repro.core` -- the GENERIC encoding and HDC learning algorithms
  (classification with retraining, clustering), plus the baseline HDC
  encodings the paper compares against.
- :mod:`repro.hardware` -- a cycle-approximate simulator of the GENERIC
  ASIC with its energy/area model and the paper's energy-reduction
  techniques (id compression, power gating, dimension reduction, voltage
  over-scaling).
- :mod:`repro.baselines` -- from-scratch NumPy implementations of the ML
  algorithms the paper benchmarks (MLP, SVM, random forest, kNN,
  logistic regression, DNN, K-means).
- :mod:`repro.datasets` / :mod:`repro.platforms` / :mod:`repro.eval` --
  the evaluation substrate: synthetic stand-ins for the paper's
  benchmarks, device energy models, and one experiment module per table
  and figure.
- :mod:`repro.serve` -- a micro-batching inference service over trained
  models with load-shedding via the paper's on-demand dimension
  reduction (imported lazily; see :class:`repro.serve.InferenceServer`).
- :mod:`repro.stream` -- streaming encoding, drift detection, and a
  train-while-serving loop that hot-swaps retrained models into the
  server (imported lazily; see :class:`repro.stream.StreamLoop`).
- :mod:`repro.fleet` -- a simulated federated fleet of edge devices
  training locally and merging class hypervectors under bandwidth
  budgets, published live through any
  :class:`repro.serve.ServingSurface` backend (imported lazily; see
  :class:`repro.fleet.FleetAggregator`).
"""

from repro.core.classifier import HDClassifier
from repro.core.clustering import HDCluster
from repro.core.config import ComputeConfig
from repro.core.online import AdaptiveHDClassifier
from repro.core.packed import PackedModel
from repro.core.encoders import (
    GenericEncoder,
    LevelIdEncoder,
    NgramEncoder,
    PermutationEncoder,
    RandomProjectionEncoder,
    make_encoder,
)
from repro.hardware.accelerator import GenericAccelerator
from repro.version import __version__

__all__ = [
    "AdaptiveHDClassifier",
    "ComputeConfig",
    "GenericAccelerator",
    "GenericEncoder",
    "HDClassifier",
    "HDCluster",
    "PackedModel",
    "LevelIdEncoder",
    "NgramEncoder",
    "PermutationEncoder",
    "RandomProjectionEncoder",
    "__version__",
    "make_encoder",
]
