"""Background retraining: replay the recent window, hot-swap the model.

The Gram-cached retraining engine (:mod:`repro.core.training`) makes a
few-epoch retrain over a replay window of a few hundred samples cost
milliseconds, cheap enough to run *while serving*.  The pieces here:

- :class:`ReplayBuffer` -- a fixed-capacity ring of the most recent
  ``(encoding, label)`` pairs.  Encodings are stored as the encoder's
  int32 output, so a 512-sample window at D=4096 is ~8 MB; raw features
  are *not* kept (the encodings already went through the streaming
  encoder).
- :class:`BackgroundTrainer` -- a daemon thread that waits for retrain
  requests (typically fired by a :class:`~repro.stream.drift.
  DriftDetector` trigger).  A request snapshots the replay window,
  clones the current base classifier, re-initializes the class rows
  observed in the window (``init="window"``, the right choice under
  covariate drift -- the old bundle is *wrong* now, not merely stale),
  replays the paper's retraining rule through
  :func:`repro.core.training.retrain` (``train_engine="auto"`` resolves
  to the Gram engine for integer encodings), and hands the retrained
  clone to ``swap_fn`` -- in the stream loop, an atomic
  :meth:`~repro.serve.registry.ModelRegistry.swap` into the serving
  registry with old-version drain.

A retrain runs entirely on the clone: the serving model, its encoder
tables, and the in-flight batches are untouched until the swap lands.
Requests are latest-wins (a drifting stream may fire faster than a
retrain completes) and debounced by ``min_interval``.  Every retrain is
wrapped in a ``stream.retrain`` trace span recording the trigger
reason, window size, and the resolved engine.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional, Tuple

import numpy as np

from repro.core import training
from repro.core.classifier import HDClassifier
from repro.obs import trace as obs_trace

__all__ = ["ReplayBuffer", "BackgroundTrainer"]

RETRAIN_INITS = ("window", "warm")


class ReplayBuffer:
    """Fixed-capacity ring buffer of recent (encoding, label) pairs."""

    def __init__(self, capacity: int, dim: int, dtype=np.int32):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.dim = dim
        self._enc = np.zeros((capacity, dim), dtype=dtype)
        self._y = np.zeros(capacity, dtype=np.int64)
        self._lock = threading.Lock()
        self._next = 0
        self._count = 0
        self.total_appended = 0

    def __len__(self) -> int:
        with self._lock:
            return self._count

    def append(self, encodings: np.ndarray, labels: np.ndarray) -> None:
        """Append a chunk; oldest samples fall off once full."""
        encodings = np.atleast_2d(encodings)
        labels = np.asarray(labels)
        if len(encodings) != len(labels):
            raise ValueError(
                f"{len(encodings)} encodings vs {len(labels)} labels"
            )
        if encodings.shape[1] != self.dim:
            raise ValueError(
                f"encoding dim {encodings.shape[1]} != buffer dim {self.dim}"
            )
        if len(encodings) > self.capacity:  # only the newest fit anyway
            encodings = encodings[-self.capacity:]
            labels = labels[-self.capacity:]
        with self._lock:
            n = len(encodings)
            first = min(n, self.capacity - self._next)
            self._enc[self._next:self._next + first] = encodings[:first]
            self._y[self._next:self._next + first] = labels[:first]
            if n > first:
                self._enc[:n - first] = encodings[first:]
                self._y[:n - first] = labels[first:]
            self._next = (self._next + n) % self.capacity
            self._count = min(self.capacity, self._count + n)
            self.total_appended += n

    def snapshot(self) -> Tuple[np.ndarray, np.ndarray]:
        """Copy of the buffered window in arrival order (oldest first)."""
        with self._lock:
            if self._count < self.capacity:
                return (self._enc[:self._count].copy(),
                        self._y[:self._count].copy())
            order = np.r_[self._next:self.capacity, 0:self._next]
            return self._enc[order].copy(), self._y[order].copy()


class BackgroundTrainer:
    """Daemon thread turning drift triggers into retrained model versions.

    Parameters
    ----------
    source:
        Zero-arg callable returning the current *base* classifier (the
        un-regenerated, original-dimension-order model).  A callable --
        not a fixed reference -- so consecutive retrains chain off the
        freshest swapped-in version.
    swap_fn:
        Called with ``(clone, reason)`` when a retrain finishes; the
        stream loop uses it to swap the serving registry and rebind its
        base model.  Runs on the trainer thread.
    epochs:
        Retraining epochs for the replay window (``None`` keeps the
        classifier's own setting; streams want a small number).
    init:
        ``"window"`` re-initializes the class hypervectors of every
        class present in the window from the window's own bundles
        (classes absent from the window keep their old rows) before
        replaying the retraining rule -- the right reset under real
        covariate drift.  ``"warm"`` keeps the current model as the
        starting point and only replays updates -- gentler, for mild
        drift.
    min_interval:
        Debounce: seconds that must pass between retrain *starts*.
    """

    def __init__(
        self,
        source: Callable[[], HDClassifier],
        swap_fn: Callable[[HDClassifier, str], None],
        epochs: Optional[int] = None,
        init: str = "window",
        min_interval: float = 0.0,
    ):
        if init not in RETRAIN_INITS:
            raise ValueError(
                f"unknown retrain init {init!r}; choose from {RETRAIN_INITS}"
            )
        self._source = source
        self._swap_fn = swap_fn
        self.epochs = epochs
        self.init = init
        self.min_interval = min_interval
        self._request: Optional[Tuple[np.ndarray, np.ndarray, str]] = None
        self._request_lock = threading.Lock()
        self._wake = threading.Event()
        self._idle = threading.Event()
        self._idle.set()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._last_start = -float("inf")
        self.retrains = 0
        self.rejected = 0
        self.failed = 0
        self.last_report = None
        self.last_error: Optional[BaseException] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "BackgroundTrainer":
        if self._thread is not None:
            raise RuntimeError("trainer already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="stream-trainer", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: Optional[float] = 5.0) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._wake.set()
        self._thread.join(timeout=timeout)
        self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    @property
    def busy(self) -> bool:
        return not self._idle.is_set()

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until no retrain is queued or running (tests, benches)."""
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        while True:
            with self._request_lock:
                pending = self._request is not None
            if not pending and self._idle.is_set():
                return True
            remaining = (None if deadline is None
                         else deadline - time.monotonic())
            if remaining is not None and remaining <= 0:
                return False
            self._idle.wait(0.01 if remaining is None
                            else min(0.01, remaining))

    # -- requests ------------------------------------------------------------

    def request(self, encodings: np.ndarray, labels: np.ndarray,
                reason: str = "manual") -> bool:
        """Queue a retrain over the given window (latest request wins).

        Returns False when debounced by ``min_interval`` (the window
        will fire again if drift persists) or when the trainer is not
        running.
        """
        if self._thread is None or self._stop.is_set():
            self.rejected += 1
            return False
        if time.monotonic() - self._last_start < self.min_interval:
            self.rejected += 1
            return False
        if len(encodings) == 0:
            self.rejected += 1
            return False
        with self._request_lock:
            self._request = (np.asarray(encodings), np.asarray(labels),
                             reason)
        self._idle.clear()
        self._wake.set()
        return True

    # -- the retrain ---------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.is_set():
            self._wake.wait(0.05)
            if self._stop.is_set():
                return
            with self._request_lock:
                req, self._request = self._request, None
                self._wake.clear()
            if req is None:
                self._idle.set()
                continue
            encodings, labels, reason = req
            self._last_start = time.monotonic()
            try:
                clone, report = self._retrain(encodings, labels, reason)
                self.retrains += 1
                self.last_report = report
                self._swap_fn(clone, reason)
            except Exception as exc:  # never kill the trainer thread
                self.failed += 1
                self.last_error = exc
            finally:
                with self._request_lock:
                    pending = self._request is not None
                if not pending:
                    self._idle.set()

    def _retrain(self, encodings: np.ndarray, labels: np.ndarray,
                 reason: str):
        base = self._source()
        encodings = np.asarray(encodings, dtype=np.float64)
        y_idx = np.searchsorted(base.classes_, labels)
        # drop samples whose label never appeared at fit time: the class
        # memory layout is fixed, as on the hardware
        valid = (y_idx < len(base.classes_))
        valid &= base.classes_[np.clip(y_idx, 0, len(base.classes_) - 1)] \
            == labels
        if not valid.all():
            encodings, y_idx = encodings[valid], y_idx[valid]
        if len(encodings) == 0:
            raise ValueError("no window samples with known labels")

        clone = base.with_model(base.model_.copy())
        if self.epochs is not None:
            clone.epochs = self.epochs
        if self.init == "window":
            present = np.unique(y_idx)
            onehot = np.zeros((len(y_idx), len(base.classes_)))
            onehot[np.arange(len(y_idx)), y_idx] = 1.0
            window_model = onehot.T @ encodings
            clone.model_[present] = window_model[present]
            clone.norms_.recompute(clone.model_)
        # integer encodings let the planner pick the gram engine cheaply
        clone._encodings_integral = bool(
            np.array_equal(encodings, np.trunc(encodings))
        )
        with obs_trace.span(
            "stream.retrain", reason=reason, samples=len(encodings),
            init=self.init, epochs=clone.epochs,
        ) as sp:
            report = training.retrain(clone, encodings, y_idx)
            if sp.recording:
                sp.set(
                    engine=clone.train_plan_.engine,
                    epochs_run=report.epochs_run,
                    train_accuracy=report.final_train_accuracy,
                )
        return clone, report
