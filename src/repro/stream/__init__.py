"""Streaming encoding, drift detection, and train-while-serving.

``repro.stream`` turns the batch-trained GENERIC pipeline into a
continuous learner:

- :mod:`~repro.stream.encoder` -- bounded-memory chunked encoding over
  unbounded streams (bit-identical to one-shot ``encode_batch`` when
  the quantizer range is frozen);
- :mod:`~repro.stream.drift` -- sliding-window margin/error/prior drift
  detection with EWMA baselines;
- :mod:`~repro.stream.trainer` -- a background thread replaying the
  recent window through the Gram-cached retraining engine and
  hot-swapping the result into the serving registry;
- :mod:`~repro.stream.regen` -- DistHD-style dimension regeneration for
  the load-shed prefix;
- :mod:`~repro.stream.loop` -- the orchestrator wiring all of the above
  to an :class:`~repro.serve.server.InferenceServer`.
"""

from repro.stream.drift import (
    TRIGGERS,
    DriftConfig,
    DriftDetector,
    DriftEvent,
)
from repro.stream.encoder import RangeReservoir, StreamingEncoder
from repro.stream.loop import StreamConfig, StreamLoop
from repro.stream.regen import (
    RegenPlan,
    apply_plan,
    dimension_scores,
    plan_regeneration,
    regenerate_deployment,
)
from repro.stream.trainer import RETRAIN_INITS, BackgroundTrainer, ReplayBuffer

__all__ = [
    "TRIGGERS",
    "RETRAIN_INITS",
    "DriftConfig",
    "DriftDetector",
    "DriftEvent",
    "RangeReservoir",
    "StreamingEncoder",
    "StreamConfig",
    "StreamLoop",
    "RegenPlan",
    "dimension_scores",
    "plan_regeneration",
    "apply_plan",
    "regenerate_deployment",
    "BackgroundTrainer",
    "ReplayBuffer",
]
