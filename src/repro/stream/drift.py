"""Drift detection on per-class similarity margins.

A trained HDC model separates classes by similarity margin: the gap
between the best and second-best class scores for a query.  Under
covariate drift the encodings move away from the class hypervectors and
the margins collapse *before* accuracy is even measurable (labels may
lag predictions on a real stream), which makes the margin the right
leading indicator.  :class:`DriftDetector` tracks three signals over a
sliding window and compares each against a slow EWMA baseline:

- **margin collapse** -- the windowed mean top-1/top-2 margin falls
  below ``(1 - margin_drop)`` of the baseline margin;
- **error-rate jump** -- when labels are available (prequential
  evaluation), the windowed error rate exceeds the baseline error by
  ``error_jump`` absolute points;
- **class-prior shift** -- the L1 distance between the windowed
  *predicted*-class histogram and its baseline exceeds ``prior_shift``
  (a model predicting mostly one class is drifting even if margins look
  healthy).

Each enabled trigger contributes a normalized score (1.0 = at
threshold); :meth:`DriftDetector.drift_score` is their maximum and is
exported by the stream loop as the ``stream_drift_score`` gauge.  A
trigger fires a :class:`DriftEvent` once the detector is armed (past
``warmup`` samples) and outside the post-trigger ``cooldown``; firing
clears the window and baselines so the detector re-warms against the
*new* regime rather than flapping on the old one.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional, Sequence, Tuple

import numpy as np

__all__ = ["DriftConfig", "DriftEvent", "DriftDetector", "TRIGGERS"]

TRIGGERS = ("margin", "error", "prior")


@dataclass
class DriftConfig:
    """Thresholds and windows for :class:`DriftDetector`."""

    #: sliding-window length, in samples
    window: int = 256
    #: EWMA rate for the baselines (per window-refresh, not per sample)
    ewma_alpha: float = 0.1
    #: samples observed before any trigger may fire
    warmup: int = 256
    #: relative margin collapse that fires: window < (1-drop) * baseline
    margin_drop: float = 0.4
    #: absolute error-rate jump over baseline that fires
    error_jump: float = 0.15
    #: L1 distance between windowed and baseline prediction priors
    prior_shift: float = 0.6
    #: samples after a trigger during which no new trigger fires
    cooldown: int = 256
    #: which of the three signals may fire (all by default)
    triggers: Tuple[str, ...] = TRIGGERS

    def __post_init__(self) -> None:
        unknown = set(self.triggers) - set(TRIGGERS)
        if unknown:
            raise ValueError(
                f"unknown drift triggers {sorted(unknown)}; "
                f"choose from {TRIGGERS}"
            )
        if not 0 < self.ewma_alpha <= 1:
            raise ValueError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}"
            )
        if not 0 < self.margin_drop < 1:
            raise ValueError(
                f"margin_drop must be in (0, 1), got {self.margin_drop}"
            )


@dataclass
class DriftEvent:
    """One fired drift trigger (what, how badly, and the evidence)."""

    reason: str                  # "margin" | "error" | "prior"
    score: float                 # normalized severity (1.0 = at threshold)
    sample_index: int            # stream position when it fired
    window_margin: float
    baseline_margin: float
    window_error: Optional[float]
    baseline_error: Optional[float]
    prior_l1: float
    scores: dict = field(default_factory=dict)  # per-trigger normalized


class DriftDetector:
    """Sliding-window margin/error/prior monitor with EWMA baselines."""

    def __init__(self, n_classes: int, config: Optional[DriftConfig] = None):
        if n_classes < 2:
            raise ValueError(f"need >= 2 classes, got {n_classes}")
        self.n_classes = n_classes
        self.config = config or DriftConfig()
        w = self.config.window
        self._margins: Deque[float] = deque(maxlen=w)
        self._errors: Deque[int] = deque(maxlen=w)
        self._preds: Deque[int] = deque(maxlen=w)
        self.samples_seen = 0
        self.events: list = []
        self._last_trigger = -10**18
        # EWMA baselines; seeded lazily from the first full window and
        # refreshed once per *window* of healthy samples (per-sample
        # tracking would chase the drift and never see it)
        self._base_margin: Optional[float] = None
        self._base_error: Optional[float] = None
        self._base_prior: Optional[np.ndarray] = None
        self._baseline_refreshed_at = 0

    # -- feeding -------------------------------------------------------------

    @staticmethod
    def margins_from_scores(scores: np.ndarray) -> np.ndarray:
        """Per-row top-1 minus top-2 score gap from an (N, C) score matrix."""
        scores = np.atleast_2d(np.asarray(scores, dtype=np.float64))
        if scores.shape[1] < 2:
            raise ValueError("margins need at least 2 class scores")
        part = np.partition(scores, -2, axis=1)
        return part[:, -1] - part[:, -2]

    def observe(
        self,
        margins: Sequence[float],
        preds: Sequence[int],
        labels: Optional[Sequence[int]] = None,
    ) -> Optional[DriftEvent]:
        """Feed one chunk of per-sample statistics; maybe fire an event.

        ``preds`` are class *indices* (positions in the model's class
        list); ``labels`` (optional, same index space) unlock the
        error-rate trigger for prequential streams.
        """
        margins = np.asarray(margins, dtype=np.float64)
        preds = np.asarray(preds, dtype=np.int64)
        if margins.shape != preds.shape:
            raise ValueError(
                f"margins {margins.shape} vs preds {preds.shape} mismatch"
            )
        errs = None
        if labels is not None:
            labels = np.asarray(labels, dtype=np.int64)
            errs = (preds != labels).astype(np.int64)
        for i in range(len(margins)):
            self._margins.append(float(margins[i]))
            self._preds.append(int(preds[i]))
            if errs is not None:
                self._errors.append(int(errs[i]))
        self.samples_seen += len(margins)
        return self._evaluate()

    # -- the decision --------------------------------------------------------

    def _window_stats(self):
        margin = float(np.mean(self._margins)) if self._margins else 0.0
        error = (float(np.mean(self._errors))
                 if len(self._errors) else None)
        prior = np.bincount(
            np.asarray(self._preds, dtype=np.int64),
            minlength=self.n_classes,
        ).astype(np.float64)
        total = prior.sum()
        if total > 0:
            prior /= total
        return margin, error, prior

    def _seed_baselines(self, margin, error, prior) -> None:
        self._base_margin = margin
        self._base_error = error
        self._base_prior = prior.copy()
        self._baseline_refreshed_at = self.samples_seen

    def _ewma(self, base, value):
        a = self.config.ewma_alpha
        return (1.0 - a) * base + a * value

    def trigger_scores(self) -> dict:
        """Normalized severity per enabled trigger (1.0 = at threshold)."""
        cfg = self.config
        margin, error, prior = self._window_stats()
        scores = {}
        if self._base_margin is None:
            return {t: 0.0 for t in cfg.triggers}
        if "margin" in cfg.triggers and self._base_margin > 0:
            drop = 1.0 - margin / self._base_margin
            scores["margin"] = max(0.0, drop) / cfg.margin_drop
        if ("error" in cfg.triggers and error is not None
                and self._base_error is not None):
            jump = error - self._base_error
            scores["error"] = max(0.0, jump) / cfg.error_jump
        if "prior" in cfg.triggers and self._base_prior is not None:
            l1 = float(np.abs(prior - self._base_prior).sum())
            scores["prior"] = l1 / cfg.prior_shift
        return scores

    def drift_score(self) -> float:
        """Worst normalized trigger score (the gauge the loop exports)."""
        scores = self.trigger_scores()
        return max(scores.values()) if scores else 0.0

    def _evaluate(self) -> Optional[DriftEvent]:
        cfg = self.config
        if len(self._margins) < cfg.window:
            return None
        margin, error, prior = self._window_stats()
        if self._base_margin is None:
            self._seed_baselines(margin, error, prior)
            return None
        scores = self.trigger_scores()
        armed = (self.samples_seen >= cfg.warmup
                 and self.samples_seen - self._last_trigger >= cfg.cooldown)
        fired = {t: s for t, s in scores.items() if s >= 1.0}
        if armed and fired:
            reason = max(fired, key=fired.get)
            event = DriftEvent(
                reason=reason,
                score=fired[reason],
                sample_index=self.samples_seen,
                window_margin=margin,
                baseline_margin=self._base_margin,
                window_error=error,
                baseline_error=self._base_error,
                prior_l1=float(np.abs(prior - self._base_prior).sum())
                if self._base_prior is not None else 0.0,
                scores=scores,
            )
            self.events.append(event)
            self._last_trigger = self.samples_seen
            # re-warm against the new regime: the fire-time window mixes
            # both regimes, so seeding from it would leave an inflated
            # baseline that refires on the same change after cooldown
            self.reset_baselines()
            return event
        # healthy window: let the baselines track slow change, one EWMA
        # step per window of samples (not per observe call)
        if self.samples_seen - self._baseline_refreshed_at >= cfg.window:
            self._base_margin = self._ewma(self._base_margin, margin)
            if error is not None:
                self._base_error = (error if self._base_error is None
                                    else self._ewma(self._base_error, error))
            if self._base_prior is not None:
                self._base_prior = self._ewma(self._base_prior, prior)
            self._baseline_refreshed_at = self.samples_seen
        return None

    def reset_baselines(self) -> None:
        """Forget baselines *and* the window (e.g. after a model swap).

        The window statistics were produced by the old model, so they
        say nothing about the new one; the detector re-warms from the
        next full window.
        """
        self._base_margin = None
        self._base_error = None
        self._base_prior = None
        self._margins.clear()
        self._errors.clear()
        self._preds.clear()

    def state(self) -> dict:
        margin, error, prior = self._window_stats()
        return {
            "samples_seen": self.samples_seen,
            "window_margin": margin,
            "window_error": error,
            "baseline_margin": self._base_margin,
            "baseline_error": self._base_error,
            "drift_score": self.drift_score(),
            "events": len(self.events),
        }
