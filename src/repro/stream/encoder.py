"""Chunked, bounded-memory streaming encoding.

"Streaming Encoding Algorithms for Scalable Hyperdimensional Computing"
(Thomas, Khaleghi et al.) observes that HDC encoders are single-pass by
construction: every sample's hypervector depends only on that sample and
the (fixed) level/id tables, so an unbounded stream can be encoded in
bounded memory by buffering a fixed-size chunk and reusing the batch
kernels per chunk.  The only *stateful* part of the pipeline is the
quantizer's value range, which on a stream is unknown up front; a
fixed-size uniform reservoir estimates it.

:class:`StreamingEncoder` wraps any registered :class:`~repro.core.
encoders.base.Encoder`:

- the chunk buffer holds at most ``chunk_size`` raw samples; a full
  buffer is flushed through :meth:`Encoder.encode_batch`, which runs
  whatever engine the encoder selected (for the GENERIC family that is
  the bit-packed XOR kernel) and can fan out over ``n_jobs`` threads;
- an unfitted encoder is fitted once ``warmup`` samples have arrived
  (the warmup buffer doubles as the first chunk), so the stream needs no
  offline pass;
- a :class:`RangeReservoir` keeps a bounded uniform sample of observed
  feature values plus the exact running min/max; with ``adapt_range=
  True`` the quantizer's ``lo``/``hi`` are refreshed when the estimate
  moves more than ``range_tolerance`` of the current span (covariate
  drift in *scale* would otherwise pin every value to the extreme bins).

With ``adapt_range=False`` (the default) and a fitted encoder, the
level tables and quantizer are frozen, so chunked streaming output is
**bit-identical** to a one-shot ``encode_batch`` over the concatenated
stream -- the property the CI gate and the hypothesis suite pin.

Every flushed chunk lands in a ``stream.chunk`` trace span carrying the
chunk index, size, and encoder engine.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Tuple

import numpy as np

from repro.core.encoders.base import Encoder
from repro.obs import trace as obs_trace

__all__ = ["RangeReservoir", "StreamingEncoder"]


class RangeReservoir:
    """Bounded uniform sample of a scalar stream, plus exact min/max.

    Classic reservoir sampling, vectorized per incoming block: once the
    reservoir is full, a block arriving after ``n`` values keeps each new
    value with probability ``size / n`` and overwrites uniformly chosen
    slots.  The inclusion probabilities are approximated blockwise
    (exact per-item replay would be O(stream length) Python work), which
    is indistinguishable for range estimation.  Min/max are tracked
    exactly and cost O(1) memory.
    """

    def __init__(self, size: int = 2048, seed: int = 0):
        if size < 2:
            raise ValueError(f"reservoir size must be >= 2, got {size}")
        self.size = size
        self._rng = np.random.default_rng(seed)
        self._values = np.empty(size, dtype=np.float64)
        self._filled = 0
        self.seen = 0
        self.min = np.inf
        self.max = -np.inf

    def offer(self, values: np.ndarray) -> None:
        """Feed a block of values (any shape; flattened)."""
        v = np.asarray(values, dtype=np.float64).ravel()
        if v.size == 0:
            return
        self.min = min(self.min, float(v.min()))
        self.max = max(self.max, float(v.max()))
        if self._filled < self.size:
            take = min(self.size - self._filled, v.size)
            self._values[self._filled:self._filled + take] = v[:take]
            self._filled += take
            v = v[take:]
            self.seen += take
        if v.size:
            self.seen += v.size
            # blockwise acceptance at the post-block rate size/seen
            keep = self._rng.random(v.size) < (self.size / self.seen)
            kept = v[keep]
            if kept.size:
                slots = self._rng.integers(0, self.size, size=kept.size)
                self._values[slots] = kept

    @property
    def filled(self) -> int:
        return self._filled

    def range(self, quantile: float = 0.0) -> Tuple[float, float]:
        """Estimated value range.

        ``quantile=0`` returns the exact running min/max; ``q > 0``
        returns the ``(q, 1-q)`` quantiles of the reservoir sample -- a
        robust range that sheds outliers.
        """
        if self.seen == 0:
            raise RuntimeError("RangeReservoir.range() before any offer()")
        if quantile <= 0.0:
            return self.min, self.max
        lo, hi = np.quantile(self._values[:self._filled],
                             [quantile, 1.0 - quantile])
        return float(lo), float(hi)


class StreamingEncoder:
    """Bounded-memory chunked encoding over an unbounded sample stream.

    Parameters
    ----------
    encoder:
        Any :class:`Encoder`.  May be unfitted: the first ``warmup``
        samples fit it (quantizer range + table allocation) before any
        encoding happens.
    chunk_size:
        Samples buffered before a flush through ``encode_batch``; the
        whole pipeline holds at most ``chunk_size`` raw samples plus one
        chunk of encodings at a time.
    n_jobs:
        Thread fan-out for each chunk's ``encode_batch`` call.
    warmup:
        Samples used to fit an unfitted encoder (default: one chunk).
    adapt_range:
        Refresh the quantizer's ``lo``/``hi`` from the reservoir when
        the estimate drifts; breaks bit-identity with a frozen one-shot
        encode by design, so it is opt-in.
    range_quantile / range_tolerance:
        Robust-range quantile for the reservoir estimate, and the
        minimum relative movement (fraction of the current span) that
        triggers a refresh.
    """

    def __init__(
        self,
        encoder: Encoder,
        chunk_size: int = 256,
        n_jobs: Optional[int] = None,
        warmup: Optional[int] = None,
        adapt_range: bool = False,
        range_quantile: float = 0.0,
        range_tolerance: float = 0.05,
        reservoir_size: int = 2048,
        seed: int = 0,
    ):
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.encoder = encoder
        self.chunk_size = chunk_size
        self.n_jobs = n_jobs
        self.warmup = chunk_size if warmup is None else max(1, int(warmup))
        self.adapt_range = adapt_range
        self.range_quantile = range_quantile
        self.range_tolerance = range_tolerance
        self.reservoir = RangeReservoir(reservoir_size, seed=seed)
        self._buffer: list = []      # raw sample rows awaiting a flush
        self.samples_seen = 0
        self.chunks_flushed = 0
        self.range_refits = 0

    # -- state ---------------------------------------------------------------

    @property
    def fitted(self) -> bool:
        return self.encoder.fitted

    @property
    def buffered(self) -> int:
        return len(self._buffer)

    def stats(self) -> dict:
        return {
            "samples_seen": self.samples_seen,
            "chunks_flushed": self.chunks_flushed,
            "buffered": self.buffered,
            "range_refits": self.range_refits,
            "reservoir_seen": self.reservoir.seen,
        }

    # -- the chunk pipeline --------------------------------------------------

    def _maybe_refit_range(self) -> None:
        """Refresh quantizer lo/hi when the reservoir estimate moved."""
        if not self.adapt_range or not self.encoder.fitted:
            return
        q = self.encoder.quantizer
        if q.per_feature or q.lo is None:
            return  # per-feature ranges are not reservoir-estimated
        lo, hi = self.reservoir.range(self.range_quantile)
        cur_lo, cur_hi = float(q.lo), float(q.hi)
        span = max(cur_hi - cur_lo, 1e-12)
        if (abs(lo - cur_lo) > self.range_tolerance * span
                or abs(hi - cur_hi) > self.range_tolerance * span):
            q.lo = np.asarray(lo)
            q.hi = np.asarray(hi)
            self.range_refits += 1

    def _encode_chunk(self, X: np.ndarray) -> np.ndarray:
        """One chunk through the wrapped encoder's batch kernel."""
        with obs_trace.span(
            "stream.chunk", encoder=self.encoder.name,
            samples=len(X), chunk=self.chunks_flushed,
        ):
            out = self.encoder.encode_batch(X, n_jobs=self.n_jobs)
        self.chunks_flushed += 1
        return out

    def _drain_buffer(self) -> Optional[np.ndarray]:
        """Flush the raw-sample buffer (fitting the encoder if needed)."""
        if not self._buffer:
            return None
        X = np.asarray(self._buffer, dtype=np.float64)
        self._buffer = []
        if not self.encoder.fitted:
            self.encoder.fit(X)
        self._maybe_refit_range()
        return self._encode_chunk(X)

    def push(self, X: np.ndarray) -> Optional[np.ndarray]:
        """Feed samples; returns encodings when a chunk boundary flushes.

        Accepts a single sample (1-D) or a block of rows (2-D).  At most
        one flush happens per call when the block is smaller than the
        chunk; larger blocks flush as many whole chunks as they fill and
        return them concatenated.  Returns ``None`` while the chunk (or
        the warmup buffer, for an unfitted encoder) is still filling.
        """
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        self.reservoir.offer(X)
        self.samples_seen += len(X)
        out = []
        for row in X:
            self._buffer.append(row)
            threshold = (self.chunk_size if self.encoder.fitted
                         else max(self.chunk_size, self.warmup))
            if len(self._buffer) >= threshold:
                out.append(self._drain_buffer())
        if not out:
            return None
        return out[0] if len(out) == 1 else np.concatenate(out, axis=0)

    def flush(self) -> Optional[np.ndarray]:
        """Encode whatever is buffered (end-of-stream / chunk boundary)."""
        return self._drain_buffer()

    def encode(self, X: np.ndarray) -> np.ndarray:
        """Encode an in-memory block chunk-by-chunk (one call, no buffer).

        Requires a fitted encoder (or enough rows to warm it up).  The
        result is bit-identical to ``encoder.encode_batch(X)`` when the
        quantizer range is frozen (``adapt_range=False``).
        """
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        self.reservoir.offer(X)
        self.samples_seen += len(X)
        if not self.encoder.fitted:
            if len(X) < self.warmup:
                raise RuntimeError(
                    f"encoder unfitted and block ({len(X)} rows) is smaller "
                    f"than warmup={self.warmup}; use push()/encode_stream()"
                )
            self.encoder.fit(X[:self.warmup])
        self._maybe_refit_range()
        parts = [
            self._encode_chunk(X[start:start + self.chunk_size])
            for start in range(0, len(X), self.chunk_size)
        ]
        return np.concatenate(parts, axis=0)

    def encode_stream(
        self, stream: Iterable[np.ndarray]
    ) -> Iterator[np.ndarray]:
        """Generator: samples (or row blocks) in, encoding chunks out.

        Memory stays bounded by one chunk of raw samples plus one chunk
        of encodings regardless of stream length; a final partial chunk
        is flushed when the stream ends.
        """
        for item in stream:
            encoded = self.push(item)
            if encoded is not None:
                yield encoded
        tail = self.flush()
        if tail is not None:
            yield tail
