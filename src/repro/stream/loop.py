"""The streaming control loop: encode, detect, retrain, swap.

:class:`StreamLoop` ties the pieces of :mod:`repro.stream` to a running
:class:`~repro.serve.server.InferenceServer`::

    chunk --> StreamingEncoder --> scores/margins --> DriftDetector
                     |                                    | trigger
                ReplayBuffer  ----------------------------+
                     |                                    v
                     +----- snapshot ------------> BackgroundTrainer
                                                          | retrained clone
            InferenceServer.swap  <----- _install --------+
            (atomic version bump, old-version drain)

The loop is **prequential** (test-then-train): every chunk is scored by
the current model *before* it is added to the replay window, so the
reported accuracy is an honest estimate of serving accuracy under
drift.  The base classifier held by the loop always keeps the original
dimension order; regeneration (:mod:`repro.stream.regen`) only permutes
the *served* view, and is re-applied after every retrain swap while the
load-shed policy holds a reduced level.  The loop also registers itself
on the degradation ladder's ``dim_shed`` tier, so breaker-driven forced
shedding triggers the same re-materialization.

Telemetry: ``stream_drift_score`` and ``stream_model_version`` gauges,
``stream_chunks`` / ``stream_regens`` counters on the server's metrics
hub, plus the ``stream.chunk`` / ``stream.retrain`` / ``stream.swap``
trace spans emitted by the components.

The loop drives any :class:`~repro.serve.surface.ServingSurface`
backend: a :class:`~repro.serve.sharded.ShardedServer` works as a
drop-in ``server`` (the protocol guarantees the ``registry`` /
``swap(drain=...)`` / ``metrics`` / ``ladder`` / ``recorder`` surface
the loop uses -- no more ``getattr`` probing).  Sharded deployments
are always bit-packed, so a retrain swap rides the epoch-based
shared-memory protocol (publish new segment, all-shard ack, unlink
old), and dimension regeneration -- which needs the classifier-kind
float view -- correctly no-ops via the ``dep.kind != "classifier"``
guard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Tuple

import numpy as np

from repro.core.classifier import HDClassifier
from repro.obs import trace as obs_trace
from repro.serve.surface import ServingSurface
from repro.stream.drift import DriftConfig, DriftDetector
from repro.stream.encoder import StreamingEncoder
from repro.stream.regen import regenerate_deployment
from repro.stream.trainer import BackgroundTrainer, ReplayBuffer

__all__ = ["StreamConfig", "StreamLoop"]


@dataclass
class StreamConfig:
    """Knobs for :class:`StreamLoop` (defaults suit small test rigs)."""

    #: deployment name the loop serves and swaps
    model_name: str = "stream"
    #: streaming-encoder chunk size (samples per encode_batch call)
    chunk_size: int = 64
    #: replay window capacity, in samples
    replay_capacity: int = 512
    #: drift thresholds; ``None`` -> :class:`DriftConfig` defaults
    drift: Optional[DriftConfig] = None
    #: retraining epochs over the replay window (None: classifier's own)
    retrain_epochs: Optional[int] = 3
    #: ``"window"`` (re-init drifted classes) or ``"warm"``
    retrain_init: str = "window"
    #: debounce between retrain starts, seconds
    retrain_min_interval: float = 0.0
    #: drain in-flight batches on the old version during a swap
    swap_drain: bool = True
    #: re-materialize informative dimensions while the policy sheds
    regen_on_shed: bool = True
    #: let the streaming encoder track the value range (breaks exactness)
    adapt_range: bool = False
    #: thread fan-out for chunk encoding
    n_jobs: Optional[int] = None


@dataclass
class ChunkReport:
    """What one :meth:`StreamLoop.process` call observed and did."""

    samples: int
    accuracy: Optional[float]       # None when the chunk had no labels
    drift_score: float
    event: Optional[object]         # the DriftEvent, if one fired
    retrain_requested: bool
    model_version: int
    preds: np.ndarray = field(repr=False, default=None)


class StreamLoop:
    """Train-while-serving orchestration for one deployment.

    Parameters
    ----------
    server:
        A (started or not) :class:`~repro.serve.surface.ServingSurface`
        backend -- :class:`InferenceServer` or
        :class:`~repro.serve.sharded.ShardedServer`.  The loop registers
        ``clf`` under ``config.model_name`` if no such deployment
        exists (a sharded server packs it on registration).
    clf:
        Fitted :class:`HDClassifier`; becomes the loop's *base* model.
        Retrained versions rebind this reference on every swap.
    """

    def __init__(self, server: "ServingSurface", clf: HDClassifier,
                 config: Optional[StreamConfig] = None):
        clf._check_fitted()
        self.server = server
        self.clf = clf
        self.cfg = config or StreamConfig()
        if self.cfg.model_name not in server.registry:
            server.register(self.cfg.model_name, clf)
        self.encoder = StreamingEncoder(
            clf.encoder,
            chunk_size=self.cfg.chunk_size,
            n_jobs=self.cfg.n_jobs,
            adapt_range=self.cfg.adapt_range,
        )
        self.detector = DriftDetector(len(clf.classes_), self.cfg.drift)
        self.buffer = ReplayBuffer(self.cfg.replay_capacity, clf.encoder.dim)
        self.trainer = BackgroundTrainer(
            lambda: self.clf,
            self._install,
            epochs=self.cfg.retrain_epochs,
            init=self.cfg.retrain_init,
            min_interval=self.cfg.retrain_min_interval,
        )
        self.swaps = 0
        self.regens = 0
        self.chunks = 0
        #: model version regeneration last ran against (avoid re-permuting
        #: the same version every chunk while shed persists)
        self._regen_version: Optional[int] = None
        if self.cfg.regen_on_shed:
            server.ladder.add_dim_shed_hook(self._on_dim_shed)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "StreamLoop":
        self.trainer.start()
        return self

    def stop(self, timeout: Optional[float] = 5.0) -> None:
        self.trainer.stop(timeout=timeout)

    def __enter__(self) -> "StreamLoop":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def wait_idle(self, timeout: Optional[float] = 10.0) -> bool:
        """Block until no retrain is queued or running (tests, benches)."""
        return self.trainer.wait_idle(timeout=timeout)

    # -- the per-chunk pipeline ----------------------------------------------

    def process(self, X: np.ndarray,
                y: Optional[np.ndarray] = None) -> ChunkReport:
        """Run one chunk through the loop (prequential: score, then learn).

        ``y`` (raw labels, optional) unlocks the error-rate drift
        trigger and lets the replay window carry labels for retraining;
        without labels the chunk still feeds the margin/prior triggers
        but is not added to the replay window.
        """
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        clf = self.clf  # one consistent model for the whole chunk
        encodings = self.encoder.encode(X)
        scores = clf._scores(np.asarray(encodings, dtype=np.float64))
        preds_idx = np.argmax(scores, axis=1)
        margins = self.detector.margins_from_scores(scores)

        accuracy = None
        labels_idx = None
        if y is not None:
            y = np.asarray(y)
            labels_idx = np.searchsorted(clf.classes_, y)
            valid = labels_idx < len(clf.classes_)
            valid &= clf.classes_[
                np.clip(labels_idx, 0, len(clf.classes_) - 1)] == y
            # unknown labels can never match a prediction: count as errors
            labels_idx = np.where(valid, labels_idx, -1)
            accuracy = float(np.mean(preds_idx == labels_idx))
            self.buffer.append(encodings, y)

        event = self.detector.observe(margins, preds_idx, labels_idx)
        score = self.detector.drift_score()
        self.server.metrics.gauge("stream_drift_score").set(score)
        self.server.metrics.counter("stream_chunks").inc()
        self.chunks += 1

        requested = False
        if event is not None:
            self.server.recorder.record_event(
                "drift_fire", reason=event.reason, score=score,
                model=self.cfg.model_name,
            )
        if event is not None and len(self.buffer):
            enc, lab = self.buffer.snapshot()
            requested = self.trainer.request(enc, lab, reason=event.reason)
        self._maybe_regenerate()
        return ChunkReport(
            samples=len(X),
            accuracy=accuracy,
            drift_score=score,
            event=event,
            retrain_requested=requested,
            model_version=self.server.registry.get(self.cfg.model_name).version,
            preds=clf.classes_[preds_idx],
        )

    def run(self, stream: Iterable[Tuple[np.ndarray, np.ndarray]]):
        """Consume an iterable of ``(X, y)`` chunks; returns the reports."""
        return [self.process(X, y) for X, y in stream]

    # -- swap & regeneration callbacks ---------------------------------------

    def _install(self, clone: HDClassifier, reason: str) -> None:
        """Swap a retrained clone into the registry (trainer thread)."""
        with obs_trace.span(
            "stream.swap", model=self.cfg.model_name, reason=reason,
        ) as sp:
            dep = self.server.swap(
                self.cfg.model_name, clone, drain=self.cfg.swap_drain,
            )
            # the new version serves in original dimension order; a held
            # shed level re-triggers regeneration on the next chunk
            self.clf = clone
            self.swaps += 1
            self._regen_version = None
            self.detector.reset_baselines()
            if sp.recording:
                sp.set(version=dep.version)
        self.server.recorder.record_event(
            "model_swap", model=self.cfg.model_name,
            version=dep.version, reason=reason,
        )
        self.server.metrics.gauge("stream_model_version").set(dep.version)

    def _maybe_regenerate(self) -> None:
        """Permute informative dims into the prefix while shed is held."""
        if not self.cfg.regen_on_shed:
            return
        policy = self.server.policy
        if policy.level <= 0:
            return
        dep = self.server.registry.get(self.cfg.model_name)
        if dep.version == self._regen_version or dep.kind != "classifier":
            return
        self.regenerate(serving_dim=dep.dim_for_level(policy.level))

    def _on_dim_shed(self, floor_level: int) -> None:
        """Degradation-ladder hook: forced shed -> regenerate the prefix."""
        dep = self.server.registry.get(self.cfg.model_name)
        if dep.version == self._regen_version or dep.kind != "classifier":
            return
        self.regenerate(serving_dim=dep.dim_for_level(floor_level))

    def regenerate(self, serving_dim: Optional[int] = None):
        """Swap in a regenerated (dimension-permuted) serving view."""
        dep, plan = regenerate_deployment(
            self.server.registry, self.cfg.model_name,
            serving_dim=serving_dim, drain=False,
        )
        self._regen_version = dep.version
        self.regens += 1
        self.server.metrics.counter("stream_regens").inc()
        self.server.metrics.gauge("stream_model_version").set(dep.version)
        return dep, plan

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict:
        return {
            "chunks": self.chunks,
            "swaps": self.swaps,
            "regens": self.regens,
            "model_version":
                self.server.registry.get(self.cfg.model_name).version,
            "encoder": self.encoder.stats(),
            "drift": self.detector.state(),
            "trainer": {
                "retrains": self.trainer.retrains,
                "rejected": self.trainer.rejected,
                "failed": self.trainer.failed,
            },
            "replay": len(self.buffer),
        }
