"""DistHD-style dimension regeneration for the dim-shed degradation tier.

The serving stack sheds load by searching a 128-multiple *prefix* of
the dimensions (Section 4.3.3), which silently assumes every dimension
carries the same amount of class information.  DistHD (Wang et al.)
shows that is false for trained models -- dimension quality is uneven --
and that a learner-aware score can identify the dimensions worth
keeping.  This module applies that idea to the shed tier: score every
dimension by its class-separability contribution, then *re-materialize*
the informative shed dimensions by permuting the dimension order so the
highest-scoring dimensions occupy the served prefix.

The trick that makes this exact: a permutation applied to **both** the
query encodings and the class-hypervector columns leaves every dot
product and norm unchanged, so full-dimension predictions are
bit-identical to the unpermuted model, while a prefix search now keeps
the most informative dimensions instead of an arbitrary first block.
The permuted model's :class:`~repro.core.norms.SubNormTable` is
recomputed at its new layout, so the shed tier's exact prefix norms
keep working untouched.

Scoring: class rows are L2-normalized (the cosine view the search uses)
and each dimension is scored by its variance across classes --
dimensions on which the classes agree contribute nothing to the
arg-max; dimensions with large cross-class spread decide it.

The serving integration (:func:`regenerate_deployment`) goes through
:meth:`~repro.serve.registry.ModelRegistry.swap`, so the permuted view
lands atomically as a new model version and in-flight batches finish on
the old, self-consistent deployment.  The stream loop registers
:func:`regenerate_deployment` as a recovery hook on the degradation
ladder's ``dim_shed`` tier and also fires it when the load-shed policy
holds a reduced level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.classifier import HDClassifier

__all__ = [
    "RegenPlan",
    "dimension_scores",
    "plan_regeneration",
    "apply_plan",
    "regenerate_deployment",
]


def dimension_scores(model: np.ndarray) -> np.ndarray:
    """Per-dimension class-separability contribution.

    Rows are L2-normalized so a large class doesn't dominate, then each
    dimension's score is the variance of its normalized values across
    classes.  Shape ``(dim,)``, all non-negative.
    """
    m = np.asarray(model, dtype=np.float64)
    if m.ndim != 2 or m.shape[0] < 2:
        raise ValueError(
            f"need a (n_classes >= 2, dim) class matrix, got {m.shape}"
        )
    norms = np.linalg.norm(m, axis=1, keepdims=True)
    normalized = m / np.where(norms == 0.0, 1.0, norms)
    return normalized.var(axis=0)


@dataclass
class RegenPlan:
    """A dimension re-ordering and its expected effect."""

    #: permutation: position ``j`` of the new layout holds old dimension
    #: ``order[j]`` (apply as ``x[:, order]`` to queries and model alike)
    order: np.ndarray
    #: per-dimension separability scores (original layout)
    scores: np.ndarray
    #: the prefix length the plan was optimized for
    serving_dim: int
    #: fraction of total score mass inside the prefix, before / after
    prefix_mass_before: float
    prefix_mass_after: float

    @property
    def gain(self) -> float:
        """Score mass the prefix gained by re-materializing dimensions."""
        return self.prefix_mass_after - self.prefix_mass_before

    @property
    def moved(self) -> int:
        """Dimensions whose position changed."""
        return int(np.count_nonzero(self.order != np.arange(len(self.order))))


def plan_regeneration(model: np.ndarray, serving_dim: int) -> RegenPlan:
    """Order dimensions so the most separating ones fill ``serving_dim``.

    A stable descending sort on the separability scores: the served
    prefix ends up holding the top-``serving_dim`` scored dimensions,
    which is optimal for any prefix length <= ``serving_dim`` as well.
    """
    scores = dimension_scores(model)
    dim = len(scores)
    if not 0 < serving_dim <= dim:
        raise ValueError(
            f"serving_dim {serving_dim} out of range (0, {dim}]"
        )
    order = np.argsort(-scores, kind="stable")
    total = float(scores.sum()) or 1.0
    before = float(scores[:serving_dim].sum()) / total
    after = float(scores[order[:serving_dim]].sum()) / total
    return RegenPlan(
        order=order,
        scores=scores,
        serving_dim=serving_dim,
        prefix_mass_before=before,
        prefix_mass_after=after,
    )


def apply_plan(clf: HDClassifier, plan: RegenPlan) -> HDClassifier:
    """Clone ``clf`` with its class-matrix columns in plan order.

    The clone shares the encoder (queries still come out in the
    original layout -- the serving deployment applies ``plan.order`` to
    them); its :class:`SubNormTable` is rebuilt for the new layout.
    """
    return clf.with_model(clf.model_[:, plan.order])


def regenerate_deployment(registry, name: str,
                          serving_dim: Optional[int] = None,
                          drain: bool = False):
    """Swap deployment ``name`` for a regenerated (re-ordered) view.

    ``serving_dim`` defaults to the deployment's shed floor
    (``min_dim``) so the reordering helps at every shed level.  Works on
    classifier deployments only (packed models bake the layout into
    their words); repeated calls compose: the plan is computed on the
    deployment's *current* view and the query permutation passed to
    ``swap`` is the composition of the old and new orders.

    Returns ``(deployment, plan)``.
    """
    dep = registry.get(name)
    if dep.kind != "classifier":
        raise ValueError(
            f"deployment {name!r} is {dep.kind}; regeneration needs a "
            "classifier deployment"
        )
    serving_dim = dep.min_dim if serving_dim is None else int(serving_dim)
    plan = plan_regeneration(dep.model.model_, serving_dim)
    composed = (plan.order if dep.dim_order is None
                else dep.dim_order[plan.order])
    regenerated = apply_plan(dep.model, plan)
    new_dep = registry.swap(name, regenerated, dim_order=composed,
                            drain=drain)
    return new_dep, plan
