# Convenience targets for the GENERIC reproduction.

PROFILE ?= bench

.PHONY: install test bench report examples clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	REPRO_PROFILE=$(PROFILE) pytest benchmarks/ --benchmark-only

report:
	python -m repro.eval.reporting --profile $(PROFILE) --out report.md

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f || exit 1; done

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
