"""Encoding-kernel benchmark: reference vs. bit-packed engine.

Unlike the ``bench_fig*`` files this regenerates no paper artifact -- it
tracks the hot path the serving stack lives on.  For each
``encoder x dim x window`` point it times batch encoding on the default
synthetic workload with both engines, verifies they are bit-identical,
and writes samples/sec plus peak traced memory to ``BENCH_encode.json``
so later PRs can diff the perf trajectory.

Since the planner refactor each point also carries a ``planner``
profile: the planner-lowered packed path is timed against the retained
pre-IR monolith (:meth:`GenericPackedKernel._encode_bins_monolith`)
and must stay bit-identical to it.  When the optional numba backend is
importable, a ``numba`` profile per point times the JIT path against
the reference engine.  A top-level ``approx`` profile trains a small
prototype classifier and measures the accuracy cost and encode-time
gain of multifold approximate encoding at 50% folds -- the degradation
ladder's ``approx`` tier.

Usage::

    PYTHONPATH=src python benchmarks/bench_encode.py            # full grid
    PYTHONPATH=src python benchmarks/bench_encode.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_encode.py --quick --check

``--check`` exits non-zero if any point lost bit-identity (engine pair
or planner vs. monolith), the packed engine failed to beat the
reference engine (``--min-speedup``, default 1.0), the planned path
regressed against the monolith at ``dim >= 4096``
(``--min-planner-ratio``, default 1.0; smaller dims are report-only --
the fold slab is bandwidth-noise dominated there), numba ran slower
than ``--min-numba-speedup`` x reference (only when numba is present),
or approximate encoding cost more than ``--max-approx-drop`` accuracy
points (default 2.0) or failed to reduce encode time.  CI runs the
quick grid with it so a kernel regression fails the build.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import resource
import sys
import time
import tracemalloc

import numpy as np

from repro.core.encoders import GenericEncoder, NgramEncoder

OUT_PATH = pathlib.Path("BENCH_encode.json")

#: the default synthetic workload: n_features chosen odd so dim % 64
#: padding and window overhang paths are exercised, not just the fast lane
FULL_GRID = [
    # (encoder, dim, window, n_samples, n_features)
    ("generic", 1024, 3, 256, 617),
    ("generic", 4096, 3, 256, 617),
    ("generic", 4096, 5, 256, 617),
    ("generic", 8192, 3, 256, 617),
    ("ngram", 4096, 3, 256, 617),
]

QUICK_GRID = [
    ("generic", 1024, 3, 96, 128),
    # a dim >= 4096 point so the planner no-regression gate runs in CI
    ("generic", 4096, 3, 96, 128),
]

#: dims below this are exempt from the planner no-regression gate: the
#: fold slab fits in cache and timings are allocator/bandwidth noise
PLANNER_GATE_MIN_DIM = 4096

ENCODER_CLASSES = {"generic": GenericEncoder, "ngram": NgramEncoder}


def _make_encoder(name: str, dim: int, window: int, engine: str):
    cls = ENCODER_CLASSES[name]
    return cls(dim=dim, num_levels=64, seed=1, window=window, engine=engine)


def _time_encode(encoder, X, repeats: int):
    """Best-of-``repeats`` wall time and peak traced bytes for one run."""
    encoder.encode_batch(X[: max(1, len(X) // 8)])  # warm tables + caches
    best = float("inf")
    out = None
    tracemalloc.start()
    for _ in range(repeats):
        tracemalloc.reset_peak()
        t0 = time.perf_counter()
        out = encoder.encode_batch(X)
        best = min(best, time.perf_counter() - t0)
        _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return best, peak, out


def _planner_profile(encoder, X, packed_out, repeats):
    """Planned packed path vs. the retained PR 2 monolith baseline.

    Both sides are re-timed here *without* tracemalloc -- the engine
    timings above run under allocation tracing, which taxes the planned
    path's span bookkeeping unevenly and would skew the ratio.
    """
    plan = encoder.encode_plan()
    kernel = encoder._current_kernel()
    # interleave the two sides so memory-bandwidth drift on the host
    # hits both equally instead of biasing whichever ran later
    encoder.encode_batch(X[: max(1, len(X) // 8)])
    mono_out = kernel._encode_bins_monolith(encoder.quantizer.transform(X))
    planned_seconds = mono_seconds = float("inf")
    for _ in range(max(3, repeats)):
        t0 = time.perf_counter()
        encoder.encode_batch(X)
        planned_seconds = min(planned_seconds, time.perf_counter() - t0)
        t0 = time.perf_counter()
        mono_out = kernel._encode_bins_monolith(
            encoder.quantizer.transform(X)
        )
        mono_seconds = min(mono_seconds, time.perf_counter() - t0)
    return {
        "backend": plan.backend_name,
        "fuse_pairs": bool(plan.fuse_pairs),
        "window_block": int(plan.window_block),
        "chunk_samples": int(plan.chunk_samples),
        "planned_seconds": round(planned_seconds, 6),
        "monolith_seconds": round(mono_seconds, 6),
        "planned_vs_monolith": round(mono_seconds / planned_seconds, 2),
        "identical_to_monolith": bool(np.array_equal(packed_out, mono_out)),
    }


def _numba_available() -> bool:
    from repro.core.ir import BACKENDS

    return "numba-jit" in BACKENDS


def _numba_profile(name, dim, window, X, ref_seconds, ref_out, repeats):
    """Optional JIT backend timing (present only when numba imports)."""
    enc = _make_encoder(name, dim, window, "numba").fit(X)
    seconds, peak, out = _time_encode(enc, X, repeats)
    return {
        "seconds": round(seconds, 6),
        "samples_per_sec": round(len(X) / seconds, 1),
        "speedup_vs_reference": round(ref_seconds / seconds, 2),
        "identical": bool(np.array_equal(ref_out, out)),
    }


def run_grid(grid, repeats: int = 3, seed: int = 7):
    rng = np.random.default_rng(seed)
    results = []
    numba_present = _numba_available()
    for name, dim, window, n_samples, n_features in grid:
        X = rng.normal(size=(n_samples, n_features))
        point = {
            "encoder": name,
            "dim": dim,
            "window": window,
            "n_samples": n_samples,
            "n_features": n_features,
        }
        outputs = {}
        encoders = {}
        for engine in ("reference", "packed"):
            enc = _make_encoder(name, dim, window, engine).fit(X)
            seconds, peak, out = _time_encode(enc, X, repeats)
            outputs[engine] = out
            encoders[engine] = enc
            point[engine] = {
                "seconds": round(seconds, 6),
                "samples_per_sec": round(n_samples / seconds, 1),
                "peak_traced_mb": round(peak / 2**20, 2),
            }
        point["speedup"] = round(
            point["reference"]["seconds"] / point["packed"]["seconds"], 2
        )
        point["identical"] = bool(
            np.array_equal(outputs["reference"], outputs["packed"])
        )
        point["planner"] = _planner_profile(
            encoders["packed"], X, outputs["packed"], repeats,
        )
        if numba_present:
            point["numba"] = _numba_profile(
                name, dim, window, X, point["reference"]["seconds"],
                outputs["reference"], repeats,
            )
        results.append(point)
        numba_note = (
            f"  numba {point['numba']['speedup_vs_reference']:.2f}x-ref"
            if numba_present else ""
        )
        print(
            f"{name:8s} dim={dim:5d} n={window}  "
            f"ref {point['reference']['samples_per_sec']:9.1f}/s  "
            f"packed {point['packed']['samples_per_sec']:9.1f}/s  "
            f"speedup {point['speedup']:5.2f}x  "
            f"plan/mono {point['planner']['planned_vs_monolith']:5.2f}x  "
            f"identical={point['identical']}{numba_note}"
        )
    return results


def run_approx_profile(quick: bool, fraction: float = 0.5, seed: int = 11,
                       repeats: int = 3):
    """Accuracy cost and encode-time gain of 50%-fold approximation.

    Trains a small prototype-dataset classifier with exact encoding,
    then re-scores the held-out split with ``approx_folds`` set to
    ``fraction`` of the windows -- exactly what the degradation
    ladder's ``approx`` tier does to a live deployment.
    """
    from repro.core.classifier import HDClassifier
    from repro.datasets.synthetic import make_prototype_dataset

    if quick:
        n_train, n_test, dim, epochs = 240, 120, 1024, 5
    else:
        n_train, n_test, dim, epochs = 480, 240, 2048, 10
    X, y = make_prototype_dataset(
        n_classes=6, n_features=256, n_samples=n_train + n_test, seed=seed,
    )
    X_tr, y_tr = X[:n_train], y[:n_train]
    X_te, y_te = X[n_train:], y[n_train:]

    enc = _make_encoder("generic", dim, 3, "packed")
    clf = HDClassifier(enc, epochs=epochs, seed=0).fit(X_tr, y_tr)
    acc_exact = float(clf.score(X_te, y_te))
    t_exact, _, _ = _time_encode(enc, X_te, repeats)

    folds = max(1, int(round(fraction * enc.n_windows)))
    enc.approx_folds = folds
    try:
        acc_approx = float(clf.score(X_te, y_te))
        t_approx, _, _ = _time_encode(enc, X_te, repeats)
        bound = enc.encode_plan().error_bound
    finally:
        enc.approx_folds = None
    return {
        "fraction": fraction,
        "folds": folds,
        "n_windows": enc.n_windows,
        "dim": dim,
        "accuracy_exact": round(acc_exact, 4),
        "accuracy_approx": round(acc_approx, 4),
        "drop_pts": round((acc_exact - acc_approx) * 100, 2),
        "encode_seconds_exact": round(t_exact, 6),
        "encode_seconds_approx": round(t_approx, 6),
        "encode_time_ratio": round(t_approx / t_exact, 3),
        "error_bound": bound,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small smoke grid (CI)")
    parser.add_argument("--check", action="store_true",
                        help="fail if packed is slower or not bit-identical")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="--check threshold (default 1.0)")
    parser.add_argument("--min-planner-ratio", type=float, default=1.0,
                        help="--check floor for planned/monolith at "
                             f"dim >= {PLANNER_GATE_MIN_DIM} (default 1.0)")
    parser.add_argument("--min-numba-speedup", type=float, default=1.5,
                        help="--check floor for numba vs reference when "
                             "numba is installed (default 1.5)")
    parser.add_argument("--max-approx-drop", type=float, default=2.0,
                        help="--check ceiling for the 50%%-fold accuracy "
                             "drop in points (default 2.0)")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", type=pathlib.Path, default=OUT_PATH)
    args = parser.parse_args(argv)

    grid = QUICK_GRID if args.quick else FULL_GRID
    results = run_grid(grid, repeats=args.repeats)
    approx = run_approx_profile(args.quick, repeats=args.repeats)
    print(
        f"approx@{approx['fraction']:.0%}: "
        f"acc {approx['accuracy_exact']:.4f} -> {approx['accuracy_approx']:.4f} "
        f"(drop {approx['drop_pts']:+.2f} pts)  "
        f"encode time x{approx['encode_time_ratio']:.2f}"
    )
    report = {
        "workload": "synthetic normal(0,1), num_levels=64, seed fixed",
        "profile": "quick" if args.quick else "full",
        "numpy": np.__version__,
        "numba_backend": _numba_available(),
        "ru_maxrss_mb": round(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024, 1
        ),
        "results": results,
        "approx": approx,
    }
    args.out.write_text(json.dumps(report, indent=2, default=float) + "\n")
    print(f"wrote {args.out}")

    if args.check:
        failures = []
        for r in results:
            tag = f"{r['encoder']} dim={r['dim']} n={r['window']}"
            if not r["identical"]:
                failures.append(f"{tag}: engines not bit-identical")
            if r["speedup"] < args.min_speedup:
                failures.append(
                    f"{tag}: packed speedup {r['speedup']} "
                    f"< {args.min_speedup}"
                )
            plan = r["planner"]
            if not plan["identical_to_monolith"]:
                failures.append(
                    f"{tag}: planned path not bit-identical to monolith"
                )
            if (r["dim"] >= PLANNER_GATE_MIN_DIM
                    and plan["planned_vs_monolith"] < args.min_planner_ratio):
                failures.append(
                    f"{tag}: planned/monolith {plan['planned_vs_monolith']} "
                    f"< {args.min_planner_ratio}"
                )
            numba = r.get("numba")
            if numba is not None:
                if not numba["identical"]:
                    failures.append(
                        f"{tag}: numba not bit-identical to reference"
                    )
                if numba["speedup_vs_reference"] < args.min_numba_speedup:
                    failures.append(
                        f"{tag}: numba speedup "
                        f"{numba['speedup_vs_reference']} "
                        f"< {args.min_numba_speedup}"
                    )
        if approx["drop_pts"] > args.max_approx_drop:
            failures.append(
                f"approx: accuracy drop {approx['drop_pts']} pts "
                f"> {args.max_approx_drop}"
            )
        if approx["encode_time_ratio"] >= 1.0:
            failures.append(
                f"approx: encode time ratio {approx['encode_time_ratio']} "
                "did not improve on exact encoding"
            )
        for msg in failures:
            print(f"CHECK FAILED: {msg}", file=sys.stderr)
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
