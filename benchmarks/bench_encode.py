"""Encoding-kernel benchmark: reference vs. bit-packed engine.

Unlike the ``bench_fig*`` files this regenerates no paper artifact -- it
tracks the hot path the serving stack lives on.  For each
``encoder x dim x window`` point it times batch encoding on the default
synthetic workload with both engines, verifies they are bit-identical,
and writes samples/sec plus peak traced memory to ``BENCH_encode.json``
so later PRs can diff the perf trajectory.

Usage::

    PYTHONPATH=src python benchmarks/bench_encode.py            # full grid
    PYTHONPATH=src python benchmarks/bench_encode.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_encode.py --quick --check

``--check`` exits non-zero if any point lost bit-identity or the packed
engine failed to beat the reference engine (``--min-speedup``, default
1.0); CI runs the quick grid with it so a kernel regression fails the
build.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import resource
import sys
import time
import tracemalloc

import numpy as np

from repro.core.encoders import GenericEncoder, NgramEncoder

OUT_PATH = pathlib.Path("BENCH_encode.json")

#: the default synthetic workload: n_features chosen odd so dim % 64
#: padding and window overhang paths are exercised, not just the fast lane
FULL_GRID = [
    # (encoder, dim, window, n_samples, n_features)
    ("generic", 1024, 3, 256, 617),
    ("generic", 4096, 3, 256, 617),
    ("generic", 4096, 5, 256, 617),
    ("ngram", 4096, 3, 256, 617),
]

QUICK_GRID = [
    ("generic", 1024, 3, 96, 128),
]

ENCODER_CLASSES = {"generic": GenericEncoder, "ngram": NgramEncoder}


def _make_encoder(name: str, dim: int, window: int, engine: str):
    cls = ENCODER_CLASSES[name]
    return cls(dim=dim, num_levels=64, seed=1, window=window, engine=engine)


def _time_encode(encoder, X, repeats: int):
    """Best-of-``repeats`` wall time and peak traced bytes for one run."""
    encoder.encode_batch(X[: max(1, len(X) // 8)])  # warm tables + caches
    best = float("inf")
    out = None
    tracemalloc.start()
    for _ in range(repeats):
        tracemalloc.reset_peak()
        t0 = time.perf_counter()
        out = encoder.encode_batch(X)
        best = min(best, time.perf_counter() - t0)
        _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return best, peak, out


def run_grid(grid, repeats: int = 3, seed: int = 7):
    rng = np.random.default_rng(seed)
    results = []
    for name, dim, window, n_samples, n_features in grid:
        X = rng.normal(size=(n_samples, n_features))
        point = {
            "encoder": name,
            "dim": dim,
            "window": window,
            "n_samples": n_samples,
            "n_features": n_features,
        }
        outputs = {}
        for engine in ("reference", "packed"):
            enc = _make_encoder(name, dim, window, engine).fit(X)
            seconds, peak, out = _time_encode(enc, X, repeats)
            outputs[engine] = out
            point[engine] = {
                "seconds": round(seconds, 6),
                "samples_per_sec": round(n_samples / seconds, 1),
                "peak_traced_mb": round(peak / 2**20, 2),
            }
        point["speedup"] = round(
            point["reference"]["seconds"] / point["packed"]["seconds"], 2
        )
        point["identical"] = bool(
            np.array_equal(outputs["reference"], outputs["packed"])
        )
        results.append(point)
        print(
            f"{name:8s} dim={dim:5d} n={window}  "
            f"ref {point['reference']['samples_per_sec']:9.1f}/s  "
            f"packed {point['packed']['samples_per_sec']:9.1f}/s  "
            f"speedup {point['speedup']:5.2f}x  "
            f"identical={point['identical']}"
        )
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small smoke grid (CI)")
    parser.add_argument("--check", action="store_true",
                        help="fail if packed is slower or not bit-identical")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="--check threshold (default 1.0)")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", type=pathlib.Path, default=OUT_PATH)
    args = parser.parse_args(argv)

    grid = QUICK_GRID if args.quick else FULL_GRID
    results = run_grid(grid, repeats=args.repeats)
    report = {
        "workload": "synthetic normal(0,1), num_levels=64, seed fixed",
        "profile": "quick" if args.quick else "full",
        "numpy": np.__version__,
        "ru_maxrss_mb": round(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024, 1
        ),
        "results": results,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.check:
        bad = [
            r for r in results
            if not r["identical"] or r["speedup"] < args.min_speedup
        ]
        for r in bad:
            print(
                f"CHECK FAILED: {r['encoder']} dim={r['dim']} n={r['window']} "
                f"speedup={r['speedup']} identical={r['identical']}",
                file=sys.stderr,
            )
        return 1 if bad else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
