"""Table 2 regeneration: K-means vs HDC clustering NMI on FCPS + Iris."""

from __future__ import annotations

import pytest

from repro.baselines import KMeans
from repro.core.clustering import HDCluster
from repro.core.encoders import GenericEncoder
from repro.datasets import make_cluster_dataset
from repro.eval.experiments import table2


_CACHE = {}


def _regenerate():
    """Run the experiment once per session; later tests reuse the result."""
    if "result" not in _CACHE:
        result = table2.run()
        print()
        print(result.render(float_fmt="{:.3f}"))
        _CACHE["result"] = result
    return _CACHE["result"]


@pytest.fixture(scope="module")
def table2_result():
    return _regenerate()


def test_regenerate_and_verify(benchmark):
    """The paper artifact itself: regenerate the rows, assert the claims."""
    result = benchmark.pedantic(
        _regenerate, args=(), rounds=1, iterations=1
    )
    result.assert_claims()


class TestTable2Shape:
    def test_all_claims_hold(self, table2_result):
        table2_result.assert_claims()

    def test_five_rows(self, table2_result):
        assert len(table2_result.data["table"]) == 5

    def test_hdc_wins_somewhere_or_stays_close(self, table2_result):
        """Paper: K-means edges HDC by only 0.031 on average."""
        table = table2_result.data["table"]
        gaps = [row["kmeans"] - row["hdc"] for row in table.values()]
        assert min(gaps) < 0.05  # HDC ties or wins at least once


class TestTable2Kernels:
    def test_hdc_clustering_speed(self, benchmark):
        X, _, k = make_cluster_dataset("Tetra", seed=7, scale=0.3)
        def run():
            enc = GenericEncoder(dim=1024, seed=7, window=3)
            return HDCluster(enc, k=k, epochs=8, seed=7).fit(X)
        benchmark(run)

    def test_kmeans_speed(self, benchmark):
        X, _, k = make_cluster_dataset("Tetra", seed=7, scale=0.3)
        benchmark(lambda: KMeans(k=k, seed=7).fit(X))
