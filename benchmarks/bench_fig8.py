"""Fig. 8 regeneration: per-input training energy and time."""

from __future__ import annotations

import pytest

from repro.core.encoders import GenericEncoder
from repro.datasets import load_dataset
from repro.eval.experiments import fig8
from repro.hardware.accelerator import GenericAccelerator
from repro.hardware.spec import AppSpec, Mode


_CACHE = {}


def _regenerate(bench_profile):
    """Run the experiment once per session; later tests reuse the result."""
    if "result" not in _CACHE:
        result = fig8.run(profile=bench_profile)
        print()
        for chart in ([result.data.get("chart")] if "chart" in result.data
                      else result.data.get("charts", {}).values()):
            print()
            print(chart)
        print(result.render(float_fmt="{:.4g}"))
        _CACHE["result"] = result
    return _CACHE["result"]


@pytest.fixture(scope="module")
def fig8_result(bench_profile):
    return _regenerate(bench_profile)


def test_regenerate_and_verify(benchmark, bench_profile):
    """The paper artifact itself: regenerate the rows, assert the claims."""
    result = benchmark.pedantic(
        _regenerate, args=(bench_profile,), rounds=1, iterations=1
    )
    result.assert_claims()


class TestFig8Shape:
    def test_all_claims_hold(self, fig8_result):
        fig8_result.assert_claims()

    def test_energy_ordering(self, fig8_result):
        """GENERIC cheapest; DNN the most expensive trainer."""
        e = fig8_result.data["energy_j"]
        assert e["GENERIC"] == min(e.values())
        assert e["DNN (eGPU)"] > e["HDC (eGPU)"]


class TestFig8Kernels:
    def test_on_device_training_throughput(self, benchmark, bench_profile):
        ds = load_dataset("PAGE", bench_profile)
        enc = GenericEncoder(dim=1024, seed=5)
        enc.fit(ds.X_train)

        def train():
            acc = GenericAccelerator()
            acc.configure(AppSpec(dim=1024, n_features=ds.n_features,
                                  n_classes=ds.n_classes, mode=Mode.TRAIN))
            acc.load_tables(enc.levels.vectors, enc.id_generator.seed,
                            enc.quantizer.lo, enc.quantizer.hi)
            return acc.train(ds.X_train[:60], ds.y_train[:60], epochs=2)

        benchmark(train)
