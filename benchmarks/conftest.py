"""Shared configuration for the benchmark harness.

Each ``bench_*`` file regenerates one table or figure of the paper:
it runs the experiment module once (cached), prints the paper-style
rows, asserts the shape claims, and times the hot kernels under
pytest-benchmark.  Run with::

    pytest benchmarks/ --benchmark-only

Environment knob ``REPRO_PROFILE`` (tiny | bench | full) trades
fidelity for runtime; the default is ``bench``.
"""

from __future__ import annotations

import os

import pytest


def profile() -> str:
    return os.environ.get("REPRO_PROFILE", "bench")


@pytest.fixture(scope="session")
def bench_profile() -> str:
    return profile()
