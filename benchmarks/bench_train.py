"""Training-engine benchmark: reference vs. Gram-cached retraining.

Counterpart of ``bench_encode.py`` for the fit() hot path.  For each
``(n, features, classes, noise, epochs, dim)`` point it trains one
:class:`HDClassifier` with the sequential reference engine and one with
the Gram-cached engine on the same synthetic workload, verifies the two
runs are **result-identical** (same class-vector matrix, same sub-norm
table, same per-epoch update counts and accuracies), and writes both
the retrain-phase and end-to-end timings to ``BENCH_train.json``.

The speedup gate applies to the retrain phase (``report_.seconds``) --
that is the stage the Gram engine replaces; encoding is shared by both
engines, so end-to-end fit() speedup is reported alongside but is
bounded by the encode cost.

Usage::

    PYTHONPATH=src python benchmarks/bench_train.py            # full grid
    PYTHONPATH=src python benchmarks/bench_train.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_train.py --quick --check

``--check`` exits non-zero if any point lost result-identity or the
Gram engine's retrain phase missed that point's speedup floor (the
``--min-speedup`` flag scales every floor; CI runs the quick grid so a
regression that makes gram slower than reference fails the build).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import resource
import sys
import time

import numpy as np

from repro.core.classifier import HDClassifier
from repro.core.encoders import GenericEncoder

OUT_PATH = pathlib.Path("BENCH_train.json")

#: (n_samples, n_features, n_classes, label_noise, epochs, dim, min_speedup)
#: the label noise keeps every epoch producing mispredictions, so the
#: full ``epochs`` budget is exercised rather than early-stopping
FULL_GRID = [
    (2048, 16, 32, 0.25, 20, 4096, 5.0),   # headline: the issue's >=5x point
    (1024, 16, 32, 0.25, 20, 4096, 3.0),
    (2048, 16, 32, 0.25, 20, 1024, 1.5),
]

QUICK_GRID = [
    (768, 16, 16, 0.25, 10, 1024, 1.0),
]


def make_workload(n: int, n_features: int, n_classes: int,
                  noise: float, seed: int = 7):
    """Gaussian clusters with a fraction of labels flipped at random."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(n_classes, n_features)) * 2.0
    y = rng.integers(0, n_classes, size=n)
    X = centers[y] + rng.normal(size=(n, n_features))
    flip = rng.random(n) < noise
    y[flip] = rng.integers(0, n_classes, size=int(flip.sum()))
    return X, y


def _time_fit(engine: str, X, y, dim: int, epochs: int, repeats: int):
    """Best-of-``repeats`` fit; returns (fit_s, retrain_s, classifier)."""
    best_fit = best_retrain = float("inf")
    clf = None
    for _ in range(repeats):
        encoder = GenericEncoder(dim=dim, num_levels=32, seed=1)
        clf = HDClassifier(encoder, epochs=epochs, seed=1, train_engine=engine)
        t0 = time.perf_counter()
        clf.fit(X, y)
        best_fit = min(best_fit, time.perf_counter() - t0)
        best_retrain = min(best_retrain, clf.report_.seconds)
    return best_fit, best_retrain, clf


def _identical(ref: HDClassifier, gram: HDClassifier) -> bool:
    """Result-identity: same model, norms and training trajectory."""
    return (
        np.array_equal(ref.model_, gram.model_)
        and np.array_equal(ref.norms_.table, gram.norms_.table)
        and ref.report_.epochs_run == gram.report_.epochs_run
        and ref.report_.updates_per_epoch == gram.report_.updates_per_epoch
        and ref.report_.train_accuracy_per_epoch
        == gram.report_.train_accuracy_per_epoch
    )


def run_grid(grid, repeats: int = 3, min_speedup_scale: float = 1.0):
    results = []
    for n, n_features, n_classes, noise, epochs, dim, floor in grid:
        X, y = make_workload(n, n_features, n_classes, noise)
        point = {
            "n_samples": n,
            "n_features": n_features,
            "n_classes": n_classes,
            "label_noise": noise,
            "epochs": epochs,
            "dim": dim,
            "min_speedup": round(floor * min_speedup_scale, 2),
        }
        clfs = {}
        for engine in ("reference", "gram"):
            fit_s, retrain_s, clf = _time_fit(engine, X, y, dim, epochs, repeats)
            clfs[engine] = clf
            point[engine] = {
                "fit_seconds": round(fit_s, 6),
                "retrain_seconds": round(retrain_s, 6),
                "updates": sum(clf.report_.updates_per_epoch),
                "epochs_run": clf.report_.epochs_run,
            }
        plan = clfs["gram"].train_plan_
        point["gram_plan"] = {"engine": plan.engine, "kernel": plan.kernel,
                              "cache_mb": round(plan.cache_bytes / 2**20, 2)}
        point["retrain_speedup"] = round(
            point["reference"]["retrain_seconds"]
            / point["gram"]["retrain_seconds"], 2
        )
        point["fit_speedup"] = round(
            point["reference"]["fit_seconds"] / point["gram"]["fit_seconds"], 2
        )
        point["identical"] = _identical(clfs["reference"], clfs["gram"])
        results.append(point)
        print(
            f"n={n:5d} D={dim:5d} C={n_classes:3d} ep={epochs:3d}  "
            f"ref {point['reference']['retrain_seconds']:7.3f}s  "
            f"gram {point['gram']['retrain_seconds']:7.3f}s  "
            f"retrain {point['retrain_speedup']:5.2f}x  "
            f"fit {point['fit_speedup']:5.2f}x  "
            f"identical={point['identical']}"
        )
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small smoke grid (CI)")
    parser.add_argument("--check", action="store_true",
                        help="fail if gram is slow or not result-identical")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="scale applied to each point's speedup floor")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", type=pathlib.Path, default=OUT_PATH)
    args = parser.parse_args(argv)

    grid = QUICK_GRID if args.quick else FULL_GRID
    results = run_grid(grid, repeats=args.repeats,
                       min_speedup_scale=args.min_speedup)
    report = {
        "workload": "gaussian clusters + label noise, num_levels=32, seed fixed",
        "profile": "quick" if args.quick else "full",
        "speedup_basis": "retrain phase (report_.seconds); fit() shown too",
        "numpy": np.__version__,
        "ru_maxrss_mb": round(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024, 1
        ),
        "results": results,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.check:
        bad = [
            r for r in results
            if not r["identical"] or r["retrain_speedup"] < r["min_speedup"]
        ]
        for r in bad:
            print(
                f"CHECK FAILED: n={r['n_samples']} dim={r['dim']} "
                f"retrain_speedup={r['retrain_speedup']} "
                f"(floor {r['min_speedup']}) identical={r['identical']}",
                file=sys.stderr,
            )
        return 1 if bad else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
