"""RTL cross-validation bench: the reproduction's "Modelsim" step.

The paper verified its SystemVerilog in Modelsim; here the clock-stepped
RTL twin is checked against the functional models at a small
configuration, and its simulation cost is measured (the price of
cycle accuracy, ~10^4x slower than the functional model).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import model_io
from repro.core.classifier import HDClassifier
from repro.core.encoders import GenericEncoder
from repro.hardware import controller
from repro.hardware.accelerator import GenericAccelerator
from repro.hardware.params import ArchParams
from repro.hardware.spec import AppSpec
from repro.rtl import GenericRTL

DIM = 128
LANES = 16


@pytest.fixture(scope="module")
def validated():
    rng = np.random.default_rng(61)
    protos = rng.normal(scale=1.5, size=(3, 12))
    y = rng.integers(0, 3, size=60)
    X = protos[y] + rng.normal(scale=0.5, size=(60, 12))
    enc = GenericEncoder(dim=DIM, num_levels=8, seed=19)
    clf = HDClassifier(enc, epochs=3, seed=19, norm_block=64)
    clf.fit(X, y)
    image = model_io.export_model(clf)
    rtl = GenericRTL(lanes=LANES, norm_block=64).load_image(image)
    acc = GenericAccelerator()
    acc.load_image(image)
    return rtl, acc, clf, X


def test_rtl_cross_validation(benchmark, validated):
    """One timed RTL inference + the three equivalence assertions."""
    rtl, acc, clf, X = validated

    result = benchmark(rtl.infer_one, X[0])
    # 1. encoding bit-exact with the software encoder
    assert np.array_equal(result.encoding, clf.encoder.encode(X[0]))
    # 2. prediction matches the functional accelerator
    assert result.prediction == acc.infer(X[:1]).predictions[0]
    # 3. cycle count tracks the analytical controller model within 2x
    spec = AppSpec(dim=DIM, n_features=X.shape[1], window=3, n_classes=3)
    analytical, _ = controller.inference(
        spec, ArchParams(lanes=LANES, norm_block=64)
    )
    assert 0.5 < result.cycles / analytical < 2.0


def test_functional_model_speed(benchmark, validated):
    """Reference point: the functional accelerator on the same input."""
    _, acc, _, X = validated
    benchmark(acc.infer, X[:1])
