"""Ablation benches: id compression, power gating, window-length sweep."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ids import SeedIdGenerator
from repro.eval.experiments import ablations

_CACHE = {}


def _regenerate(which: str, bench_profile: str):
    key = which
    if key not in _CACHE:
        runner = {
            "ids": ablations.run_id_compression,
            "gating": ablations.run_power_gating,
            "window": ablations.run_window_sweep,
            "divider": ablations.run_divider,
            "bitwidth": ablations.run_bitwidth,
            "levels": ablations.run_level_scheme,
            "convergence": ablations.run_convergence,
        }.get(which)
        if runner is not None:
            result = runner(profile=bench_profile)
        else:
            result = {
                "banks": ablations.run_bank_sweep,
                "burst": ablations.run_burst_throughput,
            }[which]()
        print()
        print(result.render(float_fmt="{:.4g}"))
        _CACHE[key] = result
    return _CACHE[key]


@pytest.fixture(scope="module")
def a1_result(bench_profile):
    return _regenerate("ids", bench_profile)


@pytest.fixture(scope="module")
def a2_result(bench_profile):
    return _regenerate("gating", bench_profile)


@pytest.fixture(scope="module")
def a3_result(bench_profile):
    return _regenerate("window", bench_profile)


def test_regenerate_and_verify_id_compression(benchmark, bench_profile):
    result = benchmark.pedantic(
        _regenerate, args=("ids", bench_profile), rounds=1, iterations=1
    )
    result.assert_claims()


def test_regenerate_and_verify_power_gating(benchmark, bench_profile):
    result = benchmark.pedantic(
        _regenerate, args=("gating", bench_profile), rounds=1, iterations=1
    )
    result.assert_claims()


def test_regenerate_and_verify_window_sweep(benchmark, bench_profile):
    result = benchmark.pedantic(
        _regenerate, args=("window", bench_profile), rounds=1, iterations=1
    )
    result.assert_claims()


class TestIdCompression:
    def test_claims(self, a1_result):
        a1_result.assert_claims()

    def test_id_generation_speed(self, benchmark):
        gen = SeedIdGenerator(np.random.default_rng(0), dim=4096)
        benchmark(gen.table, 1024)


class TestPowerGating:
    def test_claims(self, a2_result):
        a2_result.assert_claims()

    def test_suite_has_low_and_high_occupancy_apps(self, a2_result):
        """Paper: minimum ~6% (EEG/FACE), maximum ~81% (ISOLET)."""
        occupancies = [
            float(r[2].rstrip("%")) / 100
            for r in a2_result.rows
            if r[0] != "AVERAGE"
        ]
        assert min(occupancies) < 0.15
        assert max(occupancies) > 0.5


class TestWindowSweep:
    def test_claims(self, a3_result):
        a3_result.assert_claims()

    def test_covers_n_1_to_5(self, a3_result):
        assert sorted(a3_result.data["means"]) == [1, 2, 3, 4, 5]


def test_regenerate_and_verify_divider(benchmark, bench_profile):
    result = benchmark.pedantic(
        _regenerate, args=("divider", bench_profile), rounds=1, iterations=1
    )
    result.assert_claims()


def test_regenerate_and_verify_bitwidth(benchmark, bench_profile):
    result = benchmark.pedantic(
        _regenerate, args=("bitwidth", bench_profile), rounds=1, iterations=1
    )
    result.assert_claims()


def test_regenerate_and_verify_bank_sweep(benchmark, bench_profile):
    result = benchmark.pedantic(
        _regenerate, args=("banks", bench_profile), rounds=1, iterations=1
    )
    result.assert_claims()


def test_regenerate_and_verify_burst(benchmark, bench_profile):
    result = benchmark.pedantic(
        _regenerate, args=("burst", bench_profile), rounds=1, iterations=1
    )
    result.assert_claims()


def test_regenerate_and_verify_level_scheme(benchmark, bench_profile):
    result = benchmark.pedantic(
        _regenerate, args=("levels", bench_profile), rounds=1, iterations=1
    )
    result.assert_claims()


def test_regenerate_and_verify_convergence(benchmark, bench_profile):
    result = benchmark.pedantic(
        _regenerate, args=("convergence", bench_profile), rounds=1, iterations=1
    )
    result.assert_claims()
