"""Fig. 9 regeneration: inference energy vs accelerators and devices."""

from __future__ import annotations

import pytest

from repro.core import model_io
from repro.core.classifier import HDClassifier
from repro.core.encoders import GenericEncoder
from repro.datasets import load_dataset
from repro.eval.experiments import fig9
from repro.hardware.accelerator import GenericAccelerator


_CACHE = {}


def _regenerate(bench_profile):
    """Run the experiment once per session; later tests reuse the result."""
    if "result" not in _CACHE:
        result = fig9.run(profile=bench_profile)
        print()
        for chart in ([result.data.get("chart")] if "chart" in result.data
                      else result.data.get("charts", {}).values()):
            print()
            print(chart)
        print(result.render(float_fmt="{:.4g}"))
        _CACHE["result"] = result
    return _CACHE["result"]


@pytest.fixture(scope="module")
def fig9_result(bench_profile):
    return _regenerate(bench_profile)


def test_regenerate_and_verify(benchmark, bench_profile):
    """The paper artifact itself: regenerate the rows, assert the claims."""
    result = benchmark.pedantic(
        _regenerate, args=(bench_profile,), rounds=1, iterations=1
    )
    result.assert_claims()


class TestFig9Shape:
    def test_all_claims_hold(self, fig9_result):
        fig9_result.assert_claims()

    def test_generic_lp_is_cheapest(self, fig9_result):
        e = fig9_result.data["energy_j"]
        assert e["GENERIC-LP"] == min(e.values())

    def test_lp_package_factor(self, fig9_result):
        """Paper: the LP techniques buy ~15.5x; accept a wide band."""
        e = fig9_result.data["energy_j"]
        assert 4 < e["GENERIC"] / e["GENERIC-LP"] < 40


class TestFig9Kernels:
    def test_accelerator_inference_throughput(self, benchmark, bench_profile):
        ds = load_dataset("MNIST", bench_profile)
        enc = GenericEncoder(dim=2048, seed=5)
        clf = HDClassifier(enc, epochs=2, seed=5).fit(ds.X_train, ds.y_train)
        acc = GenericAccelerator()
        acc.load_image(model_io.export_model(clf))
        benchmark(acc.infer, ds.X_test[:16])
