"""Fig. 7 regeneration: area / static / dynamic power breakdown."""

from __future__ import annotations

import pytest

from repro.eval.experiments import fig7
from repro.hardware import controller
from repro.hardware.counters import Counters
from repro.hardware.energy import EnergyModel
from repro.hardware.params import DEFAULT_PARAMS
from repro.hardware.spec import AppSpec


_CACHE = {}


def _regenerate(bench_profile):
    """Run the experiment once per session; later tests reuse the result."""
    if "result" not in _CACHE:
        result = fig7.run(profile=bench_profile)
        print()
        print(result.render(float_fmt="{:.4g}"))
        _CACHE["result"] = result
    return _CACHE["result"]


@pytest.fixture(scope="module")
def fig7_result(bench_profile):
    return _regenerate(bench_profile)


def test_regenerate_and_verify(benchmark, bench_profile):
    """The paper artifact itself: regenerate the rows, assert the claims."""
    result = benchmark.pedantic(
        _regenerate, args=(bench_profile,), rounds=1, iterations=1
    )
    result.assert_claims()


class TestFig7Shape:
    def test_all_claims_hold(self, fig7_result):
        fig7_result.assert_claims()

    def test_six_components(self, fig7_result):
        assert len(fig7_result.data["area_mm2"]) == 6

    def test_typical_static_below_worst(self, fig7_result):
        assert fig7_result.data["typical_static_w"] < sum(
            fig7_result.data["worst_static_w"].values()
        )


class TestFig7Kernels:
    def test_energy_report_speed(self, benchmark):
        model = EnergyModel(DEFAULT_PARAMS)
        spec = AppSpec(**EnergyModel.REFERENCE_SPEC).validate()
        counters = Counters()
        _, c = controller.inference(spec, DEFAULT_PARAMS)
        counters.add(c)
        benchmark(model.report, counters)
