"""Fig. 3 regeneration: HDC/ML energy & time on conventional devices."""

from __future__ import annotations

import pytest

from repro.core.encoders import make_encoder
from repro.datasets import load_dataset
from repro.eval.experiments import fig3
from repro.platforms import EDGE_GPU, RASPBERRY_PI, hdc_inference_workload


_CACHE = {}


def _regenerate(bench_profile):
    """Run the experiment once per session; later tests reuse the result."""
    if "result" not in _CACHE:
        result = fig3.run(profile=bench_profile)
        print()
        print(result.render(float_fmt="{:.4g}"))
        _CACHE["result"] = result
    return _CACHE["result"]


@pytest.fixture(scope="module")
def fig3_result(bench_profile):
    return _regenerate(bench_profile)


def test_regenerate_and_verify(benchmark, bench_profile):
    """The paper artifact itself: regenerate the rows, assert the claims."""
    result = benchmark.pedantic(
        _regenerate, args=(bench_profile,), rounds=1, iterations=1
    )
    result.assert_claims()


class TestFig3Shape:
    def test_all_claims_hold(self, fig3_result):
        fig3_result.assert_claims()

    def test_every_device_and_algorithm_present(self, fig3_result):
        results = fig3_result.data["results"]
        assert set(fig3.HDC_ALGOS) <= set(results)
        assert set(fig3.ML_ALGOS) <= set(results)
        for algo in results.values():
            assert set(algo) == {"Raspberry Pi", "CPU", "eGPU"}

    def test_training_costs_more_than_inference(self, fig3_result):
        """Per-input, every platform pays more to train than to infer."""
        results = fig3_result.data["results"]
        for algo, devices in results.items():
            for dev, vals in devices.items():
                assert vals["train_energy_j"] > vals["infer_energy_j"] * 0.5


class TestFig3Kernels:
    def test_workload_model_evaluation_speed(self, benchmark, bench_profile):
        ds = load_dataset("MNIST", bench_profile)
        enc = make_encoder("generic", dim=2048, seed=5)
        enc.fit(ds.X_train)
        w = hdc_inference_workload(enc, ds.n_classes)

        def evaluate():
            return (RASPBERRY_PI.energy_j(w), EDGE_GPU.energy_j(w))

        benchmark(evaluate)
