"""Serving-layer traffic benchmark: throughput, latency, shed behavior.

Unlike the ``bench_fig*`` files this regenerates no paper artifact -- it
seeds the repo's *serving* trajectory: open-loop Poisson traffic from
:mod:`repro.serve.bench` at three load points (light, moderate, and a
deliberately overloading one), written to ``BENCH_serve.json`` so later
PRs can diff throughput, p50/p95/p99 latency, and shed events against
this baseline.

The shape claims asserted here are the serving analogue of the paper's
Section 4.3.3 story: under overload the shed level *rises* (dimension
reduction engages) while tail latency stays bounded and every admitted
request still completes.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.serve.bench import run_bench
from repro.serve.server import ServeConfig

OUT_PATH = pathlib.Path("BENCH_serve.json")

#: offered rates (req/s): comfortably under, near, and far past capacity
RATES = (400.0, 1600.0, 6400.0)

_REQUESTS = {"tiny": 80, "bench": 250, "full": 1000}

_CACHE = {}


def _config() -> ServeConfig:
    """One slow-ish worker so the top rate genuinely overloads it."""
    return ServeConfig(
        max_batch=8,
        n_workers=1,
        queue_high=8,
        queue_low=1,
        shed_cooldown=0.005,
    )


def _regenerate(bench_profile):
    if "report" not in _CACHE:
        n_requests = _REQUESTS.get(bench_profile, 250)
        report = run_bench(
            rates=RATES,
            n_requests=n_requests,
            dim=2048,
            config=_config(),
            seed=7,
        )
        OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
        print()
        for p in report["load_points"]:
            print(
                f"  {p['offered_rate_rps']:>6.0f} rps offered | "
                f"{p['achieved_throughput_rps']:>6.0f} served/s | "
                f"p95 {p['latency_ms']['p95']:>7.2f} ms | "
                f"shed max level {p['shed']['max_level_seen']} "
                f"({p['shed']['shed_predictions']} shed predictions)"
            )
        _CACHE["report"] = report
    return _CACHE["report"]


@pytest.fixture(scope="module")
def serve_report(bench_profile):
    return _regenerate(bench_profile)


def test_regenerate_and_write_json(benchmark, bench_profile):
    """Run the traffic harness and persist BENCH_serve.json."""
    report = benchmark.pedantic(
        _regenerate, args=(bench_profile,), rounds=1, iterations=1
    )
    assert OUT_PATH.exists()
    on_disk = json.loads(OUT_PATH.read_text())
    assert len(on_disk["load_points"]) == len(RATES)


class TestReportShape:
    def test_percentiles_at_every_load_point(self, serve_report):
        for p in serve_report["load_points"]:
            lat = p["latency_ms"]
            assert lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]
            assert p["achieved_throughput_rps"] > 0

    def test_every_admitted_request_completes(self, serve_report):
        for p in serve_report["load_points"]:
            assert p["errors"] == 0
            assert p["completed"] + p["rejected"] == p["n_requests"]

    def test_light_load_serves_at_full_dimension(self, serve_report):
        light = serve_report["load_points"][0]
        assert light["shed"]["max_level_seen"] == 0
        assert light["shed"]["shed_predictions"] == 0

    def test_overload_engages_dimension_shedding(self, serve_report):
        overload = serve_report["load_points"][-1]
        assert overload["shed"]["max_level_seen"] >= 1
        assert overload["shed"]["shed_predictions"] > 0

    def test_tail_latency_stays_bounded_under_overload(self, serve_report):
        """Shedding is the point: p95 under overload must not blow up
        past a generous bound (seconds would mean queueing collapse)."""
        overload = serve_report["load_points"][-1]
        assert overload["latency_ms"]["p95"] < 500.0
