"""Streaming gate: accuracy under drift, exactness, and swap safety.

Runs the same synthetic covariate-drift stream (class prototypes morph
mid-stream, see :func:`repro.datasets.make_drift_stream`) through the
serving stack twice:

- **static** -- the model trained on the pre-drift head serves the
  whole stream unchanged (the deploy-and-forget baseline);
- **stream** -- a :class:`repro.stream.StreamLoop` watches margins,
  retrains on the replay window when drift fires, and hot-swaps the
  retrained version into the live server while requests are in flight.

``--check`` (CI) enforces the streaming contract:

- chunked streaming encoding is bit-identical to one-shot
  ``encode_batch`` for a frozen level table (several chunk sizes);
- the loop hot-swaps at least one retrained model version;
- the loop recovers at least half of the accuracy the static model
  loses after the drift completes, and beats the static model by at
  least 5 points on the post-drift tail;
- no served request is dropped or left hanging, swap or no swap;
- the p99 of requests served while a swap landed stays within a small
  multiple of the undisturbed p99 (swaps must not stall serving).

Results land in ``BENCH_stream.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_stream.py            # full
    PYTHONPATH=src python benchmarks/bench_stream.py --quick --check
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

from repro.core.classifier import HDClassifier
from repro.core.encoders import GenericEncoder
from repro.datasets import make_drift_stream
from repro.serve import InferenceServer, ServeConfig
from repro.stream import DriftConfig, StreamConfig, StreamLoop, StreamingEncoder

OUT_PATH = pathlib.Path("BENCH_stream.json")


def make_workload(dim: int, n_samples: int, pretrain: int, seed: int):
    """Drift stream + a classifier trained on its pre-drift head."""
    X, y, phase = make_drift_stream(
        n_classes=4, n_features=32, n_samples=n_samples, seed=seed,
        drift_start=0.4, drift_end=0.6, drift_magnitude=1.0, noise=0.4,
    )
    enc = GenericEncoder(dim=dim, num_levels=16, seed=seed)
    clf = HDClassifier(enc, epochs=4, seed=seed)
    clf.fit(X[:pretrain], y[:pretrain])
    return clf, X, y, phase


def check_bit_identity(clf, X, chunk_sizes=(1, 17, 64, 256)) -> dict:
    """Chunked streaming output vs one-shot encode_batch (frozen range)."""
    block = X[:min(400, len(X))]
    reference = clf.encoder.encode_batch(block)
    results = {}
    for chunk in chunk_sizes:
        streamed = StreamingEncoder(clf.encoder, chunk_size=chunk).encode(block)
        results[str(chunk)] = bool(np.array_equal(streamed, reference))
    return {"chunk_sizes": results, "ok": all(results.values())}


def run_scenario(name: str, clf, X, y, phase, pretrain: int, chunk: int,
                 use_loop: bool):
    """Serve the post-pretrain stream chunk by chunk; score prequentially.

    Every chunk is submitted to the live server (latency + swap-safety
    measurement); with ``use_loop`` the same chunk then feeds the stream
    loop, whose background retrains land *while the next chunks are
    being served*.  ``wait_idle`` between chunks keeps retrain timing
    deterministic enough for a CI gate without serializing the swap out
    of the serving path.
    """
    server = InferenceServer(ServeConfig(n_workers=2, max_batch=32))
    loop = None
    if use_loop:
        loop = StreamLoop(server, clf, StreamConfig(
            model_name="bench", chunk_size=chunk,
            replay_capacity=6 * chunk,
            drift=DriftConfig(window=2 * chunk, warmup=2 * chunk,
                              cooldown=2 * chunk, margin_drop=0.3),
        ))
    else:
        server.register("bench", clf)

    chunks = []
    dropped = hung = 0
    t0 = time.monotonic()
    with server:
        if loop is not None:
            loop.start()
        try:
            for start in range(pretrain, len(X), chunk):
                Xc, yc = X[start:start + chunk], y[start:start + chunk]
                version_before = server.registry.get("bench").version
                futures = [server.submit("bench", x) for x in Xc]
                if loop is not None:
                    # may fire a retrain that swaps mid-gather
                    loop.process(Xc, yc)
                preds, latencies = [], []
                for fut in futures:
                    try:
                        p = fut.result(timeout=30.0)
                        preds.append(p.label)
                        latencies.append(p.latency)
                    except TimeoutError:
                        hung += 1
                        preds.append(None)
                    except Exception:
                        dropped += 1
                        preds.append(None)
                if loop is not None:
                    loop.wait_idle(timeout=60.0)
                version_after = server.registry.get("bench").version
                chunks.append({
                    "start": start,
                    "phase": float(phase[start:start + chunk].mean()),
                    "accuracy": float(np.mean(
                        [p == t for p, t in zip(preds, yc)])),
                    "latency_s": latencies,
                    "swap": version_after != version_before,
                })
        finally:
            if loop is not None:
                loop.stop()
        final_version = server.registry.get("bench").version
    wall_s = time.monotonic() - t0

    post = [c for c in chunks if c["phase"] >= 1.0]
    pre = [c for c in chunks if c["phase"] <= 0.0]
    all_lat = np.asarray([l for c in chunks for l in c["latency_s"]])
    swap_lat = np.asarray([l for c in chunks if c["swap"]
                           for l in c["latency_s"]])
    calm_lat = np.asarray([l for c in chunks if not c["swap"]
                           for l in c["latency_s"]])

    def p99(arr):
        return (round(float(np.percentile(arr, 99) * 1e3), 3)
                if arr.size else None)

    report = {
        "scenario": name,
        "chunks": len(chunks),
        "requests": int(all_lat.size + dropped + hung),
        "dropped": dropped,
        "hung": hung,
        "swaps": sum(c["swap"] for c in chunks),
        "model_versions": final_version,
        "retrain_swaps": loop.swaps if loop is not None else 0,
        "drift_events": len(loop.detector.events) if loop is not None else 0,
        "accuracy": {
            "pre_drift": round(float(np.mean(
                [c["accuracy"] for c in pre])), 4) if pre else None,
            "post_drift": round(float(np.mean(
                [c["accuracy"] for c in post])), 4) if post else None,
            "by_chunk": [round(c["accuracy"], 4) for c in chunks],
        },
        "latency_ms": {
            "p50": round(float(np.percentile(all_lat, 50) * 1e3), 3),
            "p99": p99(all_lat),
            "p99_during_swap": p99(swap_lat),
            "p99_calm": p99(calm_lat),
        },
        "wall_s": round(wall_s, 3),
    }
    print(
        f"{name:7s}  post-drift acc "
        f"{report['accuracy']['post_drift']:.3f}  "
        f"swaps {report['swaps']}  p99 {report['latency_ms']['p99']:.1f}ms"
        + (f"  (during swap {report['latency_ms']['p99_during_swap']:.1f}ms)"
           if swap_lat.size else "")
        + f"  dropped {dropped}  hung {hung}"
    )
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small smoke workload (CI)")
    parser.add_argument("--check", action="store_true",
                        help="fail when the streaming contract is violated")
    parser.add_argument("--min-recovery", type=float, default=0.5,
                        help="--check floor on recovered accuracy fraction")
    parser.add_argument("--min-gain", type=float, default=0.05,
                        help="--check floor on stream-vs-static accuracy gain")
    parser.add_argument("--swap-p99-factor", type=float, default=5.0,
                        help="--check cap on p99(during swap)/p99(calm)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=pathlib.Path, default=OUT_PATH)
    args = parser.parse_args(argv)

    dim = 512 if args.quick else 1024
    n_samples = 2400 if args.quick else 4800
    pretrain = 600 if args.quick else 1200
    chunk = 50 if args.quick else 100

    clf, X, y, phase = make_workload(dim, n_samples, pretrain, args.seed)
    identity = check_bit_identity(clf, X)
    print(f"bit-identity (chunked == one-shot): {identity['ok']}")

    static = run_scenario("static", clf, X, y, phase, pretrain, chunk,
                          use_loop=False)
    stream = run_scenario("stream", clf, X, y, phase, pretrain, chunk,
                          use_loop=True)

    pre_acc = static["accuracy"]["pre_drift"]
    static_post = static["accuracy"]["post_drift"]
    stream_post = stream["accuracy"]["post_drift"]
    lost = max(1e-9, pre_acc - static_post)
    recovery = (stream_post - static_post) / lost

    report = {
        "harness": "benchmarks.bench_stream",
        "profile": "quick" if args.quick else "full",
        "dim": dim,
        "n_samples": n_samples,
        "pretrain": pretrain,
        "chunk": chunk,
        "gates": {
            "min_recovery": args.min_recovery,
            "min_gain": args.min_gain,
            "swap_p99_factor": args.swap_p99_factor,
        },
        "bit_identity": identity,
        "summary": {
            "pre_drift_accuracy": pre_acc,
            "static_post_drift": static_post,
            "stream_post_drift": stream_post,
            "recovery_ratio": round(recovery, 4),
        },
        "numpy": np.__version__,
        "scenarios": [static, stream],
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    print(f"recovery ratio {recovery:.2f} "
          f"(static {static_post:.3f} -> stream {stream_post:.3f}, "
          f"pre-drift {pre_acc:.3f})")

    if args.check:
        problems = []
        if not identity["ok"]:
            problems.append(
                f"streaming encode lost bit-identity: "
                f"{identity['chunk_sizes']}"
            )
        if stream["retrain_swaps"] < 1:
            problems.append("stream loop never hot-swapped a retrained model")
        if recovery < args.min_recovery:
            problems.append(
                f"recovered only {recovery:.2f} of lost accuracy "
                f"(< {args.min_recovery})"
            )
        if stream_post < static_post + args.min_gain:
            problems.append(
                f"stream post-drift {stream_post:.3f} not >= static "
                f"{static_post:.3f} + {args.min_gain}"
            )
        for scenario in (static, stream):
            if scenario["dropped"] or scenario["hung"]:
                problems.append(
                    f"{scenario['scenario']}: {scenario['dropped']} dropped, "
                    f"{scenario['hung']} hung requests"
                )
        p99_swap = stream["latency_ms"]["p99_during_swap"]
        p99_calm = stream["latency_ms"]["p99_calm"]
        if p99_swap is not None and p99_calm:
            if p99_swap > args.swap_p99_factor * p99_calm:
                problems.append(
                    f"p99 during swap {p99_swap:.1f}ms > "
                    f"{args.swap_p99_factor}x calm p99 {p99_calm:.1f}ms"
                )
        for p in problems:
            print(f"CHECK FAILED: {p}", file=sys.stderr)
        return 1 if problems else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
