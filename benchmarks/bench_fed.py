"""Federated fleet gate: merge exactness, accuracy gap, serving liveness.

Thin CI wrapper over :mod:`repro.fleet.bench`.  Runs the federated
fleet (>= 256 simulated devices, per-round churn, straggler deadline,
compressed uplink) against centralized training and writes
``BENCH_fed.json``.

``--check`` enforces the federation contract:

- the lossless bootstrap merge is **bit-identical** to centralized
  ``fit(epochs=0)`` initialization (disjoint shard cover, full-int
  codec);
- the deployed federated model lands within ``--max-gap`` accuracy
  points (default 2) of the centralized baseline, despite non-IID
  shards, churn, stragglers and sign-compressed uploads;
- the run actually exercises fleet conditions: >= 256 devices,
  >= 10% churn, a finite straggler deadline, and a compressed codec
  (full-int is the lossless reference, not a bandwidth budget);
- per-round uplink bytes are reported and every round merges at least
  one device;
- the live server kept serving between rounds: every submitted request
  completed, and the model version advanced (merges really published).

Usage::

    PYTHONPATH=src python benchmarks/bench_fed.py            # full
    PYTHONPATH=src python benchmarks/bench_fed.py --quick --check
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.fleet.bench import OUT_PATH, bit_identity_check, run_bench


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small smoke workload (CI)")
    parser.add_argument("--check", action="store_true",
                        help="fail when the federation contract is violated")
    parser.add_argument("--max-gap", type=float, default=2.0,
                        help="--check cap on centralized-minus-federated "
                             "accuracy points")
    parser.add_argument("--devices", type=int, default=256)
    parser.add_argument("--codec", default="sign")
    parser.add_argument("--churn", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", type=pathlib.Path, default=OUT_PATH)
    args = parser.parse_args(argv)

    report = run_bench(
        n_devices=args.devices,
        rounds=5 if args.quick else 10,
        dim=512 if args.quick else 1024,
        n_train=2048 if args.quick else 4096,
        codec=args.codec,
        churn=args.churn,
        seed=args.seed,
    )
    report["profile"] = "quick" if args.quick else "full"
    report["bit_identity"] = bit_identity_check(seed=args.seed)
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    s = report["summary"]
    print(f"wrote {args.out}")
    print(
        f"centralized {s['centralized_accuracy']:.4f} vs federated "
        f"{s['federated_accuracy']:.4f} (gap {s['gap_points']:+.2f} pts), "
        f"{s['federated_bytes'] / 1e6:.2f} MB uplink, "
        f"bit-identity {report['bit_identity']['ok']}"
    )

    if not args.check:
        return 0

    cfg = report["config"]
    rounds = report["rounds"]
    problems = []
    if not report["bit_identity"]["ok"]:
        problems.append("lossless bootstrap merge lost bit-identity with "
                        "centralized initialization")
    if s["gap_points"] > args.max_gap:
        problems.append(
            f"federated accuracy {s['federated_accuracy']:.4f} trails "
            f"centralized {s['centralized_accuracy']:.4f} by "
            f"{s['gap_points']:.2f} pts (> {args.max_gap})"
        )
    if cfg["n_devices"] < 256:
        problems.append(f"only {cfg['n_devices']} devices (< 256)")
    if cfg["churn"] < 0.1:
        problems.append(f"churn {cfg['churn']} below the 10% fleet condition")
    if cfg["deadline_s"] is None:
        problems.append("no straggler deadline configured")
    if cfg["codec"].split(":")[0] not in ("sign", "topk"):
        problems.append(
            f"codec {cfg['codec']!r} is not a compressed bandwidth budget")
    if any(r["merged"] < 1 for r in rounds):
        problems.append("a round merged zero devices")
    if any("bytes_merged" not in r for r in rounds):
        problems.append("a round is missing its bytes accounting")
    if rounds[-1]["model_version"] < 2:
        problems.append("model version never advanced past the bootstrap "
                        "publish (merges not reaching the server)")
    for point in report["live_serving"]:
        if point["failed"]:
            problems.append(
                f"{point['failed']} live requests failed between rounds")
            break
    if not report["live_serving"]:
        problems.append("no live serving traffic was exercised")

    for p in problems:
        print(f"CHECK FAILED: {p}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
