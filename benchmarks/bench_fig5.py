"""Fig. 5 regeneration: accuracy vs dimensions, constant vs updated norms."""

from __future__ import annotations

import pytest

from repro.core.classifier import HDClassifier
from repro.core.encoders import GenericEncoder
from repro.datasets import load_dataset
from repro.eval.experiments import fig5


_CACHE = {}


def _regenerate(bench_profile):
    """Run the experiment once per session; later tests reuse the result."""
    if "result" not in _CACHE:
        result = fig5.run(profile=bench_profile)
        print()
        for chart in ([result.data.get("chart")] if "chart" in result.data
                      else result.data.get("charts", {}).values()):
            print()
            print(chart)
        print(result.render(float_fmt="{:.3f}"))
        _CACHE["result"] = result
    return _CACHE["result"]


@pytest.fixture(scope="module")
def fig5_result(bench_profile):
    return _regenerate(bench_profile)


def test_regenerate_and_verify(benchmark, bench_profile):
    """The paper artifact itself: regenerate the rows, assert the claims."""
    result = benchmark.pedantic(
        _regenerate, args=(bench_profile,), rounds=1, iterations=1
    )
    result.assert_claims()


class TestFig5Shape:
    def test_all_claims_hold(self, fig5_result):
        fig5_result.assert_claims()

    def test_both_benchmark_datasets_present(self, fig5_result):
        assert set(fig5_result.data["curves"]) == {"EEG", "ISOLET"}

    def test_constant_norm_gap_grows_as_dims_shrink(self, fig5_result):
        """The stale-norm penalty is worst at the smallest dimension."""
        for curves in fig5_result.data["curves"].values():
            dims = sorted(curves["updated"])
            smallest_gap = curves["updated"][dims[0]] - curves["constant"][dims[0]]
            largest_gap = curves["updated"][dims[-1]] - curves["constant"][dims[-1]]
            assert smallest_gap >= largest_gap - 0.02


class TestFig5Kernels:
    def test_reduced_dim_prediction_speed(self, benchmark, bench_profile):
        ds = load_dataset("EEG", bench_profile)
        enc = GenericEncoder(dim=2048, seed=5, use_ids=ds.use_position_ids)
        clf = HDClassifier(enc, epochs=3, seed=5).fit(ds.X_train, ds.y_train)
        encodings = enc.encode_batch(ds.X_test).astype(float)
        benchmark(clf.predict_encoded, encodings, dim=512)
