"""Fig. 6 regeneration: accuracy & power saving vs class-memory bit errors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.experiments import fig6
from repro.hardware.faults import inject_bitflips, quantize_to_bits


_CACHE = {}


def _regenerate(bench_profile):
    """Run the experiment once per session; later tests reuse the result."""
    if "result" not in _CACHE:
        result = fig6.run(profile=bench_profile)
        print()
        for chart in ([result.data.get("chart")] if "chart" in result.data
                      else result.data.get("charts", {}).values()):
            print()
            print(chart)
        print(result.render(float_fmt="{:.3f}"))
        _CACHE["result"] = result
    return _CACHE["result"]


@pytest.fixture(scope="module")
def fig6_result(bench_profile):
    return _regenerate(bench_profile)


def test_regenerate_and_verify(benchmark, bench_profile):
    """The paper artifact itself: regenerate the rows, assert the claims."""
    result = benchmark.pedantic(
        _regenerate, args=(bench_profile,), rounds=1, iterations=1
    )
    result.assert_claims()


class TestFig6Shape:
    def test_all_claims_hold(self, fig6_result):
        fig6_result.assert_claims()

    def test_both_datasets_and_all_bitwidths(self, fig6_result):
        curves = fig6_result.data["curves"]
        assert set(curves) == {"ISOLET", "FACE"}
        for by_bw in curves.values():
            assert set(by_bw) == {8, 4, 2, 1}

    def test_accuracy_broadly_decreases_with_error(self, fig6_result):
        """Trend check: the highest error rate never beats zero error by much."""
        for by_bw in fig6_result.data["curves"].values():
            for series in by_bw.values():
                rates = sorted(series)
                assert series[rates[-1]] <= series[rates[0]] + 0.05


class TestFig6Kernels:
    def test_fault_injection_speed(self, benchmark):
        rng = np.random.default_rng(0)
        model = rng.normal(scale=40, size=(32, 4096))
        q = quantize_to_bits(model, 8)
        benchmark(inject_bitflips, q, 8, 0.05, rng)
