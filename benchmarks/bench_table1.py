"""Table 1 regeneration: accuracy of HDC encoders and ML baselines.

Prints the per-dataset accuracy table in the paper's column order and
asserts its shape claims (GENERIC best HDC mean, beats classic ML,
lowest STDV, RP/ngram failure modes).  The timed kernels are the
encoding and retraining paths that dominate the table's runtime.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.classifier import HDClassifier
from repro.core.encoders import GenericEncoder
from repro.datasets import load_dataset
from repro.eval.experiments import table1


_CACHE = {}


def _regenerate(bench_profile):
    """Run the experiment once per session; later tests reuse the result."""
    if "result" not in _CACHE:
        result = table1.run(profile=bench_profile)
        print()
        print(result.render(float_fmt="{:.3f}"))
        _CACHE["result"] = result
    return _CACHE["result"]


@pytest.fixture(scope="module")
def table1_result(bench_profile):
    return _regenerate(bench_profile)


def test_regenerate_and_verify(benchmark, bench_profile):
    """The paper artifact itself: regenerate the rows, assert the claims."""
    result = benchmark.pedantic(
        _regenerate, args=(bench_profile,), rounds=1, iterations=1
    )
    result.assert_claims()


class TestTable1Shape:
    def test_all_claims_hold(self, table1_result):
        table1_result.assert_claims()

    def test_generic_mean_margin_over_best_hdc(self, table1_result):
        """Paper: +3.5% over the best HDC baseline."""
        means = table1_result.data["means"]
        best_other = max(
            v for k, v in means.items()
            if k in table1.HDC_COLUMNS and k != "generic"
        )
        assert means["generic"] - best_other > 0.0

    def test_eleven_dataset_rows(self, table1_result):
        assert len(table1_result.data["table"]) == 11


class TestTable1Kernels:
    @pytest.fixture(scope="class")
    def workload(self, bench_profile):
        ds = load_dataset("ISOLET", bench_profile)
        enc = GenericEncoder(dim=2048, seed=5)
        enc.fit(ds.X_train)
        return ds, enc

    def test_generic_encode_throughput(self, benchmark, workload):
        ds, enc = workload
        batch = ds.X_train[:64]
        benchmark(enc.encode_batch, batch)

    def test_retrain_epoch_speed(self, benchmark, workload):
        ds, enc = workload
        clf = HDClassifier(enc, epochs=0, seed=5)
        clf.fit(ds.X_train[:200], ds.y_train[:200])
        encodings = enc.encode_batch(ds.X_train[:200]).astype(np.float64)
        y_idx = np.searchsorted(clf.classes_, ds.y_train[:200])

        def one_epoch():
            clf._retrain(encodings, y_idx)

        benchmark(one_epoch)
