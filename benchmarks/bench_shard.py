"""Sharded-serving gate: throughput scaling, zero-copy, exactness, swap.

Measures what the process-sharded serving layer promises over the
GIL-bound thread pool and -- under ``--check`` -- fails CI when any of
it regresses:

- **throughput**: open-loop saturation rps of ``ShardedServer`` vs an
  ``InferenceServer`` thread pool with the same worker count and the
  same packed model.  The ``>= 1.8x at 4 processes`` gate only applies
  on machines with >= 4 cores (``gate_applied`` records the decision;
  a 1-core CI box cannot scale by forking, and pretending otherwise
  would just gate on scheduler noise);
- **zero-copy**: every worker's mapping of the model image must carry
  fewer private-dirty bytes than the image itself (in practice: zero)
  -- dirtying model pages would mean the worker *copied* the model,
  which is exactly the per-worker unpickle bloat shared memory exists
  to avoid;
- **bit-identity**: replica and class-partitioned predictions equal
  single-process ``predict_packed`` on every query;
- **hot swap**: one epoch swap under continuous load drops or hangs
  zero requests and leaks zero segments.

Results land in ``BENCH_shard.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_shard.py            # full
    PYTHONPATH=src python benchmarks/bench_shard.py --quick --check
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import threading
import time

import numpy as np

from repro.serve.bench import make_workload, train_model
from repro.serve.sharded import ShardedServeConfig, ShardedServer
from repro.serve.sharded.bench import run_backends

OUT_PATH = pathlib.Path("BENCH_shard.json")

SPEEDUP_GATE = 1.8
GATE_CORES = 4


def _sharded_config(mode: str, n_shards: int, **kw) -> ShardedServeConfig:
    base = dict(n_shards=n_shards, mode=mode, max_batch=32,
                max_shed_level=0, default_deadline=None)
    base.update(kw)
    return ShardedServeConfig(**base)


def exactness_scenario(packed, queries, n_shards: int, seed: int) -> dict:
    """Both sharded modes vs single-process predict_packed, bit for bit."""
    q = queries[:128]
    ref = packed.predict_packed(packed.encode_packed(q))
    out = {"n_queries": len(q), "modes": {}}
    for mode in ("replica", "partition"):
        server = ShardedServer(_sharded_config(mode, n_shards))
        server.register("bench", packed)
        with server:
            preds = server.predict_many("bench", q, timeout=120.0)
            labels = np.asarray([p.label for p in preds])
        mismatches = int(np.sum(labels != ref))
        out["modes"][mode] = {"mismatches": mismatches}
        print(f"exactness {mode:9s}: {mismatches} mismatches / {len(q)}")
    return out


def swap_scenario(packed, queries, n_shards: int) -> dict:
    """One hot swap under load: count drops, hangs, leaked segments."""
    server = ShardedServer(_sharded_config("replica", n_shards))
    server.register("bench", packed)
    futures, submit_errors = [], []
    stop = threading.Event()

    def pump():
        i = 0
        while not stop.is_set():
            try:
                futures.append(server.submit("bench", queries[i % len(queries)]))
            except Exception as exc:  # noqa: BLE001
                submit_errors.append(repr(exc))
            i += 1
            time.sleep(0.0005)

    with server:
        t = threading.Thread(target=pump)
        t.start()
        while not futures or not futures[0].done():
            time.sleep(0.01)
        server.swap("bench", packed, drain=True)
        time.sleep(0.2)
        stop.set()
        t.join()
        server.wait_idle(60.0)
        dropped = 0
        for f in futures:
            try:
                f.result(timeout=60.0)
            except Exception:  # noqa: BLE001
                dropped += 1
        hung = sum(1 for f in futures if not f.done())
        stats = server.stats()
    leaked = [f for f in os.listdir("/dev/shm")
              if f.startswith(server.arena.prefix)]
    report = {
        "requests": len(futures),
        "submit_errors": len(submit_errors),
        "dropped": dropped,
        "hung": hung,
        "swap_ack_timeouts": stats["counters"].get("swap_ack_timeouts", 0),
        "final_epoch": stats["deployments"]["bench"]["epoch"],
        "leaked_segments": leaked,
    }
    print(f"swap under load: {len(futures)} reqs, {dropped} dropped, "
          f"{hung} hung, epoch -> {report['final_epoch']}, "
          f"{len(leaked)} leaked segments")
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small smoke workload (CI)")
    parser.add_argument("--check", action="store_true",
                        help="fail when a sharding gate is violated")
    parser.add_argument("--shards", type=int, default=None,
                        help="worker count (default: min(4, cpu_count))")
    parser.add_argument("--min-speedup", type=float, default=SPEEDUP_GATE)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", type=pathlib.Path, default=OUT_PATH)
    args = parser.parse_args(argv)

    cores = os.cpu_count() or 1
    n_shards = args.shards or max(2, min(4, cores))
    dim = 1024 if args.quick else 2048
    n_requests = 600 if args.quick else 3000
    gate_applied = cores >= GATE_CORES and n_shards >= GATE_CORES

    _, _, queries = make_workload(seed=args.seed)
    packed = train_model(dim=dim, packed=True, seed=args.seed)

    throughput = run_backends(
        n_shards=n_shards, n_requests=n_requests, dim=dim,
        backends=("thread", "replica", "partition"), seed=args.seed,
    )
    exact = exactness_scenario(packed, queries, n_shards, args.seed)
    swap = swap_scenario(packed, queries, n_shards)

    by_backend = {p["backend"]: p for p in throughput["backends"]}
    thread_rps = by_backend["thread"]["throughput_rps"]
    speedups = {
        mode: round(by_backend[mode]["throughput_rps"] / thread_rps, 3)
        for mode in ("replica", "partition")
    }
    report = {
        "harness": "benchmarks.bench_shard",
        "profile": "quick" if args.quick else "full",
        "dim": dim,
        "n_shards": n_shards,
        "cpu_count": cores,
        "gates": {
            "min_speedup": args.min_speedup,
            "gate_cores": GATE_CORES,
            "speedup_gate_applied": gate_applied,
        },
        "numpy": np.__version__,
        "throughput": throughput,
        "speedup_vs_thread": speedups,
        "exactness": exact,
        "swap_under_load": swap,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}  "
          f"(speedups {speedups}, gate_applied={gate_applied})")

    if args.check:
        problems = []
        if gate_applied and speedups["replica"] < args.min_speedup:
            problems.append(
                f"replica speedup {speedups['replica']:.2f}x < "
                f"{args.min_speedup}x at {n_shards} processes"
            )
        for backend in ("replica", "partition"):
            zc = by_backend[backend].get("zero_copy", {})
            image_bytes = zc.get("image_bytes") or 0
            for shard, m in zc.get("shards", {}).items():
                dirty = m.get("mapping_private_dirty_kb", 0) * 1024
                if m.get("mapping_rss_kb", 0) == 0:
                    problems.append(
                        f"{backend} shard {shard}: model mapping not found"
                    )
                elif dirty >= max(image_bytes, 4096):
                    problems.append(
                        f"{backend} shard {shard}: {dirty} private-dirty "
                        f"bytes on a {image_bytes}-byte model image "
                        "(worker copied the model?)"
                    )
        for mode, r in exact["modes"].items():
            if r["mismatches"]:
                problems.append(
                    f"{mode}: {r['mismatches']} predictions differ from "
                    "single-process predict_packed"
                )
        if swap["dropped"] or swap["hung"] or swap["submit_errors"]:
            problems.append(
                f"swap under load: dropped={swap['dropped']} "
                f"hung={swap['hung']} submit_errors={swap['submit_errors']}"
            )
        if swap["leaked_segments"]:
            problems.append(
                f"leaked /dev/shm segments: {swap['leaked_segments']}"
            )
        if problems:
            print("GATE FAILURES:\n  - " + "\n  - ".join(problems))
            return 1
        print("all sharding gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
