"""Observability overhead benchmark: tracing must be (nearly) free.

Every hot path in the repo now carries ``repro.obs`` spans -- encode
(:meth:`Encoder.encode_batch`), retraining (:func:`repro.core.training.
retrain` and its per-epoch marks) -- so this benchmark pins the cost of
shipping that instrumentation.  Each workload is timed three ways:

- ``bypass`` -- the span machinery monkeypatched out entirely
  (``span`` returns the no-op singleton unconditionally, ``emit_span``
  and ``tracing_enabled`` are stubs): the closest runnable stand-in for
  "the instrumentation was never added";
- ``off``    -- the shipped default: tracing disabled, every call site
  pays one module-attribute load, a branch and a no-op context manager;
- ``on``     -- tracing enabled with a discarding sink, so spans are
  timed, op-counted and aggregated into the global registry.

``--check`` (CI) fails if the disabled path costs more than 2% over
bypass or the enabled path more than 5% -- the budget the tentpole
promised.  Two further sections ride along:

- a **flight-recorder** microbench (ns per retained span / event, ms
  to assemble a full-ring postmortem bundle), pinning the cost of the
  always-on rings;
- a **sharded-serving** overhead measurement: the same request load
  through a 2-shard process fleet with tracing off vs. fully on
  (parent spans + worker spans shipped back over the SPANS channel).
  ``--check`` holds the traced fleet to the same 5% budget, and
  ``--shard-trace-out`` writes the traced run's JSONL for the CI
  trace-schema lint.

A raw span microbenchmark (ns per disabled/enabled span) is reported
alongside for context.  Results land in ``BENCH_obs.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs.py            # full
    PYTHONPATH=src python benchmarks/bench_obs.py --quick --check \\
        --shard-trace-out shard_trace.jsonl
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

import numpy as np

import repro.obs.trace as obs_trace
from repro.core.classifier import HDClassifier
from repro.core.encoders import GenericEncoder
from repro.obs.export import CollectorSink, JsonlSink
from repro.obs.recorder import FlightRecorder
from repro.obs.registry import REGISTRY

OUT_PATH = pathlib.Path("BENCH_obs.json")

#: (name, dim, n_samples, n_features, epochs) per workload flavor
FULL_WORKLOADS = [
    ("encode", 2048, 256, 64, 0),
    ("train", 2048, 512, 24, 5),
]

QUICK_WORKLOADS = [
    ("encode", 2048, 192, 64, 0),
    ("train", 2048, 384, 24, 5),
]


# -- bypass patching ---------------------------------------------------------

_REAL = {}


def _patch_bypass() -> None:
    """Stub the tracer API out at the module level (call sites look the
    attribute up per call, so this reaches every instrumented path)."""
    _REAL.update(span=obs_trace.span, emit_span=obs_trace.emit_span,
                 tracing_enabled=obs_trace.tracing_enabled)
    noop = obs_trace._NOOP
    obs_trace.span = lambda name, **attrs: noop
    obs_trace.emit_span = lambda *a, **k: None
    obs_trace.tracing_enabled = lambda: False


def _unpatch() -> None:
    obs_trace.span = _REAL["span"]
    obs_trace.emit_span = _REAL["emit_span"]
    obs_trace.tracing_enabled = _REAL["tracing_enabled"]
    _REAL.clear()


# -- workloads ---------------------------------------------------------------


def _make_workload(name, dim, n_samples, n_features, epochs, seed=7):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n_samples, n_features))
    if name == "encode":
        enc = GenericEncoder(dim=dim, num_levels=32, seed=1,
                             engine="packed").fit(X)
        enc.encode_batch(X[:8])  # warm the kernel tables
        return lambda: enc.encode_batch(X)
    if name == "train":
        from repro.core import training

        n_classes = 4
        protos = rng.normal(scale=1.5, size=(n_classes, n_features))
        y = rng.integers(0, n_classes, size=n_samples)
        Xc = protos[y] + rng.normal(scale=0.6, size=(n_samples, n_features))
        enc = GenericEncoder(dim=dim, num_levels=16, seed=3)
        clf = HDClassifier(enc, epochs=epochs, seed=3).fit(Xc, y)
        # freeze the post-init state so every timed retrain does the
        # exact same work (retraining mutates the class vectors)
        encodings = np.asarray(enc.encode_batch(Xc), dtype=np.float64)
        _, y_idx = np.unique(y, return_inverse=True)
        base_model = clf.model_.copy()

        def retrain():
            clf.model_ = base_model.copy()
            clf.norms_.recompute(clf.model_)
            training.retrain(clf, encodings, y_idx)

        return retrain
    raise ValueError(name)


def _time_modes(fn, repeats: int):
    """Best-of times for bypass / off / on, plus spans emitted while on.

    The three modes are interleaved round-robin (one timed run of each
    per round) so slow drift -- thermal, page cache, a background task --
    lands on every mode equally instead of biasing whichever mode ran
    last; best-of-N then strips the remaining one-sided noise.
    """
    sink = CollectorSink(maxlen=0)  # count spans, store none

    def run_bypass():
        obs_trace.reset()
        _patch_bypass()
        try:
            t0 = time.perf_counter()
            fn()
            return time.perf_counter() - t0
        finally:
            _unpatch()

    def run_off():
        obs_trace.reset()
        t0 = time.perf_counter()
        fn()
        return time.perf_counter() - t0

    def run_on():
        # steady-state tracing: the aggregate families persist across
        # runs (cleared once below), as they would in a traced session
        obs_trace.reset()
        obs_trace.enable_tracing(sink)
        try:
            t0 = time.perf_counter()
            fn()
            return time.perf_counter() - t0
        finally:
            obs_trace.reset()

    fn()  # shared warm-up outside the clock
    best = {"bypass": float("inf"), "off": float("inf"), "on": float("inf")}
    runs = {"bypass": run_bypass, "off": run_off, "on": run_on}
    try:
        for _ in range(repeats):
            for mode, one in runs.items():
                best[mode] = min(best[mode], one())
    finally:
        REGISTRY.clear()
    return best["bypass"], best["off"], best["on"], sink.emitted


def _span_microbench(n: int = 20000, passes: int = 5):
    """Raw per-span cost in nanoseconds, disabled and enabled.

    Best-of-``passes``: a single 20k-span sweep takes a few tens of
    milliseconds, well inside scheduler-preemption territory, so one
    unlucky pass would overstate the cost by 2x on a busy host.
    """

    def one_pass():
        t0 = time.perf_counter()
        for _ in range(n):
            with obs_trace.span("micro") as sp:
                if sp.recording:
                    sp.add_ops(xor_ops=1)
        return (time.perf_counter() - t0) / n * 1e9

    obs_trace.reset()
    disabled_ns = min(one_pass() for _ in range(passes))
    obs_trace.enable_tracing(CollectorSink(maxlen=0))
    enabled_ns = min(one_pass() for _ in range(passes))
    obs_trace.reset()
    REGISTRY.clear()
    return round(disabled_ns, 1), round(enabled_ns, 1)


def _recorder_microbench(n: int = 20000):
    """Cost of the always-on flight recorder: retain a span record,
    append an event, and assemble a bundle from full rings."""
    rec = FlightRecorder(capacity_spans=2048, capacity_events=1024)
    record = {"name": "serve.search", "seconds": 0.001, "pid": os.getpid(),
              "attrs": {"shard": 0}, "ops": {"xor_ops": 64.0}}
    t0 = time.perf_counter()
    for _ in range(n):
        rec.emit(record)
    emit_ns = (time.perf_counter() - t0) / n * 1e9

    t0 = time.perf_counter()
    for i in range(n):
        rec.record_event("breaker_transition", shard=i & 3, state="open")
    event_ns = (time.perf_counter() - t0) / n * 1e9

    # bundle assembly with both rings at capacity (the postmortem path)
    t0 = time.perf_counter()
    for _ in range(10):
        rec.build_bundle("bench", trace_id=None)
    bundle_ms = (time.perf_counter() - t0) / 10 * 1e3
    return {
        "emit_ns": round(emit_ns, 1),
        "event_ns": round(event_ns, 1),
        "bundle_ms": round(bundle_ms, 3),
    }


def _sharded_overhead(quick: bool, trace_out=None):
    """Tracing-enabled overhead on the 2-shard process fleet.

    Times the identical request load with tracing off and fully on
    (root/dispatch spans in the parent, encode/search spans produced in
    the worker processes and shipped back as SPANS records).  Rounds
    alternate off/on inside one long-lived fleet so spawn cost and
    drift cancel; after each toggle the supervisor gets a beat (it
    forwards TRACE flips on its 50ms tick) plus one settle request
    before the clock starts.  Returns None when POSIX shared memory is
    unavailable (the fleet cannot run).
    """
    if not os.path.isdir("/dev/shm"):
        return None
    from repro.serve.sharded import ShardedServeConfig, ShardedServer

    # a representative model (not a toy): per-request encode+search
    # work in the hundreds of microseconds, the regime the 5% budget
    # is meant for -- tracing's fixed ~10us/request cost would drown
    # any percentage gate on a microsecond-scale workload
    rng = np.random.default_rng(0)
    dim = 16384
    X = rng.normal(size=(128, 64))
    y = rng.integers(0, 20, size=128)
    enc = GenericEncoder(dim=dim, num_levels=16, seed=11)
    clf = HDClassifier(enc, epochs=3, seed=1).fit(X, y)

    n_req = 32 if quick else 64
    rounds = 7 if quick else 11
    sink = CollectorSink(maxlen=0)

    def serve_batch(server, n):
        futs = [server.submit("m", X[i % len(X)]) for i in range(n)]
        for f in futs:
            f.result(timeout=60.0)

    def one_round(server, mode):
        obs_trace.reset()
        if mode == "on":
            obs_trace.enable_tracing(sink)
        time.sleep(0.12)          # let the TRACE toggle reach workers
        serve_batch(server, 2)    # settle in the new mode
        t0 = time.perf_counter()
        serve_batch(server, n_req)
        dt = time.perf_counter() - t0
        obs_trace.reset()
        return dt

    server = ShardedServer(ShardedServeConfig(
        n_shards=2, max_batch=16, max_wait=0.002, default_deadline=None,
    ))
    server.register("m", clf)
    best = {"off": float("inf"), "on": float("inf")}
    emitted_before = sink.emitted
    with server:
        serve_batch(server, 8)  # spawn + kernel warm-up outside the clock
        for _ in range(rounds):
            for mode in ("off", "on"):
                best[mode] = min(best[mode], one_round(server, mode))
        spans = sink.emitted - emitted_before
        if trace_out is not None:
            if os.path.exists(trace_out):
                os.remove(trace_out)  # JsonlSink appends; start fresh
            jsink = JsonlSink(trace_out)
            obs_trace.enable_tracing(jsink)
            time.sleep(0.12)
            serve_batch(server, n_req)
            time.sleep(0.12)      # drain worker SPANS into the sink
            obs_trace.reset()
            jsink.close()
    REGISTRY.clear()
    on_pct = (best["on"] / best["off"] - 1.0) * 100.0
    return {
        "n_shards": 2,
        "dim": dim,
        "n_requests": n_req,
        "rounds": rounds,
        "off_s": round(best["off"], 6),
        "on_s": round(best["on"], 6),
        "on_overhead_pct": round(on_pct, 3),
        "spans_per_traced_round": spans // max(1, rounds),
    }


def run(workloads, repeats: int):
    results = []
    for name, dim, n_samples, n_features, epochs in workloads:
        fn = _make_workload(name, dim, n_samples, n_features, epochs)
        bypass_s, off_s, on_s, emitted = _time_modes(fn, repeats)
        off_pct = (off_s / bypass_s - 1.0) * 100.0
        on_pct = (on_s / bypass_s - 1.0) * 100.0
        results.append({
            "workload": name,
            "dim": dim,
            "n_samples": n_samples,
            "epochs": epochs,
            "bypass_s": round(bypass_s, 6),
            "off_s": round(off_s, 6),
            "on_s": round(on_s, 6),
            "off_overhead_pct": round(off_pct, 3),
            "on_overhead_pct": round(on_pct, 3),
            "spans_per_run": emitted // max(1, repeats),
        })
        print(
            f"{name:7s} dim={dim:5d}  bypass {bypass_s * 1e3:8.2f}ms  "
            f"off {off_pct:+6.2f}%  on {on_pct:+6.2f}%  "
            f"({results[-1]['spans_per_run']} spans/run)"
        )
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small smoke workloads (CI)")
    parser.add_argument("--check", action="store_true",
                        help="fail when overhead exceeds the budgets")
    parser.add_argument("--max-off-pct", type=float, default=2.0,
                        help="--check budget for disabled tracing (%%)")
    parser.add_argument("--max-on-pct", type=float, default=5.0,
                        help="--check budget for enabled tracing (%%)")
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--out", type=pathlib.Path, default=OUT_PATH)
    parser.add_argument("--skip-sharded", action="store_true",
                        help="skip the sharded-fleet overhead section")
    parser.add_argument("--shard-trace-out", type=pathlib.Path, default=None,
                        help="write the traced sharded run's span JSONL "
                             "here (for the CI trace-schema lint)")
    args = parser.parse_args(argv)

    workloads = QUICK_WORKLOADS if args.quick else FULL_WORKLOADS
    # the per-mode deltas under test are fractions of a percent, so
    # best-of needs plenty of rounds to shake off scheduler noise; at a
    # few ms per round this stays cheap even for CI
    repeats = args.repeats or (41 if args.quick else 51)
    results = run(workloads, repeats=repeats)
    disabled_ns, enabled_ns = _span_microbench()
    print(f"raw span cost: disabled {disabled_ns:.0f}ns  "
          f"enabled {enabled_ns:.0f}ns")
    recorder_ns = _recorder_microbench()
    print(f"flight recorder: emit {recorder_ns['emit_ns']:.0f}ns  "
          f"event {recorder_ns['event_ns']:.0f}ns  "
          f"bundle {recorder_ns['bundle_ms']:.1f}ms")
    sharded = None
    if not args.skip_sharded:
        sharded = _sharded_overhead(
            args.quick,
            trace_out=str(args.shard_trace_out)
            if args.shard_trace_out else None,
        )
        if sharded is None:
            print("sharded: skipped (no /dev/shm)")
        else:
            print(
                f"sharded dim={sharded['dim']}  "
                f"off {sharded['off_s'] * 1e3:8.2f}ms  "
                f"on {sharded['on_overhead_pct']:+6.2f}%  "
                f"({sharded['spans_per_traced_round']} spans/round)"
            )
            if args.shard_trace_out:
                n_lines = sum(
                    1 for _ in open(args.shard_trace_out))
                print(f"wrote {args.shard_trace_out} ({n_lines} spans)")

    report = {
        "harness": "benchmarks.bench_obs",
        "profile": "quick" if args.quick else "full",
        "repeats": repeats,
        "budgets": {"off_pct": args.max_off_pct, "on_pct": args.max_on_pct},
        "span_ns": {"disabled": disabled_ns, "enabled": enabled_ns},
        "recorder_ns": recorder_ns,
        "sharded": sharded,
        "numpy": np.__version__,
        "results": results,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.check:
        bad = [
            r for r in results
            if r["off_overhead_pct"] > args.max_off_pct
            or r["on_overhead_pct"] > args.max_on_pct
        ]
        for r in bad:
            print(
                f"CHECK FAILED: {r['workload']} off={r['off_overhead_pct']}% "
                f"(budget {args.max_off_pct}%) on={r['on_overhead_pct']}% "
                f"(budget {args.max_on_pct}%)",
                file=sys.stderr,
            )
        failed = bool(bad)
        if sharded is not None \
                and sharded["on_overhead_pct"] > args.max_on_pct:
            print(
                f"CHECK FAILED: sharded on={sharded['on_overhead_pct']}% "
                f"(budget {args.max_on_pct}%)",
                file=sys.stderr,
            )
            failed = True
        return 1 if failed else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
