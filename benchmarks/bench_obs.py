"""Observability overhead benchmark: tracing must be (nearly) free.

Every hot path in the repo now carries ``repro.obs`` spans -- encode
(:meth:`Encoder.encode_batch`), retraining (:func:`repro.core.training.
retrain` and its per-epoch marks) -- so this benchmark pins the cost of
shipping that instrumentation.  Each workload is timed three ways:

- ``bypass`` -- the span machinery monkeypatched out entirely
  (``span`` returns the no-op singleton unconditionally, ``emit_span``
  and ``tracing_enabled`` are stubs): the closest runnable stand-in for
  "the instrumentation was never added";
- ``off``    -- the shipped default: tracing disabled, every call site
  pays one module-attribute load, a branch and a no-op context manager;
- ``on``     -- tracing enabled with a discarding sink, so spans are
  timed, op-counted and aggregated into the global registry.

``--check`` (CI) fails if the disabled path costs more than 2% over
bypass or the enabled path more than 5% -- the budget the tentpole
promised.  A raw span microbenchmark (ns per disabled/enabled span) is
reported alongside for context.  Results land in ``BENCH_obs.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs.py            # full
    PYTHONPATH=src python benchmarks/bench_obs.py --quick --check
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

import repro.obs.trace as obs_trace
from repro.core.classifier import HDClassifier
from repro.core.encoders import GenericEncoder
from repro.obs.export import CollectorSink
from repro.obs.registry import REGISTRY

OUT_PATH = pathlib.Path("BENCH_obs.json")

#: (name, dim, n_samples, n_features, epochs) per workload flavor
FULL_WORKLOADS = [
    ("encode", 2048, 256, 64, 0),
    ("train", 2048, 512, 24, 5),
]

QUICK_WORKLOADS = [
    ("encode", 2048, 192, 64, 0),
    ("train", 2048, 384, 24, 5),
]


# -- bypass patching ---------------------------------------------------------

_REAL = {}


def _patch_bypass() -> None:
    """Stub the tracer API out at the module level (call sites look the
    attribute up per call, so this reaches every instrumented path)."""
    _REAL.update(span=obs_trace.span, emit_span=obs_trace.emit_span,
                 tracing_enabled=obs_trace.tracing_enabled)
    noop = obs_trace._NOOP
    obs_trace.span = lambda name, **attrs: noop
    obs_trace.emit_span = lambda *a, **k: None
    obs_trace.tracing_enabled = lambda: False


def _unpatch() -> None:
    obs_trace.span = _REAL["span"]
    obs_trace.emit_span = _REAL["emit_span"]
    obs_trace.tracing_enabled = _REAL["tracing_enabled"]
    _REAL.clear()


# -- workloads ---------------------------------------------------------------


def _make_workload(name, dim, n_samples, n_features, epochs, seed=7):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n_samples, n_features))
    if name == "encode":
        enc = GenericEncoder(dim=dim, num_levels=32, seed=1,
                             engine="packed").fit(X)
        enc.encode_batch(X[:8])  # warm the kernel tables
        return lambda: enc.encode_batch(X)
    if name == "train":
        from repro.core import training

        n_classes = 4
        protos = rng.normal(scale=1.5, size=(n_classes, n_features))
        y = rng.integers(0, n_classes, size=n_samples)
        Xc = protos[y] + rng.normal(scale=0.6, size=(n_samples, n_features))
        enc = GenericEncoder(dim=dim, num_levels=16, seed=3)
        clf = HDClassifier(enc, epochs=epochs, seed=3).fit(Xc, y)
        # freeze the post-init state so every timed retrain does the
        # exact same work (retraining mutates the class vectors)
        encodings = np.asarray(enc.encode_batch(Xc), dtype=np.float64)
        _, y_idx = np.unique(y, return_inverse=True)
        base_model = clf.model_.copy()

        def retrain():
            clf.model_ = base_model.copy()
            clf.norms_.recompute(clf.model_)
            training.retrain(clf, encodings, y_idx)

        return retrain
    raise ValueError(name)


def _time_modes(fn, repeats: int):
    """Best-of times for bypass / off / on, plus spans emitted while on.

    The three modes are interleaved round-robin (one timed run of each
    per round) so slow drift -- thermal, page cache, a background task --
    lands on every mode equally instead of biasing whichever mode ran
    last; best-of-N then strips the remaining one-sided noise.
    """
    sink = CollectorSink(maxlen=0)  # count spans, store none

    def run_bypass():
        obs_trace.reset()
        _patch_bypass()
        try:
            t0 = time.perf_counter()
            fn()
            return time.perf_counter() - t0
        finally:
            _unpatch()

    def run_off():
        obs_trace.reset()
        t0 = time.perf_counter()
        fn()
        return time.perf_counter() - t0

    def run_on():
        # steady-state tracing: the aggregate families persist across
        # runs (cleared once below), as they would in a traced session
        obs_trace.reset()
        obs_trace.enable_tracing(sink)
        try:
            t0 = time.perf_counter()
            fn()
            return time.perf_counter() - t0
        finally:
            obs_trace.reset()

    fn()  # shared warm-up outside the clock
    best = {"bypass": float("inf"), "off": float("inf"), "on": float("inf")}
    runs = {"bypass": run_bypass, "off": run_off, "on": run_on}
    try:
        for _ in range(repeats):
            for mode, one in runs.items():
                best[mode] = min(best[mode], one())
    finally:
        REGISTRY.clear()
    return best["bypass"], best["off"], best["on"], sink.emitted


def _span_microbench(n: int = 20000):
    """Raw per-span cost in nanoseconds, disabled and enabled."""
    obs_trace.reset()
    t0 = time.perf_counter()
    for _ in range(n):
        with obs_trace.span("micro") as sp:
            if sp.recording:
                sp.add_ops(xor_ops=1)
    disabled_ns = (time.perf_counter() - t0) / n * 1e9

    obs_trace.enable_tracing(CollectorSink(maxlen=0))
    t0 = time.perf_counter()
    for _ in range(n):
        with obs_trace.span("micro") as sp:
            if sp.recording:
                sp.add_ops(xor_ops=1)
    enabled_ns = (time.perf_counter() - t0) / n * 1e9
    obs_trace.reset()
    REGISTRY.clear()
    return round(disabled_ns, 1), round(enabled_ns, 1)


def run(workloads, repeats: int):
    results = []
    for name, dim, n_samples, n_features, epochs in workloads:
        fn = _make_workload(name, dim, n_samples, n_features, epochs)
        bypass_s, off_s, on_s, emitted = _time_modes(fn, repeats)
        off_pct = (off_s / bypass_s - 1.0) * 100.0
        on_pct = (on_s / bypass_s - 1.0) * 100.0
        results.append({
            "workload": name,
            "dim": dim,
            "n_samples": n_samples,
            "epochs": epochs,
            "bypass_s": round(bypass_s, 6),
            "off_s": round(off_s, 6),
            "on_s": round(on_s, 6),
            "off_overhead_pct": round(off_pct, 3),
            "on_overhead_pct": round(on_pct, 3),
            "spans_per_run": emitted // max(1, repeats),
        })
        print(
            f"{name:7s} dim={dim:5d}  bypass {bypass_s * 1e3:8.2f}ms  "
            f"off {off_pct:+6.2f}%  on {on_pct:+6.2f}%  "
            f"({results[-1]['spans_per_run']} spans/run)"
        )
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small smoke workloads (CI)")
    parser.add_argument("--check", action="store_true",
                        help="fail when overhead exceeds the budgets")
    parser.add_argument("--max-off-pct", type=float, default=2.0,
                        help="--check budget for disabled tracing (%%)")
    parser.add_argument("--max-on-pct", type=float, default=5.0,
                        help="--check budget for enabled tracing (%%)")
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--out", type=pathlib.Path, default=OUT_PATH)
    args = parser.parse_args(argv)

    workloads = QUICK_WORKLOADS if args.quick else FULL_WORKLOADS
    # the per-mode deltas under test are fractions of a percent, so
    # best-of needs plenty of rounds to shake off scheduler noise; at a
    # few ms per round this stays cheap even for CI
    repeats = args.repeats or (25 if args.quick else 31)
    results = run(workloads, repeats=repeats)
    disabled_ns, enabled_ns = _span_microbench()
    print(f"raw span cost: disabled {disabled_ns:.0f}ns  "
          f"enabled {enabled_ns:.0f}ns")

    report = {
        "harness": "benchmarks.bench_obs",
        "profile": "quick" if args.quick else "full",
        "repeats": repeats,
        "budgets": {"off_pct": args.max_off_pct, "on_pct": args.max_on_pct},
        "span_ns": {"disabled": disabled_ns, "enabled": enabled_ns},
        "numpy": np.__version__,
        "results": results,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.check:
        bad = [
            r for r in results
            if r["off_overhead_pct"] > args.max_off_pct
            or r["on_overhead_pct"] > args.max_on_pct
        ]
        for r in bad:
            print(
                f"CHECK FAILED: {r['workload']} off={r['off_overhead_pct']}% "
                f"(budget {args.max_off_pct}%) on={r['on_overhead_pct']}% "
                f"(budget {args.max_on_pct}%)",
                file=sys.stderr,
            )
        return 1 if bad else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
