"""Chaos gate: availability and accuracy under injected faults.

Runs the serving stack twice over the same workload -- once clean, once
under a :class:`~repro.serve.resilience.chaos.ChaosPolicy` injecting
the failure modes the paper argues HDC shrugs off (20% transient worker
faults, VOS-style 1e-4 class-memory bit flips, latency spikes, a couple
of worker kills) -- and measures what a caller actually experiences:
request success rate, completed-latency percentiles, accuracy, and
whether any future was left hanging.

``--check`` (CI) enforces the resilience contract:

- >= 99% of chaos-run requests succeed (retry/backoff absorbs the
  injected fault rate: at 20% faults and 4 retries the expected failure
  probability is 0.2**5 = 3e-4);
- zero hung futures in either run (every submit() resolves);
- the chaos run's completed p99 stays inside the request deadline
  (shed-on-expiry bounds the tail instead of letting queues collapse);
- accuracy under 1e-4 bit flips degrades <= 2 points vs the clean run
  (the Fig. 6 claim, measured end-to-end through the server);
- the degradation ladder's ``approx`` tier (tier 2: 50%-fold multifold
  approximate encoding), exercised as its own fault-free scenario, must
  actually engage on the deployment and cost no success rate and at
  most the same accuracy budget.

Results land in ``BENCH_resilience.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_resilience.py            # full
    PYTHONPATH=src python benchmarks/bench_resilience.py --quick --check
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

from repro.core.classifier import HDClassifier
from repro.core.config import ComputeConfig
from repro.core.encoders import GenericEncoder
from repro.hardware.faultspec import FaultSpec
from repro.serve import (
    ChaosPolicy,
    DeadlineExceeded,
    InferenceServer,
    QueueFull,
    ServeConfig,
)

OUT_PATH = pathlib.Path("BENCH_resilience.json")

DEADLINE_S = 2.0  # per-request budget; the p99 bound under --check


def make_workload(dim: int, n_queries: int, seed: int):
    """A learnable problem + a trained 512/1024-dim GENERIC classifier."""
    rng = np.random.default_rng(seed)
    n_classes, n_features = 4, 24
    protos = rng.normal(scale=1.5, size=(n_classes, n_features))
    y_train = rng.integers(0, n_classes, size=240)
    X_train = protos[y_train] + rng.normal(scale=0.6,
                                           size=(240, n_features))
    y_q = rng.integers(0, n_classes, size=n_queries)
    queries = protos[y_q] + rng.normal(scale=0.6,
                                       size=(n_queries, n_features))
    enc = GenericEncoder(dim=dim, num_levels=16, seed=seed)
    clf = HDClassifier(enc, epochs=3, seed=seed,
                       config=ComputeConfig(train_engine="auto"))
    clf.fit(X_train, y_train)
    return clf, queries, y_q


def run_scenario(name: str, clf, queries, y_true, chaos, seed: int,
                 force_tier=None):
    """Serve every query once; report success/latency/accuracy/stats.

    ``force_tier`` pins the degradation ladder at that tier for the
    whole run -- the ``approx`` scenario uses it to measure what the
    multifold-approximation tier costs a caller (it must cost nothing
    in success rate and at most noise in accuracy).
    """
    config = ServeConfig(
        n_workers=2, max_batch=16, max_retries=4,
        default_deadline=DEADLINE_S,
    )
    server = InferenceServer(config, chaos=chaos)
    server.register("bench", clf)
    t0 = time.monotonic()
    failures = {"deadline": 0, "rejected": 0, "other": 0}
    latencies, correct = [], 0
    approx_engaged = False
    with server:
        if force_tier is not None:
            server.ladder.force_tier(force_tier)
            approx_engaged = server.registry.get("bench").approx_degraded
        futures = []
        for x in queries:
            try:
                futures.append((server.submit("bench", x), True))
            except QueueFull:
                failures["rejected"] += 1
                futures.append((None, False))
        for (fut, submitted), label in zip(futures, y_true):
            if not submitted:
                continue
            try:
                pred = fut.result(timeout=30.0)
                latencies.append(pred.latency)
                correct += int(pred.label == label)
            except DeadlineExceeded:
                failures["deadline"] += 1
            except Exception:
                failures["other"] += 1
        hung = sum(1 for fut, submitted in futures
                   if submitted and not fut.done())
        stats = server.stats()
        if force_tier is not None:
            server.ladder.force_tier(0)  # undo approx for later scenarios
    wall_s = time.monotonic() - t0

    n = len(queries)
    completed = len(latencies)
    lat = np.asarray(latencies) if latencies else np.asarray([0.0])
    report = {
        "scenario": name,
        "n_requests": n,
        "completed": completed,
        "success_rate": completed / n,
        "accuracy": correct / max(1, completed),
        "failures": failures,
        "hung_futures": hung,
        "wall_s": round(wall_s, 3),
        "latency_ms": {
            "p50": round(float(np.percentile(lat, 50) * 1e3), 3),
            "p95": round(float(np.percentile(lat, 95) * 1e3), 3),
            "p99": round(float(np.percentile(lat, 99) * 1e3), 3),
            "max": round(float(lat.max() * 1e3), 3),
        },
        "approx_engaged": approx_engaged,
        "resilience": {
            "retries": stats["counters"].get("retries", 0),
            "deadline_expired": stats["counters"].get("deadline_expired", 0),
            "worker_restarts": stats["resilience"]["worker_restarts"],
            "breaker_opened": sum(b["opened"] for b in
                                  stats["resilience"]["breakers"]),
            "ladder": stats["resilience"]["ladder"],
            "chaos": stats["resilience"]["chaos"],
        },
    }
    print(
        f"{name:6s}  {completed}/{n} ok ({report['success_rate']:.1%})  "
        f"acc {report['accuracy']:.3f}  "
        f"p99 {report['latency_ms']['p99']:.1f}ms  "
        f"retries {report['resilience']['retries']}  "
        f"hung {hung}"
    )
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small smoke workload (CI)")
    parser.add_argument("--check", action="store_true",
                        help="fail when the resilience contract is violated")
    parser.add_argument("--min-success", type=float, default=0.99,
                        help="--check floor on chaos-run success rate")
    parser.add_argument("--max-acc-drop", type=float, default=0.02,
                        help="--check cap on accuracy loss vs clean (points)")
    parser.add_argument("--fault-rate", type=float, default=0.2,
                        help="chaos: transient worker-fault probability")
    parser.add_argument("--bitflip-rate", type=float, default=1e-4,
                        help="chaos: class-memory bit-flip probability")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", type=pathlib.Path, default=OUT_PATH)
    args = parser.parse_args(argv)

    dim = 512 if args.quick else 1024
    n_queries = 300 if args.quick else 1000
    clf, queries, y_q = make_workload(dim, n_queries, args.seed)

    clean = run_scenario("clean", clf, queries, y_q, chaos=None,
                         seed=args.seed)
    # ladder tier 2: every deployment drops to 50%-fold approximate
    # encoding -- the quality-shedding step between engine fallback and
    # dim shedding.  Served fault-free so the gate isolates what the
    # approximation itself costs.
    approx = run_scenario("approx", clf, queries, y_q, chaos=None,
                          seed=args.seed, force_tier=2)
    chaos_policy = ChaosPolicy(
        fault_rate=args.fault_rate,
        latency_rate=0.05, latency=0.01,
        kill_rate=0.01, max_kills=2,
        fault=FaultSpec(error_rate=args.bitflip_rate, bits=8),
        seed=args.seed,
    )
    chaos = run_scenario("chaos", clf, queries, y_q, chaos=chaos_policy,
                         seed=args.seed)

    report = {
        "harness": "benchmarks.bench_resilience",
        "profile": "quick" if args.quick else "full",
        "dim": dim,
        "deadline_s": DEADLINE_S,
        "gates": {
            "min_success": args.min_success,
            "max_acc_drop": args.max_acc_drop,
            "p99_bound_s": DEADLINE_S,
        },
        "numpy": np.__version__,
        "scenarios": [clean, approx, chaos],
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.check:
        problems = []
        if chaos["success_rate"] < args.min_success:
            problems.append(
                f"chaos success {chaos['success_rate']:.3%} < "
                f"{args.min_success:.0%}"
            )
        for scenario in (clean, approx, chaos):
            if scenario["hung_futures"]:
                problems.append(
                    f"{scenario['scenario']}: "
                    f"{scenario['hung_futures']} hung futures"
                )
        if not approx["approx_engaged"]:
            problems.append(
                "approx scenario: ladder tier 2 did not engage "
                "approximate encoding on the deployment"
            )
        if approx["success_rate"] < args.min_success:
            problems.append(
                f"approx success {approx['success_rate']:.3%} < "
                f"{args.min_success:.0%}"
            )
        approx_drop = clean["accuracy"] - approx["accuracy"]
        if approx_drop > args.max_acc_drop:
            problems.append(
                f"approx tier cost {approx_drop:.3f} accuracy "
                f"(budget {args.max_acc_drop})"
            )
        if chaos["latency_ms"]["p99"] > DEADLINE_S * 1e3:
            problems.append(
                f"chaos p99 {chaos['latency_ms']['p99']:.1f}ms exceeds the "
                f"{DEADLINE_S * 1e3:.0f}ms deadline"
            )
        acc_drop = clean["accuracy"] - chaos["accuracy"]
        if acc_drop > args.max_acc_drop:
            problems.append(
                f"accuracy dropped {acc_drop:.3f} under faults "
                f"(budget {args.max_acc_drop})"
            )
        for p in problems:
            print(f"CHECK FAILED: {p}", file=sys.stderr)
        return 1 if problems else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
