"""Fig. 10 regeneration: clustering energy, GENERIC vs K-means."""

from __future__ import annotations

import pytest

from repro.baselines import KMeans
from repro.datasets import make_cluster_dataset
from repro.eval.experiments import fig10


_CACHE = {}


def _regenerate():
    """Run the experiment once per session; later tests reuse the result."""
    if "result" not in _CACHE:
        result = fig10.run(scale=1.0)
        print()
        for chart in ([result.data.get("chart")] if "chart" in result.data
                      else result.data.get("charts", {}).values()):
            print()
            print(chart)
        print(result.render(float_fmt="{:.4g}"))
        _CACHE["result"] = result
    return _CACHE["result"]


@pytest.fixture(scope="module")
def fig10_result():
    return _regenerate()


def test_regenerate_and_verify(benchmark):
    """The paper artifact itself: regenerate the rows, assert the claims."""
    result = benchmark.pedantic(
        _regenerate, args=(), rounds=1, iterations=1
    )
    result.assert_claims()


class TestFig10Shape:
    def test_all_claims_hold(self, fig10_result):
        fig10_result.assert_claims()

    def test_geo_mean_ratios_are_large(self, fig10_result):
        """Paper: 17,523x vs the Pi, 61,400x vs the CPU; require orders."""
        assert fig10_result.data["geo_ratio_rpi"] > 500
        assert fig10_result.data["geo_ratio_cpu"] > 500

    def test_all_five_datasets(self, fig10_result):
        assert len(fig10_result.data["per_dataset"]) == 5


class TestFig10Kernels:
    def test_kmeans_baseline_speed(self, benchmark):
        X, _, k = make_cluster_dataset("WingNut", seed=7, scale=0.5)
        benchmark(lambda: KMeans(k=k, seed=7, n_init=3).fit(X))
