"""Streaming encoder: bounded memory, chunking, bit-identity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.encoders import GenericEncoder
from repro.stream import RangeReservoir, StreamingEncoder


class TestRangeReservoir:
    def test_exact_min_max(self, rng):
        res = RangeReservoir(size=64, seed=0)
        v = rng.normal(size=5000)
        res.offer(v)
        assert res.range() == (float(v.min()), float(v.max()))

    def test_memory_stays_bounded(self, rng):
        res = RangeReservoir(size=32, seed=0)
        for _ in range(50):
            res.offer(rng.normal(size=1000))
        assert res.filled == 32
        assert res.seen == 50_000

    def test_quantile_range_inside_extremes(self, rng):
        res = RangeReservoir(size=2048, seed=1)
        res.offer(rng.normal(size=20_000))
        lo, hi = res.range(quantile=0.05)
        full_lo, full_hi = res.range()
        assert full_lo < lo < hi < full_hi

    def test_reservoir_tracks_distribution(self):
        # after a long uniform stream, reservoir quantiles approximate it
        gen = np.random.default_rng(2)
        res = RangeReservoir(size=2048, seed=2)
        for _ in range(20):
            res.offer(gen.uniform(0.0, 10.0, size=5000))
        lo, hi = res.range(quantile=0.1)
        assert lo == pytest.approx(1.0, abs=0.35)
        assert hi == pytest.approx(9.0, abs=0.35)

    def test_empty_rejected(self):
        with pytest.raises(RuntimeError):
            RangeReservoir(size=8).range()
        with pytest.raises(ValueError):
            RangeReservoir(size=1)


class TestStreamingEncoder:
    @pytest.fixture
    def fitted(self, drift_stream):
        X, _, _ = drift_stream
        enc = GenericEncoder(dim=256, num_levels=16, seed=5)
        enc.fit(X[:200])
        return enc, X

    def test_push_buffers_until_chunk(self, fitted):
        enc, X = fitted
        se = StreamingEncoder(enc, chunk_size=16)
        for i in range(15):
            assert se.push(X[i]) is None
        out = se.push(X[15])
        assert out is not None and len(out) == 16
        assert se.buffered == 0

    def test_push_flush_concat_is_bit_identical(self, fitted):
        enc, X = fitted
        block = X[:100]
        se = StreamingEncoder(enc, chunk_size=17)
        parts = [se.push(row) for row in block]
        parts.append(se.flush())
        streamed = np.concatenate([p for p in parts if p is not None])
        assert np.array_equal(streamed, enc.encode_batch(block))

    def test_encode_matches_one_shot(self, fitted):
        enc, X = fitted
        for chunk in (1, 7, 64, 1000):
            se = StreamingEncoder(enc, chunk_size=chunk)
            assert np.array_equal(se.encode(X[:150]), enc.encode_batch(X[:150]))

    def test_encode_stream_generator(self, fitted):
        enc, X = fitted
        se = StreamingEncoder(enc, chunk_size=32)
        chunks = list(se.encode_stream(iter(X[:100])))
        assert [len(c) for c in chunks] == [32, 32, 32, 4]
        assert np.array_equal(np.concatenate(chunks), enc.encode_batch(X[:100]))

    def test_warmup_fits_unfitted_encoder(self, drift_stream):
        X, _, _ = drift_stream
        enc = GenericEncoder(dim=256, num_levels=16, seed=6)
        se = StreamingEncoder(enc, chunk_size=8, warmup=40)
        out = None
        for i, row in enumerate(X):
            out = se.push(row)
            if out is not None:
                break
        assert enc.fitted
        assert i == 39 and len(out) == 40  # warmup buffer became chunk one

    def test_encode_unfitted_needs_warmup_rows(self, drift_stream):
        X, _, _ = drift_stream
        enc = GenericEncoder(dim=256, num_levels=16, seed=6)
        se = StreamingEncoder(enc, chunk_size=8, warmup=64)
        with pytest.raises(RuntimeError, match="warmup"):
            se.encode(X[:10])
        se.encode(X[:64])  # enough rows: fits then encodes
        assert enc.fitted

    def test_adapt_range_refits_on_scale_shift(self, fitted):
        enc, X = fitted
        lo0, hi0 = float(enc.quantizer.lo), float(enc.quantizer.hi)
        try:
            se = StreamingEncoder(enc, chunk_size=32, adapt_range=True)
            se.encode(X[:64] * 10.0)  # scale drift: range estimate moves
            assert se.range_refits >= 1
            assert float(enc.quantizer.hi) > hi0
        finally:  # session-scoped source data; restore the quantizer
            enc.quantizer.lo = np.asarray(lo0)
            enc.quantizer.hi = np.asarray(hi0)

    def test_frozen_range_never_refits(self, fitted):
        enc, X = fitted
        se = StreamingEncoder(enc, chunk_size=32, adapt_range=False)
        se.encode(X[:64] * 10.0)
        assert se.range_refits == 0

    def test_stats_counters(self, fitted):
        enc, X = fitted
        se = StreamingEncoder(enc, chunk_size=10)
        se.encode(X[:25])
        s = se.stats()
        assert s["samples_seen"] == 25
        assert s["chunks_flushed"] == 3
        assert s["buffered"] == 0

    def test_bad_chunk_size(self, fitted):
        enc, _ = fitted
        with pytest.raises(ValueError):
            StreamingEncoder(enc, chunk_size=0)

    @settings(max_examples=25, deadline=None)
    @given(
        chunk=st.integers(min_value=1, max_value=40),
        n=st.integers(min_value=1, max_value=90),
        seed=st.integers(min_value=0, max_value=5),
    )
    def test_property_chunked_equals_one_shot(self, chunk, n, seed):
        """For any chunk size, streaming output == one-shot encode_batch."""
        gen = np.random.default_rng(seed)
        X_fit = gen.normal(size=(64, 12))
        X = gen.normal(size=(n, 12))
        enc = GenericEncoder(dim=128, num_levels=8, seed=seed)
        enc.fit(X_fit)
        se = StreamingEncoder(enc, chunk_size=chunk)
        assert np.array_equal(se.encode(X), enc.encode_batch(X))
