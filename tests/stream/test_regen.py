"""Dimension regeneration: scoring, exactness, serving integration."""

import numpy as np
import pytest

from repro.core.packed import PackedModel
from repro.serve.registry import ModelRegistry
from repro.stream import (
    apply_plan,
    dimension_scores,
    plan_regeneration,
    regenerate_deployment,
)


class TestScoring:
    def test_scores_shape_and_sign(self, stream_classifier):
        s = dimension_scores(stream_classifier.model_)
        assert s.shape == (stream_classifier.encoder.dim,)
        assert (s >= 0).all() and s.max() > 0

    def test_constant_dimension_scores_zero(self):
        # equal-norm rows differing only in dim 2: it alone separates
        m = np.ones((3, 4))
        m[:, 2] = [1.0, -1.0, 1.0]
        s = dimension_scores(m)
        assert s[2] == s.max() > 0
        assert s[0] == s[1] == s[3] == 0.0

    def test_needs_two_classes(self):
        with pytest.raises(ValueError):
            dimension_scores(np.ones((1, 8)))


class TestPlan:
    def test_order_is_permutation_and_mass_improves(self, stream_classifier):
        plan = plan_regeneration(stream_classifier.model_, serving_dim=128)
        dim = stream_classifier.encoder.dim
        assert np.array_equal(np.sort(plan.order), np.arange(dim))
        assert plan.prefix_mass_after >= plan.prefix_mass_before
        assert plan.gain == pytest.approx(
            plan.prefix_mass_after - plan.prefix_mass_before)
        # top-scored dims fill the prefix: mass after is the best possible
        s = plan.scores
        assert plan.prefix_mass_after == pytest.approx(
            np.sort(s)[::-1][:128].sum() / s.sum())

    def test_serving_dim_validated(self, stream_classifier):
        with pytest.raises(ValueError):
            plan_regeneration(stream_classifier.model_, serving_dim=0)
        with pytest.raises(ValueError):
            plan_regeneration(stream_classifier.model_, serving_dim=10_000)

    def test_apply_plan_full_dim_predictions_identical(
            self, stream_classifier, drift_stream):
        X, _, _ = drift_stream
        plan = plan_regeneration(stream_classifier.model_, serving_dim=128)
        permuted = apply_plan(stream_classifier, plan)
        enc = stream_classifier.encoder.encode_batch(X[:150])
        enc = np.asarray(enc, dtype=np.float64)
        assert np.array_equal(
            stream_classifier.predict_encoded(enc),
            permuted.predict_encoded(enc[:, plan.order]),
        )

    def test_norms_rebuilt_for_new_layout(self, stream_classifier):
        plan = plan_regeneration(stream_classifier.model_, serving_dim=128)
        permuted = apply_plan(stream_classifier, plan)
        assert np.allclose(permuted.norms_.full_norm2(),
                           (permuted.model_ ** 2).sum(axis=1))


class TestServingIntegration:
    def test_regenerate_swaps_a_new_version(self, stream_classifier,
                                            drift_stream):
        X, y, _ = drift_stream
        reg = ModelRegistry()
        reg.register("m", stream_classifier, min_dim=128)
        before_full = reg.get("m").predict(X[:200])
        dep, plan = regenerate_deployment(reg, "m")
        assert dep.version == 2
        assert dep.dim_order is not None
        # full-dim predictions are bit-identical through the deployment
        assert np.array_equal(dep.predict(X[:200]), before_full)
        # the regenerated prefix is at least as accurate as the naive one
        naive = np.mean(stream_classifier.predict(X[:600], dim=128) == y[:600])
        regen = np.mean(dep.predict(X[:600], dim=128) == y[:600])
        assert regen >= naive

    def test_repeated_regeneration_composes(self, stream_classifier,
                                            drift_stream):
        X, _, _ = drift_stream
        reg = ModelRegistry()
        reg.register("m", stream_classifier, min_dim=128)
        before = reg.get("m").predict(X[:100])
        regenerate_deployment(reg, "m", serving_dim=128)
        dep, _ = regenerate_deployment(reg, "m", serving_dim=256)
        assert dep.version == 3
        dim = stream_classifier.encoder.dim
        assert np.array_equal(np.sort(dep.dim_order), np.arange(dim))
        assert np.array_equal(dep.predict(X[:100]), before)

    def test_packed_deployment_rejected(self, stream_classifier):
        reg = ModelRegistry()
        reg.register("m", PackedModel.from_classifier(stream_classifier))
        with pytest.raises(ValueError, match="classifier"):
            regenerate_deployment(reg, "m")
