"""Drift detector: triggers, baselines, cooldown."""

import numpy as np
import pytest

from repro.stream import DriftConfig, DriftDetector

CFG = dict(window=50, warmup=50, cooldown=50)


def feed(det, n, margin=2.0, correct=True, pred=None, jitter=0.0, seed=0):
    """Feed n samples with the given margin/pred/correctness; return events."""
    gen = np.random.default_rng(seed)
    events = []
    for i in range(n):
        m = margin + (gen.normal(scale=jitter) if jitter else 0.0)
        p = (i % det.n_classes) if pred is None else pred
        label = p if correct else (p + 1) % det.n_classes
        ev = det.observe([m], [p], [label])
        if ev is not None:
            events.append(ev)
    return events


class TestConfig:
    def test_unknown_trigger_rejected(self):
        with pytest.raises(ValueError, match="unknown drift triggers"):
            DriftConfig(triggers=("margin", "entropy"))

    def test_bad_alpha_and_drop_rejected(self):
        with pytest.raises(ValueError):
            DriftConfig(ewma_alpha=0.0)
        with pytest.raises(ValueError):
            DriftConfig(margin_drop=1.0)


class TestMargins:
    def test_top1_top2_gap(self):
        scores = np.array([[0.9, 0.7, 0.1], [0.2, 0.8, 0.75]])
        m = DriftDetector.margins_from_scores(scores)
        assert np.allclose(m, [0.2, 0.05])

    def test_needs_two_classes(self):
        with pytest.raises(ValueError):
            DriftDetector.margins_from_scores(np.array([[1.0]]))


class TestTriggers:
    def test_stable_stream_never_fires(self):
        det = DriftDetector(4, DriftConfig(**CFG))
        events = feed(det, 500, margin=2.0, jitter=0.1)
        assert events == []
        assert det.drift_score() < 1.0

    def test_margin_collapse_fires(self):
        det = DriftDetector(4, DriftConfig(**CFG, triggers=("margin",)))
        feed(det, 100, margin=2.0)
        events = feed(det, 60, margin=0.2)
        assert len(events) == 1
        assert events[0].reason == "margin"
        assert events[0].score >= 1.0
        assert events[0].window_margin < events[0].baseline_margin

    def test_error_jump_fires(self):
        det = DriftDetector(4, DriftConfig(**CFG, triggers=("error",)))
        feed(det, 100, correct=True)
        events = feed(det, 60, correct=False)
        assert len(events) == 1
        assert events[0].reason == "error"
        assert events[0].window_error > events[0].baseline_error

    def test_prior_shift_fires(self):
        det = DriftDetector(4, DriftConfig(**CFG, triggers=("prior",)))
        feed(det, 100)  # balanced predictions
        events = feed(det, 60, pred=0)  # everything collapses onto class 0
        assert len(events) == 1
        assert events[0].reason == "prior"
        assert events[0].prior_l1 > 0.6

    def test_disabled_trigger_stays_silent(self):
        det = DriftDetector(4, DriftConfig(**CFG, triggers=("error",)))
        feed(det, 100, margin=2.0)
        assert feed(det, 100, margin=0.01) == []  # margin collapsed, no fire

    def test_cooldown_blocks_immediate_refire(self):
        det = DriftDetector(4, DriftConfig(**CFG, triggers=("margin",)))
        feed(det, 100, margin=2.0)
        first = feed(det, 50, margin=0.2)
        assert len(first) == 1
        # the fire re-warmed the detector: the collapsed margin becomes
        # the new baseline, so the same regime change never refires
        assert feed(det, 100, margin=0.2) == []

    def test_refires_on_second_regime_change(self):
        det = DriftDetector(4, DriftConfig(**CFG, triggers=("margin",)))
        feed(det, 100, margin=2.0)
        assert len(feed(det, 60, margin=0.5)) == 1
        feed(det, 100, margin=0.5)  # settle into the new regime
        assert len(feed(det, 60, margin=0.05)) == 1  # drifts again


class TestState:
    def test_warmup_gates_firing(self):
        det = DriftDetector(4, DriftConfig(window=20, warmup=500, cooldown=10,
                                           triggers=("margin",)))
        feed(det, 100, margin=2.0)
        assert feed(det, 100, margin=0.1) == []  # armed only past warmup

    def test_reset_baselines_reseeds(self):
        det = DriftDetector(4, DriftConfig(**CFG, triggers=("margin",)))
        feed(det, 100, margin=2.0)
        det.reset_baselines()
        # low margins become the *new* baseline, so no event fires
        assert feed(det, 120, margin=0.2) == []

    def test_state_snapshot(self):
        det = DriftDetector(4, DriftConfig(**CFG))
        feed(det, 80, margin=1.5)
        s = det.state()
        assert s["samples_seen"] == 80
        assert s["window_margin"] == pytest.approx(1.5)
        assert s["events"] == 0

    def test_needs_two_classes(self):
        with pytest.raises(ValueError):
            DriftDetector(1)

    def test_shape_mismatch_rejected(self):
        det = DriftDetector(3)
        with pytest.raises(ValueError, match="mismatch"):
            det.observe([1.0, 2.0], [0])
