"""Replay buffer semantics and the background retraining thread."""

import threading
import time

import numpy as np
import pytest

from repro.stream import BackgroundTrainer, ReplayBuffer


class TestReplayBuffer:
    def test_fills_then_wraps_in_arrival_order(self):
        buf = ReplayBuffer(capacity=5, dim=2)
        for i in range(8):
            buf.append(np.full((1, 2), i), [i])
        enc, y = buf.snapshot()
        assert len(buf) == 5
        assert y.tolist() == [3, 4, 5, 6, 7]
        assert np.array_equal(enc[:, 0], [3, 4, 5, 6, 7])
        assert buf.total_appended == 8

    def test_block_append_spanning_the_wrap(self):
        buf = ReplayBuffer(capacity=4, dim=1)
        buf.append(np.arange(3).reshape(3, 1), [0, 1, 2])
        buf.append(np.arange(3, 6).reshape(3, 1), [3, 4, 5])
        _, y = buf.snapshot()
        assert y.tolist() == [2, 3, 4, 5]

    def test_oversized_block_keeps_newest(self):
        buf = ReplayBuffer(capacity=3, dim=1)
        buf.append(np.arange(10).reshape(10, 1), np.arange(10))
        _, y = buf.snapshot()
        assert y.tolist() == [7, 8, 9]

    def test_snapshot_is_a_copy(self):
        buf = ReplayBuffer(capacity=3, dim=1)
        buf.append([[1.0]], [1])
        enc, _ = buf.snapshot()
        enc[:] = 99
        assert buf.snapshot()[0][0, 0] == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ReplayBuffer(capacity=0, dim=4)
        buf = ReplayBuffer(capacity=4, dim=3)
        with pytest.raises(ValueError, match="dim"):
            buf.append(np.zeros((2, 5)), [0, 1])
        with pytest.raises(ValueError, match="labels"):
            buf.append(np.zeros((2, 3)), [0])


@pytest.fixture
def drifted_window(stream_classifier, drift_stream):
    """Post-drift encodings+labels the pretrained model now gets wrong."""
    X, y, phase = drift_stream
    post = np.nonzero(phase >= 1.0)[0][:400]
    enc = stream_classifier.encoder.encode_batch(X[post])
    return enc, y[post]


class TestBackgroundTrainer:
    def test_retrain_recovers_and_swaps(self, stream_classifier, drifted_window):
        enc, labels = drifted_window
        swapped = []
        trainer = BackgroundTrainer(
            lambda: stream_classifier,
            lambda clone, reason: swapped.append((clone, reason)),
            epochs=3,
        ).start()
        try:
            assert trainer.request(enc[:300], labels[:300], reason="margin")
            assert trainer.wait_idle(timeout=30.0)
        finally:
            trainer.stop()
        (clone, reason), = swapped
        assert reason == "margin"
        assert clone is not stream_classifier
        # the base model is untouched; the clone learned the new regime
        hold_enc, hold_y = enc[300:], labels[300:]
        base_acc = np.mean(
            stream_classifier.predict_encoded(
                np.asarray(hold_enc, np.float64)) == hold_y)
        clone_acc = np.mean(
            clone.predict_encoded(np.asarray(hold_enc, np.float64)) == hold_y)
        assert base_acc < 0.5
        assert clone_acc > base_acc + 0.3
        assert trainer.retrains == 1
        assert trainer.last_report.epochs_run <= 3

    def test_gram_engine_selected_for_integer_window(
            self, stream_classifier, drifted_window):
        enc, labels = drifted_window
        clones = []
        trainer = BackgroundTrainer(
            lambda: stream_classifier, lambda c, r: clones.append(c)
        ).start()
        try:
            trainer.request(enc, labels)
            assert trainer.wait_idle(timeout=30.0)
        finally:
            trainer.stop()
        assert clones[0].train_plan_.engine == "gram"

    def test_warm_init_keeps_old_rows_as_start(self, stream_classifier,
                                               drifted_window):
        enc, labels = drifted_window
        clones = []
        trainer = BackgroundTrainer(
            lambda: stream_classifier, lambda c, r: clones.append(c),
            epochs=1, init="warm",
        ).start()
        try:
            trainer.request(enc[:100], labels[:100])
            assert trainer.wait_idle(timeout=30.0)
        finally:
            trainer.stop()
        assert trainer.retrains == 1

    def test_request_without_start_rejected(self, drifted_window):
        enc, labels = drifted_window
        trainer = BackgroundTrainer(lambda: None, lambda c, r: None)
        assert not trainer.request(enc, labels)
        assert trainer.rejected == 1

    def test_min_interval_debounces(self, stream_classifier, drifted_window):
        enc, labels = drifted_window
        trainer = BackgroundTrainer(
            lambda: stream_classifier, lambda c, r: None,
            epochs=1, min_interval=60.0,
        ).start()
        try:
            assert trainer.request(enc[:50], labels[:50])
            trainer.wait_idle(timeout=30.0)
            assert not trainer.request(enc[:50], labels[:50])
        finally:
            trainer.stop()
        assert trainer.rejected == 1

    def test_empty_window_rejected(self, stream_classifier):
        trainer = BackgroundTrainer(
            lambda: stream_classifier, lambda c, r: None).start()
        try:
            assert not trainer.request(np.empty((0, 512)), np.empty(0))
        finally:
            trainer.stop()

    def test_unknown_labels_fail_without_killing_thread(
            self, stream_classifier, drifted_window):
        enc, _ = drifted_window
        ok = []
        trainer = BackgroundTrainer(
            lambda: stream_classifier, lambda c, r: ok.append(c), epochs=1,
        ).start()
        try:
            trainer.request(enc[:10], np.full(10, 999))  # labels never seen
            assert trainer.wait_idle(timeout=30.0)
            assert trainer.failed == 1
            assert trainer.running
            # and it still works afterwards
            trainer.request(enc[:50], drifted_window[1][:50])
            assert trainer.wait_idle(timeout=30.0)
        finally:
            trainer.stop()
        assert trainer.retrains == 1 and len(ok) == 1

    def test_latest_request_wins(self, stream_classifier, drifted_window):
        enc, labels = drifted_window
        reasons = []
        gate = threading.Event()

        def slow_source():
            gate.wait(5.0)
            return stream_classifier

        trainer = BackgroundTrainer(
            slow_source, lambda c, r: reasons.append(r), epochs=1,
        ).start()
        try:
            trainer.request(enc[:50], labels[:50], reason="first")
            time.sleep(0.1)  # let the thread block inside slow_source
            trainer.request(enc[:50], labels[:50], reason="second")
            trainer.request(enc[:50], labels[:50], reason="third")
            gate.set()
            assert trainer.wait_idle(timeout=30.0)
        finally:
            trainer.stop()
        # "first" ran; "second" was overwritten by "third" while queued
        assert "second" not in reasons and "third" in reasons

    def test_bad_init_rejected(self, stream_classifier):
        with pytest.raises(ValueError, match="retrain init"):
            BackgroundTrainer(lambda: stream_classifier, lambda c, r: None,
                              init="cold")
