"""Fixtures for the streaming tests: a drifting stream and a model
trained on its pre-drift head."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.classifier import HDClassifier
from repro.core.encoders import GenericEncoder
from repro.datasets import make_drift_stream

STREAM_DIM = 512
PRETRAIN = 600  # samples of the pre-drift head used for the initial fit


@pytest.fixture(scope="session")
def drift_stream():
    """(X, y, phase): 4 classes, prototypes fully replaced mid-stream."""
    return make_drift_stream(
        n_classes=4, n_features=32, n_samples=2400, seed=0,
        drift_start=0.4, drift_end=0.6, drift_magnitude=1.0, noise=0.4,
    )


@pytest.fixture(scope="session")
def stream_classifier(drift_stream):
    """Trained on the pre-drift head only; collapses post-drift."""
    X, y, _ = drift_stream
    enc = GenericEncoder(dim=STREAM_DIM, num_levels=16, seed=3)
    return HDClassifier(enc, epochs=4, seed=3).fit(X[:PRETRAIN], y[:PRETRAIN])
