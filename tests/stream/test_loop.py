"""End-to-end stream loop: drift -> retrain -> hot swap -> recovery."""

import numpy as np
import pytest

from repro.serve.server import InferenceServer, ServeConfig
from repro.stream import DriftConfig, StreamConfig, StreamLoop

PRETRAIN = 600
CHUNK = 50


@pytest.fixture
def loop_rig(stream_classifier):
    server = InferenceServer(ServeConfig(n_workers=1))
    cfg = StreamConfig(
        model_name="m", chunk_size=CHUNK, replay_capacity=300,
        drift=DriftConfig(window=100, warmup=100, cooldown=100,
                          margin_drop=0.3),
    )
    loop = StreamLoop(server, stream_classifier, cfg)
    with server, loop:
        yield server, loop


def drive(loop, X, y, start=PRETRAIN, stop=None, synchronous=True):
    reports = []
    for i in range(start, stop or len(X), CHUNK):
        reports.append(loop.process(X[i:i + CHUNK], y[i:i + CHUNK]))
        if synchronous:
            assert loop.wait_idle(timeout=30.0)
    return reports


class TestStreamLoop:
    def test_registers_the_deployment(self, loop_rig):
        server, loop = loop_rig
        assert "m" in server.registry
        assert server.registry.get("m").version == 1

    def test_drift_triggers_retrain_and_recovery(self, loop_rig,
                                                 drift_stream):
        server, loop = loop_rig
        X, y, phase = drift_stream
        reports = drive(loop, X, y)
        assert loop.swaps >= 1
        assert loop.trainer.failed == 0
        assert server.registry.get("m").version == 1 + server.registry.swaps
        # prequential accuracy over the fully-drifted tail recovered
        post = [r for r, i in zip(reports, range(PRETRAIN, len(X), CHUNK))
                if phase[i] >= 1.0]
        tail_acc = np.mean([r.accuracy for r in post[-5:]])
        assert tail_acc > 0.8
        # and the loop's base model was rebound to the retrained version
        post_idx = phase >= 1.0
        assert loop.clf.score(X[post_idx], y[post_idx]) > 0.8

    def test_static_model_would_have_collapsed(self, stream_classifier,
                                               drift_stream):
        X, y, phase = drift_stream
        post = phase >= 1.0
        assert stream_classifier.score(X[post], y[post]) < 0.5

    def test_reports_are_prequential(self, loop_rig, drift_stream):
        server, loop = loop_rig
        X, y, _ = drift_stream
        r = loop.process(X[PRETRAIN:PRETRAIN + CHUNK],
                         y[PRETRAIN:PRETRAIN + CHUNK])
        assert r.samples == CHUNK
        assert 0.0 <= r.accuracy <= 1.0
        assert r.preds.shape == (CHUNK,)
        assert r.model_version == 1
        assert len(loop.buffer) == CHUNK  # scored first, then buffered

    def test_unlabeled_chunks_feed_detector_not_buffer(self, loop_rig,
                                                       drift_stream):
        server, loop = loop_rig
        X, _, _ = drift_stream
        r = loop.process(X[PRETRAIN:PRETRAIN + CHUNK])
        assert r.accuracy is None
        assert len(loop.buffer) == 0
        assert loop.detector.samples_seen == CHUNK

    def test_gauges_and_counters_exported(self, loop_rig, drift_stream):
        server, loop = loop_rig
        X, y, _ = drift_stream
        drive(loop, X, y, stop=PRETRAIN + 4 * CHUNK)
        snap = server.metrics.snapshot()
        assert snap["counters"]["stream_chunks"] == 4
        assert "stream_drift_score" in snap["gauges"]

    def test_shed_level_triggers_regeneration(self, loop_rig, drift_stream):
        server, loop = loop_rig
        X, y, _ = drift_stream
        server.policy.force_level(2)
        drive(loop, X, y, stop=PRETRAIN + CHUNK)
        assert loop.regens == 1
        dep = server.registry.get("m")
        assert dep.dim_order is not None
        # same version: no second regeneration while shed persists
        drive(loop, X, y, start=PRETRAIN + CHUNK, stop=PRETRAIN + 2 * CHUNK)
        assert loop.regens == 1

    def test_ladder_dim_shed_hook_regenerates(self, loop_rig,
                                              stream_classifier):
        server, loop = loop_rig
        try:
            server.ladder.force_tier(3)  # dim_shed tier fires the hook
            assert loop.regens == 1
            assert server.registry.get("m").dim_order is not None
        finally:  # lower tiers flip the session-scoped encoder's state
            stream_classifier.encoder.engine = "auto"
            stream_classifier.encoder.approx_folds = None

    def test_serving_continues_across_swaps(self, loop_rig, drift_stream):
        server, loop = loop_rig
        X, y, _ = drift_stream
        futures = [server.submit("m", X[i]) for i in range(300)]
        drive(loop, X, y, stop=1800, synchronous=False)
        assert loop.wait_idle(timeout=60.0)
        preds = [f.result(timeout=10.0) for f in futures]
        assert len(preds) == 300  # nothing dropped or hung during swaps
        assert loop.swaps >= 1

    def test_stats_shape(self, loop_rig, drift_stream):
        server, loop = loop_rig
        X, y, _ = drift_stream
        drive(loop, X, y, stop=PRETRAIN + 2 * CHUNK)
        s = loop.stats()
        assert s["chunks"] == 2
        assert set(s) >= {"swaps", "regens", "model_version", "encoder",
                          "drift", "trainer", "replay"}

    def test_unfitted_classifier_rejected(self, stream_classifier):
        from repro.core.classifier import HDClassifier
        from repro.core.encoders import GenericEncoder

        server = InferenceServer(ServeConfig(n_workers=1))
        with pytest.raises(RuntimeError):
            StreamLoop(server, HDClassifier(GenericEncoder(dim=256)))
