"""Unit tests for the device models and workload builders."""

import numpy as np
import pytest

from repro.core.encoders import GenericEncoder, LevelIdEncoder
from repro.platforms import (
    DESKTOP_CPU,
    EDGE_GPU,
    PUBLISHED_ACCELERATORS,
    RASPBERRY_PI,
    Workload,
    hdc_clustering_workload,
    hdc_inference_workload,
    hdc_training_workload,
    ml_inference_workload,
    ml_training_workload,
)
from repro.platforms.published import generic_lp_reference_energy_14nm


@pytest.fixture(scope="module")
def encoder():
    rng = np.random.default_rng(0)
    enc = GenericEncoder(dim=512, seed=1)
    enc.fit(rng.normal(size=(10, 40)))
    return enc


class TestWorkload:
    def test_addition(self):
        a = Workload(flops=1, bitops=2, bytes_moved=3, sync_points=1)
        b = Workload(flops=10, bitops=20, bytes_moved=30)
        c = a + b
        assert (c.flops, c.bitops, c.bytes_moved, c.sync_points) == (11, 22, 33, 1)

    def test_scaling(self):
        w = Workload(flops=4, bitops=8, bytes_moved=16, sync_points=2).scaled(0.5)
        assert (w.flops, w.bitops, w.bytes_moved, w.sync_points) == (2, 4, 8, 1)


class TestDeviceModels:
    def test_energy_positive(self, encoder):
        w = hdc_inference_workload(encoder, n_classes=4)
        for dev in (RASPBERRY_PI, DESKTOP_CPU, EDGE_GPU):
            assert dev.energy_j(w) > 0
            assert dev.latency_s(w) > 0

    def test_egpu_cheapest_for_hdc(self, encoder):
        """The paper's Section 3.3 finding."""
        w = hdc_inference_workload(encoder, n_classes=4)
        e = {d.name: d.energy_j(w) for d in (RASPBERRY_PI, DESKTOP_CPU, EDGE_GPU)}
        assert e["eGPU"] < e["CPU"] < e["Raspberry Pi"]

    def test_bit_packing_matters(self):
        """A bitop-heavy workload benefits much more on the eGPU."""
        bit_heavy = Workload(bitops=1e9)
        flop_heavy = Workload(flops=1e9)
        ratio_bits = RASPBERRY_PI.energy_j(bit_heavy) / EDGE_GPU.energy_j(bit_heavy)
        ratio_flops = RASPBERRY_PI.energy_j(flop_heavy) / EDGE_GPU.energy_j(flop_heavy)
        assert ratio_bits > ratio_flops

    def test_sync_points_add_latency(self):
        w0 = Workload(flops=1e6)
        w1 = Workload(flops=1e6, sync_points=100)
        assert EDGE_GPU.latency_s(w1) > EDGE_GPU.latency_s(w0)
        assert EDGE_GPU.energy_j(w1) > EDGE_GPU.energy_j(w0)

    def test_report_keys(self, encoder):
        w = hdc_inference_workload(encoder, n_classes=4)
        report = DESKTOP_CPU.report(w)
        assert set(report) == {"device", "energy_j", "latency_s"}


class TestWorkloadBuilders:
    def test_inference_scales_with_classes(self, encoder):
        w2 = hdc_inference_workload(encoder, n_classes=2)
        w32 = hdc_inference_workload(encoder, n_classes=32)
        assert w32.flops > w2.flops

    def test_training_exceeds_inference(self, encoder):
        infer = hdc_inference_workload(encoder, n_classes=4)
        train = hdc_training_workload(encoder, 4, n_train=100, epochs=5)
        assert train.flops > 100 * infer.flops * 0.5

    def test_training_sync_points(self, encoder):
        train = hdc_training_workload(encoder, 4, n_train=100, epochs=5)
        assert train.sync_points == 500

    def test_clustering_workload(self, encoder):
        w = hdc_clustering_workload(encoder, k=3, n_samples=50, epochs=4)
        assert w.flops > 0
        assert "cluster" in w.label

    def test_generic_costs_more_than_level_id(self):
        """Fig. 3: window processing makes GENERIC pricier on devices."""
        rng = np.random.default_rng(1)
        X = rng.normal(size=(10, 60))
        g = GenericEncoder(dim=512, seed=1)
        li = LevelIdEncoder(dim=512, seed=1)
        g.fit(X)
        li.fit(X)
        wg = hdc_inference_workload(g, 4)
        wl = hdc_inference_workload(li, 4)
        assert wg.bitops > wl.bitops

    def test_ml_builders(self):
        from repro.baselines.common import ComputeProfile

        p = ComputeProfile(1000, 10, 5000, 50)
        assert ml_inference_workload(p).flops == 10
        assert ml_training_workload(p).flops == 1000


class TestPublished:
    def test_registry_contents(self):
        assert "tiny-hd-date21" in PUBLISHED_ACCELERATORS
        assert "datta-jetcas19" in PUBLISHED_ACCELERATORS

    def test_paper_ratios_at_14nm(self):
        lp = generic_lp_reference_energy_14nm()
        tiny = PUBLISHED_ACCELERATORS["tiny-hd-date21"].energy_at_node(14)
        datta = PUBLISHED_ACCELERATORS["datta-jetcas19"].energy_at_node(14)
        assert tiny / lp == pytest.approx(4.1, rel=1e-6)
        assert datta / lp == pytest.approx(15.7, rel=1e-6)

    def test_native_energy_larger_than_14nm(self):
        for acc in PUBLISHED_ACCELERATORS.values():
            assert acc.energy_per_input_j > acc.energy_at_node(14)

    def test_training_support_flags(self):
        assert PUBLISHED_ACCELERATORS["datta-jetcas19"].supports_training
        assert not PUBLISHED_ACCELERATORS["tiny-hd-date21"].supports_training

    def test_lp_reference_in_sane_range(self):
        lp = generic_lp_reference_energy_14nm()
        assert 1e-10 < lp < 1e-6  # sub-uJ per input
