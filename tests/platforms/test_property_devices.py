"""Property-based invariants of the device cost models."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platforms import DESKTOP_CPU, EDGE_GPU, RASPBERRY_PI, Workload

DEVICES = (RASPBERRY_PI, DESKTOP_CPU, EDGE_GPU)

counts = st.floats(min_value=0.0, max_value=1e12, allow_nan=False)


@given(flops=counts, bitops=counts, bytes_=counts, syncs=st.floats(0, 1e6))
@settings(max_examples=60, deadline=None)
def test_energy_and_latency_nonnegative(flops, bitops, bytes_, syncs):
    w = Workload(flops=flops, bitops=bitops, bytes_moved=bytes_, sync_points=syncs)
    for dev in DEVICES:
        assert dev.energy_j(w) >= 0.0
        assert dev.latency_s(w) >= 0.0


@given(flops=counts, extra=st.floats(min_value=1.0, max_value=1e10))
@settings(max_examples=60, deadline=None)
def test_more_work_never_costs_less(flops, extra):
    base = Workload(flops=flops, bitops=flops / 2, bytes_moved=flops / 4)
    bigger = Workload(
        flops=flops + extra, bitops=flops / 2 + extra, bytes_moved=flops / 4 + extra
    )
    for dev in DEVICES:
        assert dev.energy_j(bigger) >= dev.energy_j(base)
        assert dev.latency_s(bigger) >= dev.latency_s(base)


@given(flops=counts, factor=st.floats(min_value=0.0, max_value=100.0))
@settings(max_examples=60, deadline=None)
def test_scaling_is_linear(flops, factor):
    w = Workload(flops=flops, bitops=flops, bytes_moved=flops, sync_points=3.0)
    s = w.scaled(factor)
    assert s.flops == flops * factor
    assert s.bitops == flops * factor
    assert s.bytes_moved == flops * factor
    assert s.sync_points == 3.0 * factor


@given(a=counts, b=counts)
@settings(max_examples=40, deadline=None)
def test_workload_addition_adds_fields(a, b):
    total = Workload(flops=a) + Workload(flops=b, bitops=b)
    assert total.flops == a + b
    assert total.bitops == b


@given(bitops=st.floats(min_value=1e6, max_value=1e12))
@settings(max_examples=40, deadline=None)
def test_packing_hierarchy_on_bit_workloads(bitops):
    """For pure bit-level work the eGPU always beats the CPU, which
    always beats the Pi (the Section 3.3 ordering)."""
    w = Workload(bitops=bitops)
    assert EDGE_GPU.energy_j(w) < DESKTOP_CPU.energy_j(w) < RASPBERRY_PI.energy_j(w)
