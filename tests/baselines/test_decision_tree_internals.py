"""Unit tests for the CART split search internals."""

import numpy as np
import pytest

from repro.baselines.decision_tree import (
    DecisionTreeClassifier,
    _best_split_for_feature,
)


class TestBestSplit:
    def test_perfect_split_found(self):
        values = np.array([1.0, 2.0, 3.0, 10.0, 11.0, 12.0])
        y = np.array([0, 0, 0, 1, 1, 1])
        gain, threshold = _best_split_for_feature(values, y, 2)
        assert gain > 0.4  # parent gini 0.5, children pure
        assert 3.0 < threshold < 10.0

    def test_constant_feature_returns_none(self):
        values = np.ones(6)
        y = np.array([0, 1, 0, 1, 0, 1])
        assert _best_split_for_feature(values, y, 2) is None

    def test_uninformative_feature_returns_none(self):
        # alternating labels perfectly interleaved in value order: any
        # threshold yields (almost) no gain; accept None or tiny gain
        values = np.arange(8, dtype=float)
        y = np.array([0, 1, 0, 1, 0, 1, 0, 1])
        result = _best_split_for_feature(values, y, 2)
        if result is not None:
            gain, _ = result
            assert gain < 0.1

    def test_threshold_is_midpoint(self):
        values = np.array([0.0, 4.0])
        y = np.array([0, 1])
        _, threshold = _best_split_for_feature(values, y, 2)
        assert threshold == pytest.approx(2.0)

    def test_duplicated_values_split_between_groups(self):
        values = np.array([1.0, 1.0, 1.0, 5.0, 5.0])
        y = np.array([0, 0, 0, 1, 1])
        gain, threshold = _best_split_for_feature(values, y, 2)
        assert 1.0 < threshold < 5.0
        assert gain > 0.4

    def test_multiclass_gain(self):
        values = np.array([0.0, 1.0, 2.0, 10.0, 11.0, 12.0])
        y = np.array([0, 0, 1, 2, 2, 2])
        gain, threshold = _best_split_for_feature(values, y, 3)
        assert gain > 0.2


class TestTreeStructure:
    def test_min_samples_split_respected(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(20, 3))
        y = (X[:, 0] > 0).astype(int)
        tree = DecisionTreeClassifier(min_samples_split=50, seed=0)
        tree.fit(X, y, 2)
        assert tree.root_.is_leaf

    def test_node_count_grows_with_depth(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(300, 5))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        shallow = DecisionTreeClassifier(max_depth=1, seed=0)
        deep = DecisionTreeClassifier(max_depth=6, seed=0)
        shallow.fit(X, y, 2)
        deep.fit(X, y, 2)
        assert deep.n_nodes_ > shallow.n_nodes_

    def test_sqrt_feature_subsampling_varies_by_seed(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(200, 16))
        y = (X[:, 3] > 0).astype(int)
        roots = set()
        for seed in range(6):
            tree = DecisionTreeClassifier(max_features="sqrt", max_depth=1,
                                          seed=seed)
            tree.fit(X, y, 2)
            if not tree.root_.is_leaf:
                roots.add(tree.root_.feature)
        assert len(roots) >= 1  # at least finds *a* split
        # with only sqrt(16)=4 candidates per node, some seeds must miss
        # feature 3 at the root or pick an alternative
        assert roots != set()

    def test_leaf_prediction_is_majority(self):
        X = np.zeros((10, 2))
        y = np.array([0] * 7 + [1] * 3)
        tree = DecisionTreeClassifier(seed=0)
        tree.fit(X, y, 2)
        assert tree.root_.is_leaf
        assert tree.root_.prediction == 0

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict_idx(np.zeros((1, 2)))
