"""Unit tests for shared baseline utilities."""

import numpy as np
import pytest

from repro.baselines.common import (
    AdamState,
    ComputeProfile,
    LabelCodec,
    Standardizer,
    minibatches,
    one_hot,
    softmax,
    standardize,
    train_test_split,
)


class TestStandardizer:
    def test_zero_mean_unit_var(self):
        rng = np.random.default_rng(0)
        X = rng.normal(loc=5.0, scale=3.0, size=(500, 4))
        Z = Standardizer().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-9)

    def test_constant_feature_safe(self):
        X = np.ones((10, 2))
        Z = Standardizer().fit_transform(X)
        assert np.isfinite(Z).all()

    def test_use_before_fit(self):
        with pytest.raises(RuntimeError):
            Standardizer().transform(np.zeros((1, 2)))

    def test_standardize_uses_train_stats(self):
        X_train = np.array([[0.0], [2.0]])
        X_test = np.array([[4.0]])
        _, Z_test = standardize(X_train, X_test)
        assert Z_test[0, 0] == pytest.approx(3.0)


class TestHelpers:
    def test_one_hot(self):
        out = one_hot(np.array([0, 2, 1]), 3)
        assert out.tolist() == [[1, 0, 0], [0, 0, 1], [0, 1, 0]]

    def test_softmax_rows_sum_to_one(self):
        z = np.random.default_rng(1).normal(size=(5, 4)) * 50
        p = softmax(z)
        assert np.allclose(p.sum(axis=1), 1.0)
        assert (p >= 0).all()

    def test_softmax_numerically_stable(self):
        p = softmax(np.array([[1000.0, 1000.0]]))
        assert np.allclose(p, 0.5)

    def test_minibatches_cover_everything(self):
        rng = np.random.default_rng(2)
        seen = np.concatenate(list(minibatches(17, 5, rng)))
        assert sorted(seen.tolist()) == list(range(17))

    def test_train_test_split_sizes(self):
        X = np.arange(100)[:, None].astype(float)
        y = np.arange(100)
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, 0.25, seed=3)
        assert len(X_te) == 25
        assert len(X_tr) == 75
        assert set(y_tr) | set(y_te) == set(range(100))

    def test_split_fraction_validated(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((4, 1)), np.zeros(4), 1.5)


class TestLabelCodec:
    def test_roundtrip(self):
        codec = LabelCodec()
        idx = codec.fit(np.array(["b", "a", "b", "c"]))
        assert codec.n_classes == 3
        assert codec.decode(idx).tolist() == ["b", "a", "b", "c"]

    def test_use_before_fit(self):
        with pytest.raises(RuntimeError):
            LabelCodec().decode(np.array([0]))


class TestAdam:
    def test_descends_quadratic(self):
        w = np.array([5.0])
        adam = AdamState([w], lr=0.1)
        for _ in range(200):
            adam.step([w], [2.0 * w])
        assert abs(w[0]) < 0.5


class TestComputeProfile:
    def test_scaled(self):
        p = ComputeProfile(100, 10, 1000, 50)
        s = p.scaled(2.0)
        assert s.train_flops == 200
        assert s.infer_bytes == 100
