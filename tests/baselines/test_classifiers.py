"""Unit tests for the ML baseline classifiers.

One shared contract (fit/predict/score/profile) plus model-specific
behaviour for each algorithm.
"""

import numpy as np
import pytest

from repro.baselines import (
    DNNClassifier,
    KNNClassifier,
    LogisticRegression,
    MLPClassifier,
    RandomForestClassifier,
    SVMClassifier,
)


@pytest.fixture(scope="module")
def problem():
    """Linearly separable 3-class problem."""
    rng = np.random.default_rng(10)
    protos = np.array([[3.0, 0, 0, 0], [0, 3.0, 0, 0], [0, 0, 3.0, 0]])
    y = rng.integers(0, 3, size=300)
    X = protos[y] + rng.normal(scale=0.7, size=(300, 4))
    return X[:220], y[:220], X[220:], y[220:]


@pytest.fixture(scope="module")
def xor_problem():
    """Nonlinear (XOR) problem that defeats linear models."""
    rng = np.random.default_rng(11)
    X = rng.uniform(-1, 1, size=(400, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    return X[:300], y[:300], X[300:], y[300:]


def make_all(seed=0):
    return {
        "mlp": MLPClassifier(epochs=40, seed=seed),
        "svm": SVMClassifier(epochs=30, seed=seed),
        "rf": RandomForestClassifier(n_estimators=15, seed=seed),
        "knn": KNNClassifier(k=5),
        "lr": LogisticRegression(epochs=30, seed=seed),
        "dnn": DNNClassifier(
            search_space=(((32,), 1e-3), ((32, 16), 1e-3)), epochs=15, seed=seed
        ),
    }


@pytest.mark.parametrize("name", ["mlp", "svm", "rf", "knn", "lr", "dnn"])
class TestClassifierContract:
    def test_learns_separable_problem(self, name, problem):
        X_tr, y_tr, X_te, y_te = problem
        model = make_all()[name]
        model.fit(X_tr, y_tr)
        assert model.score(X_te, y_te) > 0.85

    def test_predict_shape_and_labels(self, name, problem):
        X_tr, y_tr, X_te, _ = problem
        model = make_all()[name]
        model.fit(X_tr, y_tr)
        preds = model.predict(X_te)
        assert preds.shape == (len(X_te),)
        assert set(preds) <= set(y_tr)

    def test_use_before_fit_raises(self, name, problem):
        _, _, X_te, _ = problem
        with pytest.raises(RuntimeError):
            make_all()[name].predict(X_te)

    def test_compute_profile_positive(self, name, problem):
        X_tr, y_tr, _, _ = problem
        model = make_all()[name]
        model.fit(X_tr, y_tr)
        profile = model.compute_profile(len(X_tr))
        assert profile.train_flops > 0
        assert profile.infer_flops > 0

    def test_string_labels(self, name, problem):
        X_tr, y_tr, X_te, y_te = problem
        names = np.array(["ant", "bee", "cat"])
        model = make_all()[name]
        model.fit(X_tr, names[y_tr])
        assert model.score(X_te, names[y_te]) > 0.85


class TestNonlinearity:
    def test_rbf_svm_solves_xor(self, xor_problem):
        X_tr, y_tr, X_te, y_te = xor_problem
        linear = SVMClassifier(kernel="linear", epochs=40, seed=1).fit(X_tr, y_tr)
        rbf = SVMClassifier(kernel="rbf", rff_dim=256, gamma=4.0, epochs=40,
                            seed=1).fit(X_tr, y_tr)
        assert linear.score(X_te, y_te) < 0.75
        assert rbf.score(X_te, y_te) > 0.8

    def test_mlp_solves_xor(self, xor_problem):
        X_tr, y_tr, X_te, y_te = xor_problem
        model = MLPClassifier(hidden=(32,), epochs=80, seed=2).fit(X_tr, y_tr)
        assert model.score(X_te, y_te) > 0.8

    def test_forest_solves_xor(self, xor_problem):
        X_tr, y_tr, X_te, y_te = xor_problem
        model = RandomForestClassifier(n_estimators=25, seed=3).fit(X_tr, y_tr)
        assert model.score(X_te, y_te) > 0.85


class TestRandomForestSpecifics:
    def test_single_tree_overfits_train(self, problem):
        X_tr, y_tr, _, _ = problem
        from repro.baselines.decision_tree import DecisionTreeClassifier

        tree = DecisionTreeClassifier(seed=0)
        tree.fit(X_tr, y_tr, 3)
        assert np.mean(tree.predict_idx(X_tr) == y_tr) > 0.98

    def test_max_depth_limits_tree(self, problem):
        X_tr, y_tr, _, _ = problem
        from repro.baselines.decision_tree import DecisionTreeClassifier

        tree = DecisionTreeClassifier(max_depth=2, seed=0)
        tree.fit(X_tr, y_tr, 3)
        assert tree.depth_ <= 2

    def test_bad_estimator_count(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0)

    def test_constant_features_yield_leaf(self):
        from repro.baselines.decision_tree import DecisionTreeClassifier

        X = np.ones((20, 3))
        y = np.array([0, 1] * 10)
        tree = DecisionTreeClassifier(seed=0)
        tree.fit(X, y, 2)
        assert tree.root_.is_leaf


class TestDNNSearch:
    def test_search_log_covers_space(self, problem):
        X_tr, y_tr, _, _ = problem
        model = DNNClassifier(
            search_space=(((16,), 1e-3), ((16, 8), 1e-3)), epochs=10, seed=4
        ).fit(X_tr, y_tr)
        assert len(model.search_log_) == 2
        assert model.best_config_ in [(h, lr) for h, lr, _ in model.search_log_]

    def test_profile_includes_search_multiplier(self, problem):
        X_tr, y_tr, _, _ = problem
        model = DNNClassifier(
            search_space=(((16,), 1e-3), ((16, 8), 1e-3)), epochs=10, seed=4
        ).fit(X_tr, y_tr)
        winner = model.best_.compute_profile(len(X_tr))
        full = model.compute_profile(len(X_tr))
        assert full.train_flops == pytest.approx(2 * winner.train_flops)


class TestKNNSpecifics:
    def test_k1_memorizes_train(self, problem):
        X_tr, y_tr, _, _ = problem
        model = KNNClassifier(k=1).fit(X_tr, y_tr)
        assert model.score(X_tr, y_tr) == 1.0

    def test_bad_k(self):
        with pytest.raises(ValueError):
            KNNClassifier(k=0)

    def test_k_capped_at_train_size(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([0, 1, 1])
        model = KNNClassifier(k=10).fit(X, y)
        assert model.predict(np.array([[1.5]]))[0] == 1
