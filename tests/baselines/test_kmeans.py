"""Unit tests for the K-means baseline."""

import numpy as np
import pytest

from repro.baselines.kmeans import KMeans
from repro.eval.metrics import normalized_mutual_information


@pytest.fixture
def blobs():
    rng = np.random.default_rng(8)
    centers = np.array([[0, 0], [6, 0], [0, 6]], dtype=float)
    y = rng.integers(0, 3, size=240)
    X = centers[y] + rng.normal(scale=0.5, size=(240, 2))
    return X, y


class TestKMeans:
    def test_recovers_blobs(self, blobs):
        X, y = blobs
        km = KMeans(k=3, seed=1).fit(X)
        assert normalized_mutual_information(y, km.labels_) > 0.9

    def test_inertia_decreases_with_k(self, blobs):
        X, _ = blobs
        i2 = KMeans(k=2, seed=1).fit(X).inertia_
        i4 = KMeans(k=4, seed=1).fit(X).inertia_
        assert i4 < i2

    def test_predict_consistent_with_labels(self, blobs):
        X, _ = blobs
        km = KMeans(k=3, seed=2).fit(X)
        assert np.array_equal(km.predict(X), km.labels_)

    def test_fit_predict(self, blobs):
        X, _ = blobs
        km = KMeans(k=3, seed=2)
        assert np.array_equal(km.fit_predict(X), km.labels_)

    def test_centroid_shape(self, blobs):
        X, _ = blobs
        km = KMeans(k=3, seed=1).fit(X)
        assert km.centroids_.shape == (3, 2)

    def test_deterministic_per_seed(self, blobs):
        X, _ = blobs
        a = KMeans(k=3, seed=5).fit(X)
        b = KMeans(k=3, seed=5).fit(X)
        assert np.array_equal(a.labels_, b.labels_)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            KMeans(k=5).fit(np.zeros((3, 2)))

    def test_bad_k_rejected(self):
        with pytest.raises(ValueError):
            KMeans(k=0)

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            KMeans(k=2).predict(np.zeros((1, 2)))

    def test_compute_profile(self, blobs):
        X, _ = blobs
        km = KMeans(k=3, seed=1).fit(X)
        profile = km.compute_profile(len(X), X.shape[1])
        assert profile.train_flops > 0
        assert km.iterations_ >= 1
