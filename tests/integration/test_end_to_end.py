"""Integration tests spanning the full stack.

These cover the paths a user of the library actually takes: train in
software, export, run on the simulated ASIC; train on-device; cluster
end to end; and the smallest version of each experiment module.
"""

import numpy as np
import pytest

from repro.core import model_io
from repro.core.classifier import HDClassifier
from repro.core.clustering import HDCluster
from repro.core.encoders import GenericEncoder, make_encoder
from repro.datasets import load_dataset, make_cluster_dataset
from repro.eval.metrics import normalized_mutual_information
from repro.hardware.accelerator import GenericAccelerator

DIM = 256


class TestSoftwareHardwareEquivalence:
    """The simulator is functionally faithful to the library."""

    @pytest.mark.parametrize("use_ids", [True, False])
    def test_encoding_bit_exact(self, use_ids):
        ds = load_dataset("CARDIO", "tiny")
        enc = GenericEncoder(dim=DIM, seed=7, use_ids=use_ids)
        clf = HDClassifier(enc, epochs=1, seed=7).fit(ds.X_train, ds.y_train)
        acc = GenericAccelerator()
        acc.load_image(model_io.export_model(clf))
        for x in ds.X_test[:10]:
            assert np.array_equal(acc.encoder.encode(x), enc.encode(x))

    def test_offline_train_deploy_predict(self):
        ds = load_dataset("PAGE", "tiny")
        enc = GenericEncoder(dim=DIM, seed=7)
        clf = HDClassifier(enc, epochs=5, seed=7).fit(ds.X_train, ds.y_train)
        acc = GenericAccelerator()
        acc.load_image(model_io.export_model(clf))
        report = acc.infer(ds.X_test, exact_divider=True)
        assert np.array_equal(report.predictions, clf.predict(ds.X_test))

    def test_deploy_via_file(self, tmp_path):
        ds = load_dataset("PAGE", "tiny")
        enc = GenericEncoder(dim=DIM, seed=7)
        clf = HDClassifier(enc, epochs=2, seed=7).fit(ds.X_train, ds.y_train)
        path = tmp_path / "page.npz"
        model_io.save_image(model_io.export_model(clf), path)
        acc = GenericAccelerator()
        acc.load_image(model_io.load_image(path))
        report = acc.infer(ds.X_test[:20], exact_divider=True)
        assert np.array_equal(report.predictions, clf.predict(ds.X_test[:20]))

    def test_low_power_configuration_degrades_gracefully(self):
        ds = load_dataset("MNIST", "tiny")
        enc = GenericEncoder(dim=1024, seed=7)
        clf = HDClassifier(enc, epochs=4, seed=7).fit(ds.X_train, ds.y_train)
        acc = GenericAccelerator()
        acc.load_image(model_io.export_model(clf), bitwidth=4)
        full_energy = acc.infer(ds.X_test[:16]).energy_per_input_j
        baseline_acc = np.mean(
            acc.infer(ds.X_test, exact_divider=True).predictions == ds.y_test
        )
        acc.reduce_dimensions(256)
        acc.set_voltage_overscaling(0.02)
        lp = acc.infer(ds.X_test, exact_divider=True)
        lp_acc = np.mean(lp.predictions == ds.y_test)
        assert lp.energy_per_input_j < full_energy / 2
        assert lp_acc > baseline_acc - 0.25


class TestEndToEndLearning:
    def test_generic_beats_weak_encoders_on_their_failure_modes(self):
        """The Table 1 mechanisms, in miniature."""
        lang = load_dataset("LANG", "tiny")
        rp = HDClassifier(make_encoder("rp", dim=512, seed=1), epochs=4, seed=1)
        rp.fit(lang.X_train, lang.y_train)
        gen = HDClassifier(
            make_encoder("generic", dim=512, seed=1, use_ids=False),
            epochs=4, seed=1,
        )
        gen.fit(lang.X_train, lang.y_train)
        assert gen.score(lang.X_test, lang.y_test) > rp.score(
            lang.X_test, lang.y_test
        ) + 0.3

    def test_on_device_training_pipeline(self):
        ds = load_dataset("PAGE", "tiny")
        enc = GenericEncoder(dim=DIM, seed=9)
        enc.fit(ds.X_train)
        acc = GenericAccelerator()
        from repro.hardware.spec import AppSpec, Mode

        acc.configure(
            AppSpec(dim=DIM, n_features=ds.n_features,
                    n_classes=ds.n_classes, mode=Mode.TRAIN)
        )
        acc.load_tables(enc.levels.vectors, enc.id_generator.seed,
                        enc.quantizer.lo, enc.quantizer.hi)
        train = acc.train(ds.X_train, ds.y_train, epochs=4)
        infer = acc.infer(ds.X_test, exact_divider=True)
        assert np.mean(infer.predictions == ds.y_test) > 0.7
        assert train.energy_j > infer.energy_j  # training is the bigger job

    def test_software_and_hardware_clustering_agree(self):
        X, y, k = make_cluster_dataset("Hepta", seed=3, scale=0.3)
        sw = HDCluster(GenericEncoder(dim=512, seed=2), k=k, epochs=8, seed=2)
        sw.fit(X)
        sw_nmi = normalized_mutual_information(y, sw.labels_)

        from repro.hardware.spec import AppSpec, Mode

        acc = GenericAccelerator()
        acc.configure(AppSpec(dim=512, n_features=X.shape[1],
                              window=3, n_classes=max(2, k), mode=Mode.CLUSTER))
        enc = GenericEncoder(dim=512, seed=2).fit(X)
        acc.load_tables(enc.levels.vectors, enc.id_generator.seed,
                        enc.quantizer.lo, enc.quantizer.hi)
        hw = acc.cluster(X, k=k, epochs=8)
        hw_nmi = normalized_mutual_information(y, hw.predictions)
        assert sw_nmi > 0.7
        assert hw_nmi > 0.7


class TestExperimentModulesSmoke:
    """Each experiment module runs end to end at the smallest scale."""

    def test_table1_subset(self):
        from repro.eval.experiments import table1

        result = table1.run(
            profile="tiny", dim=256, epochs=2, datasets=["PAGE"],
            include_ml=False,
        )
        assert "PAGE" in result.data["table"]
        assert len(result.rows) == 3  # dataset + Mean + STDV

    def test_table2_subset(self):
        from repro.eval.experiments import table2

        result = table2.run(dim=256, epochs=4, scale=0.2, datasets=["Hepta"])
        assert result.data["table"]["Hepta"]["hdc"] > 0.5

    def test_fig5_subset(self):
        from repro.eval.experiments import fig5

        result = fig5.run(profile="tiny", dim=512, epochs=2, datasets=["EEG"])
        assert "EEG" in result.data["curves"]

    def test_fig6_subset(self):
        from repro.eval.experiments import fig6

        result = fig6.run(
            profile="tiny", dim=256, epochs=2, datasets=["FACE"],
            bitwidths=(8, 1), error_rates=(0.0, 0.05), trials=1,
        )
        assert result.data["curves"]["FACE"][8][0.0] > 0.5

    def test_fig7_full(self):
        from repro.eval.experiments import fig7

        result = fig7.run(profile="tiny")
        result.assert_claims()

    def test_fig10_subset(self):
        from repro.eval.experiments import fig10

        result = fig10.run(dim=256, scale=0.15, datasets=["Hepta"])
        assert result.data["per_dataset"]["Hepta"]["generic_j"] > 0

    def test_ablation_power_gating(self):
        from repro.eval.experiments import ablations

        result = ablations.run_power_gating(profile="tiny")
        result.assert_claims()
