"""The shipped examples must at least parse, and the quick ones must run."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(pathlib.Path("examples").glob("*.py"))


class TestExamplesCompile:
    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_compiles(self, path):
        source = path.read_text()
        compile(source, str(path), "exec")

    def test_at_least_five_examples(self):
        assert len(EXAMPLES) >= 5

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_has_main_guard_and_docstring(self, path):
        source = path.read_text()
        assert '"""' in source.split("\n", 1)[0] + source.split("\n", 2)[1]
        assert 'if __name__ == "__main__":' in source


class TestQuickstartRuns:
    def test_quickstart_end_to_end(self):
        result = subprocess.run(
            [sys.executable, "examples/quickstart.py"],
            capture_output=True,
            text=True,
            timeout=240,
        )
        assert result.returncode == 0, result.stderr
        assert "hardware accuracy" in result.stdout
        assert "energy/input" in result.stdout
