"""Uplink codecs: round-trip exactness, error bounds, byte accounting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import (
    FullIntCodec,
    SignCodec,
    TopKCodec,
    corrupt_update,
    make_codec,
)
from repro.hardware.faultspec import FaultSpec

DELTAS = st.builds(
    lambda seed, rows, cols, scale: np.random.default_rng(seed).integers(
        -scale, scale + 1, size=(rows, cols)
    ).astype(np.float64),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    rows=st.integers(min_value=1, max_value=6),
    cols=st.integers(min_value=1, max_value=64),
    scale=st.integers(min_value=0, max_value=1000),
)


@given(delta=DELTAS)
@settings(max_examples=60, deadline=None)
def test_full_int_round_trips_exactly(delta):
    codec = FullIntCodec()
    update = codec.encode(delta)
    np.testing.assert_array_equal(codec.decode(update), delta)
    assert update.nbytes == 4 * delta.size


@given(delta=DELTAS)
@settings(max_examples=60, deadline=None)
def test_sign_codec_error_is_bounded_per_row(delta):
    codec = SignCodec()
    decoded = codec.decode(codec.encode(delta))
    err = np.abs(decoded - delta)
    bound = SignCodec.error_bound(delta)
    assert np.all(err.max(axis=1) <= bound + 1e-9)
    # zero entries decode exactly (sign 0 transmits the zero)
    np.testing.assert_array_equal(decoded[delta == 0], 0.0)
    # sign is always preserved where the delta is nonzero
    assert np.all(np.sign(decoded[delta != 0]) == np.sign(delta[delta != 0]))


@given(delta=DELTAS, k=st.integers(min_value=1, max_value=80))
@settings(max_examples=60, deadline=None)
def test_topk_keeps_the_largest_entries_exactly(delta, k):
    codec = TopKCodec(k)
    decoded = codec.decode(codec.encode(delta))
    if k >= delta.shape[1]:
        np.testing.assert_array_equal(decoded, delta)
        return
    for row_in, row_out in zip(delta, decoded):
        kept = row_out != 0
        # kept entries are transmitted exactly
        np.testing.assert_array_equal(row_out[kept], row_in[kept])
        # nothing dropped is larger than the smallest kept magnitude
        if kept.any():
            dropped = np.abs(row_in[~kept])
            assert (dropped.max(initial=0.0)
                    <= np.abs(row_in[kept]).min() + 1e-9)


def test_byte_budgets_are_ordered():
    delta = np.random.default_rng(0).integers(
        -50, 51, size=(8, 512)).astype(np.float64)
    full = FullIntCodec().encode(delta).nbytes
    sign = SignCodec().encode(delta).nbytes
    topk = TopKCodec(32).encode(delta).nbytes
    assert sign < topk < full


def test_make_codec_specs():
    assert make_codec("full").name == "full"
    assert make_codec("sign").name == "sign"
    assert make_codec("topk:16").k == 16
    with pytest.raises(ValueError):
        make_codec("topk")
    with pytest.raises(ValueError):
        make_codec("nope")


def test_corrupt_update_flips_values_without_mutating_input():
    delta = np.random.default_rng(3).integers(
        -40, 41, size=(4, 256)).astype(np.float64)
    codec = FullIntCodec()
    clean = codec.encode(delta)
    before = clean.payload["values"].copy()
    spec = FaultSpec(error_rate=0.2, bits=8)
    noisy = corrupt_update(clean, spec, np.random.default_rng(0))
    np.testing.assert_array_equal(clean.payload["values"], before)
    assert not np.array_equal(noisy.payload["values"], before)
    assert noisy.nbytes == clean.nbytes


def test_corrupt_update_flips_signs():
    delta = np.ones((2, 512))
    update = SignCodec().encode(delta)
    spec = FaultSpec(error_rate=0.5, bits=1)
    noisy = corrupt_update(update, spec, np.random.default_rng(1))
    assert (noisy.payload["signs"] == -1).any()
    # inactive spec and None are no-ops returning the same update
    assert corrupt_update(update, None, np.random.default_rng(0)) is update
    calm = corrupt_update(update, FaultSpec(error_rate=0.0),
                          np.random.default_rng(0))
    assert calm is update
