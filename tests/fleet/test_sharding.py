"""Dirichlet non-IID sharding: partition laws and skew behavior."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import dirichlet_shards, shard_summary


@given(
    n=st.integers(min_value=1, max_value=400),
    n_devices=st.integers(min_value=1, max_value=32),
    n_classes=st.integers(min_value=1, max_value=8),
    alpha=st.floats(min_value=0.05, max_value=50.0),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=60, deadline=None)
def test_partition_is_disjoint_and_complete(n, n_devices, n_classes,
                                            alpha, seed):
    y = np.random.default_rng(seed).integers(0, n_classes, size=n)
    shards = dirichlet_shards(y, n_devices, alpha=alpha, seed=seed)
    assert len(shards) == n_devices
    merged = np.concatenate(shards) if shards else np.empty(0)
    # every sample index appears exactly once across the fleet
    assert sorted(merged.tolist()) == list(range(n))


def test_deterministic_for_a_seed():
    y = np.random.default_rng(0).integers(0, 4, size=300)
    a = dirichlet_shards(y, 16, alpha=0.3, seed=9)
    b = dirichlet_shards(y, 16, alpha=0.3, seed=9)
    assert all(np.array_equal(x, z) for x, z in zip(a, b))
    c = dirichlet_shards(y, 16, alpha=0.3, seed=10)
    assert any(not np.array_equal(x, z) for x, z in zip(a, c))


def test_small_alpha_is_more_skewed_than_large():
    y = np.random.default_rng(1).integers(0, 6, size=3000)
    skew_low = shard_summary(dirichlet_shards(y, 20, alpha=0.05, seed=2), y)
    skew_high = shard_summary(dirichlet_shards(y, 20, alpha=100.0, seed=2), y)
    assert skew_low["label_skew"] > skew_high["label_skew"]
    # near-IID Dirichlet should sit close to the global histogram
    assert skew_high["label_skew"] < 0.15


def test_summary_counts():
    y = np.asarray([0, 0, 1, 1, 2, 2])
    shards = dirichlet_shards(y, 3, alpha=1.0, seed=0)
    summary = shard_summary(shards, y)
    assert summary["samples"] == 6
    assert summary["devices"] == 3
    assert summary["min_shard"] + summary["max_shard"] <= 6


def test_rejects_bad_args():
    y = np.zeros(4, dtype=int)
    with pytest.raises(ValueError):
        dirichlet_shards(y, 0)
    with pytest.raises(ValueError):
        dirichlet_shards(y, 2, alpha=0.0)
