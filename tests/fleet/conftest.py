"""Fixtures for the federated fleet tests: a small shared workload."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.encoders import GenericEncoder

FLEET_DIM = 256


@pytest.fixture(scope="session")
def fleet_problem():
    """A learnable 4-class problem big enough to shard 12 ways."""
    gen = np.random.default_rng(42)
    n_classes, d = 4, 20
    protos = gen.normal(scale=1.5, size=(n_classes, d))
    y = gen.integers(0, n_classes, size=480)
    X = protos[y] + gen.normal(scale=0.8, size=(480, d))
    y_eval = gen.integers(0, n_classes, size=120)
    X_eval = protos[y_eval] + gen.normal(scale=0.8, size=(120, d))
    return X, y, X_eval, y_eval


@pytest.fixture(scope="session")
def fleet_encoder(fleet_problem):
    X, _, _, _ = fleet_problem
    enc = GenericEncoder(dim=FLEET_DIM, num_levels=16, seed=5)
    enc.fit(X)
    return enc
