"""FleetAggregator: merge exactness, lossy bounds, round bookkeeping."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.classifier import HDClassifier
from repro.core.encoders import GenericEncoder
from repro.fleet import (
    EdgeDevice,
    FleetAggregator,
    FleetConfig,
    SignCodec,
    dirichlet_shards,
)
from repro.hardware.faultspec import FaultSpec
from repro.serve import InferenceServer, ServeConfig


def _build_fleet(X, y, encoder, n_devices, alpha=0.5, seed=0, **device_kw):
    classes = np.unique(y)
    y_idx = np.searchsorted(classes, y)
    shards = dirichlet_shards(y, n_devices, alpha=alpha, seed=seed)
    devices = [
        EdgeDevice(i, X[s], y_idx[s], encoder, seed=seed, **device_kw)
        for i, s in enumerate(shards)
    ]
    return devices, classes


def _aggregator(devices, classes, config, **kw):
    # publishing/merging needs no started workers: the registry path is
    # process-local, so an unstarted server keeps these tests fast
    server = InferenceServer(ServeConfig(n_workers=1))
    return FleetAggregator(server, devices, classes, config=config, **kw)


# -- the ISSUE's bit-identity property ---------------------------------------

@given(
    n=st.integers(min_value=8, max_value=120),
    n_devices=st.integers(min_value=1, max_value=8),
    alpha=st.floats(min_value=0.1, max_value=10.0),
    seed=st.integers(min_value=0, max_value=2**16 - 1),
)
@settings(max_examples=25, deadline=None)
def test_lossless_bootstrap_merge_is_bit_identical_to_centralized(
        n, n_devices, alpha, seed):
    """Federated bundle over K disjoint shards == centralized fit(epochs=0)."""
    rng = np.random.default_rng(seed)
    n_classes = 3
    protos = rng.normal(scale=1.5, size=(n_classes, 12))
    y = rng.integers(0, n_classes, size=n)
    X = protos[y] + rng.normal(scale=0.7, size=(n, 12))

    central = HDClassifier(
        GenericEncoder(dim=128, num_levels=8, seed=1), epochs=0, seed=0,
    ).fit(X, y)

    enc = GenericEncoder(dim=128, num_levels=8, seed=1)
    enc.fit(X)
    devices, classes = _build_fleet(X, y, enc, n_devices, alpha=alpha,
                                    seed=seed)
    agg = _aggregator(devices, classes, FleetConfig(
        codec="full", churn=0.0, deadline_s=None, seed=seed,
    ))
    agg.run_round()

    assert np.array_equal(agg.model, central.model_)
    # the deployed model is the same array contents, via the registry
    deployed = agg.surface.registry.get(agg.cfg.model_name).model.model_
    assert np.array_equal(deployed, central.model_)


@given(
    n=st.integers(min_value=8, max_value=100),
    n_devices=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=2**16 - 1),
)
@settings(max_examples=15, deadline=None)
def test_sign_compressed_bootstrap_error_is_bounded(n, n_devices, seed):
    """Lossy mode: per-row error <= sum of per-device sign-codec bounds."""
    rng = np.random.default_rng(seed)
    n_classes = 3
    protos = rng.normal(scale=1.5, size=(n_classes, 12))
    y = rng.integers(0, n_classes, size=n)
    X = protos[y] + rng.normal(scale=0.7, size=(n, 12))

    central = HDClassifier(
        GenericEncoder(dim=128, num_levels=8, seed=1), epochs=0, seed=0,
    ).fit(X, y)
    enc = GenericEncoder(dim=128, num_levels=8, seed=1)
    enc.fit(X)
    devices, classes = _build_fleet(X, y, enc, n_devices, seed=seed)

    agg = _aggregator(devices, classes, FleetConfig(
        codec="sign", churn=0.0, deadline_s=None, seed=seed,
    ))
    agg.run_round()

    bound = np.zeros(len(classes))
    for dev in devices:
        bound += SignCodec.error_bound(dev.local_bundle(len(classes)))
    err = np.abs(agg.model - central.model_).max(axis=1)
    assert np.all(err <= bound + 1e-6)


# -- round protocol bookkeeping ----------------------------------------------

class TestRounds:
    def test_refinement_improves_or_holds_on_easy_data(
            self, fleet_problem, fleet_encoder):
        X, y, X_eval, y_eval = fleet_problem
        devices, classes = _build_fleet(X, y, fleet_encoder, 8, seed=1)
        server = InferenceServer(ServeConfig(n_workers=1))
        with server:
            agg = FleetAggregator(server, devices, classes, X_eval, y_eval,
                                  config=FleetConfig(codec="full", seed=1))
            reports = agg.run(4)
        accs = [r.accuracy for r in reports]
        assert all(a is not None for a in accs)
        assert accs[-1] >= accs[0] - 0.02
        assert accs[-1] >= 0.8  # learnable problem actually learned

    def test_versions_and_metrics_advance(self, fleet_problem, fleet_encoder):
        X, y, _, _ = fleet_problem
        devices, classes = _build_fleet(X, y, fleet_encoder, 4, seed=2)
        agg = _aggregator(devices, classes, FleetConfig(codec="sign", seed=2))
        reports = agg.run(3)
        assert [r.model_version for r in reports] == [1, 2, 3]
        assert reports[0].bootstrap and not reports[1].bootstrap
        hub = agg.surface.metrics
        assert hub.counter("fleet_rounds").value == 3
        assert hub.counter("fleet_bytes_merged").value == sum(
            r.bytes_merged for r in reports)
        assert len(agg.surface.recorder.events("fleet_round")) == 3

    def test_impossible_deadline_drops_everyone(self, fleet_problem,
                                                fleet_encoder):
        X, y, _, _ = fleet_problem
        devices, classes = _build_fleet(X, y, fleet_encoder, 4, seed=3)
        agg = _aggregator(devices, classes, FleetConfig(
            codec="full", deadline_s=1e-12, seed=3,
        ))
        report = agg.run_round()
        assert report.stragglers == report.sampled
        assert report.merged == 0
        assert not np.any(agg.model)          # nothing merged
        assert not agg.published              # nothing to serve yet
        assert report.bytes_uploaded > 0      # wasted uplink is counted
        assert report.bytes_merged == 0

    def test_full_churn_round_is_survivable(self, fleet_problem,
                                            fleet_encoder):
        X, y, _, _ = fleet_problem
        devices, classes = _build_fleet(X, y, fleet_encoder, 4, seed=4)
        agg = _aggregator(devices, classes, FleetConfig(codec="full", seed=4))
        agg.run_round()
        model_before = agg.model.copy()
        agg.cfg.churn = 0.999999  # everyone offline next round
        report = agg.run_round()
        assert report.sampled <= 1
        assert np.array_equal(agg.model, model_before) or report.merged
        agg.cfg.churn = 0.0
        assert agg.run_round().merged == len(devices)

    def test_participation_sampling(self, fleet_problem, fleet_encoder):
        X, y, _, _ = fleet_problem
        devices, classes = _build_fleet(X, y, fleet_encoder, 10, seed=5)
        agg = _aggregator(devices, classes, FleetConfig(
            codec="full", participation=0.3, seed=5,
        ))
        report = agg.run_round()
        assert report.sampled == 3

    def test_mean_merge_keeps_model_integral(self, fleet_problem,
                                             fleet_encoder):
        X, y, _, _ = fleet_problem
        devices, classes = _build_fleet(X, y, fleet_encoder, 5, seed=6)
        agg = _aggregator(devices, classes, FleetConfig(
            codec="full", merge="mean", seed=6,
        ))
        agg.run(2)
        np.testing.assert_array_equal(agg.model, np.rint(agg.model))

    def test_uplink_faults_perturb_the_merge(self, fleet_problem,
                                             fleet_encoder):
        X, y, _, _ = fleet_problem
        clean_devices, classes = _build_fleet(X, y, fleet_encoder, 6, seed=7)
        noisy_devices, _ = _build_fleet(
            X, y, fleet_encoder, 6, seed=7,
            faults=FaultSpec(error_rate=1e-3, bits=16),
        )
        clean = _aggregator(clean_devices, classes,
                            FleetConfig(codec="full", seed=7))
        noisy = _aggregator(noisy_devices, classes,
                            FleetConfig(codec="full", seed=7))
        clean.run_round()
        noisy.run_round()
        # same sampling stream, corrupted uplink: the merge must differ
        assert not np.array_equal(noisy.model, clean.model)
        # still integer-valued and deployable
        np.testing.assert_array_equal(noisy.model, np.rint(noisy.model))
        assert noisy.published

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FleetConfig(participation=0.0)
        with pytest.raises(ValueError):
            FleetConfig(churn=1.0)
        with pytest.raises(ValueError):
            FleetConfig(merge="median")

    def test_mismatched_dims_rejected(self, fleet_problem, fleet_encoder):
        X, y, _, _ = fleet_problem
        devices, classes = _build_fleet(X, y, fleet_encoder, 2, seed=8)
        other = GenericEncoder(dim=128, num_levels=8, seed=9)
        other.fit(X)
        odd = EdgeDevice(99, X[:4], np.searchsorted(classes, y[:4]), other)
        with pytest.raises(ValueError):
            _aggregator(devices + [odd], classes, FleetConfig())


class TestDevice:
    def test_unfitted_encoder_rejected(self, fleet_problem):
        X, y, _, _ = fleet_problem
        enc = GenericEncoder(dim=128, num_levels=8, seed=0)
        with pytest.raises(ValueError):
            EdgeDevice(0, X[:4], y[:4], enc)

    def test_costs_scale_with_speed_and_uplink(self, fleet_problem,
                                               fleet_encoder):
        X, y, _, _ = fleet_problem
        classes = np.unique(y)
        y_idx = np.searchsorted(classes, y)
        from repro.fleet import FullIntCodec
        codec = FullIntCodec()
        model = np.zeros((len(classes), fleet_encoder.dim))
        fast = EdgeDevice(0, X[:40], y_idx[:40], fleet_encoder, speed=4.0,
                          uplink_bps=8e6)
        slow = EdgeDevice(1, X[:40], y_idx[:40], fleet_encoder, speed=1.0,
                          uplink_bps=1e6)
        up_f = fast.run_round(model, classes, codec, epochs=1)
        up_s = slow.run_round(model, classes, codec, epochs=1)
        assert up_f.train_s < up_s.train_s
        assert up_f.upload_s < up_s.upload_s
        assert up_f.energy_j == pytest.approx(up_s.energy_j)
