"""Unit tests for id tables and the seed-permutation generator."""

import numpy as np
import pytest

from repro.core.ids import IdTable, SeedIdGenerator, identity_ids


@pytest.fixture
def rng():
    return np.random.default_rng(9)


class TestIdTable:
    def test_shape_and_values(self, rng):
        table = IdTable(rng, count=10, dim=128)
        assert table.all().shape == (10, 128)
        assert set(np.unique(table.all())) <= {-1, 1}

    def test_indexing(self, rng):
        table = IdTable(rng, count=5, dim=32)
        assert np.array_equal(table[2], table.all()[2])
        assert len(table) == 5

    def test_ids_mutually_quasi_orthogonal(self, rng):
        table = IdTable(rng, count=20, dim=4096)
        ids = table.all().astype(np.int32)
        gram = ids @ ids.T / 4096
        np.fill_diagonal(gram, 0)
        assert np.abs(gram).max() < 0.1

    def test_storage_bits(self, rng):
        table = IdTable(rng, count=1024, dim=4096)
        assert table.storage_bits() == 1024 * 4096  # the naive 512 KB

    def test_rejects_zero_count(self, rng):
        with pytest.raises(ValueError):
            IdTable(rng, count=0, dim=16)


class TestSeedIdGenerator:
    def test_id_k_is_rolled_seed(self, rng):
        gen = SeedIdGenerator(rng, dim=64)
        assert np.array_equal(gen[3], np.roll(gen.seed, 3))

    def test_table_matches_indexing(self, rng):
        gen = SeedIdGenerator(rng, dim=64)
        table = gen.table(10)
        for k in range(10):
            assert np.array_equal(table[k], gen[k])

    def test_permutation_preserves_orthogonality(self, rng):
        gen = SeedIdGenerator(rng, dim=4096)
        assert gen.orthogonality(64) < 0.1

    def test_compression_is_1024x_at_paper_geometry(self, rng):
        gen = SeedIdGenerator(rng, dim=4096)
        naive = 1024 * 4096  # 1K features x 4K dims
        assert naive // gen.storage_bits() == 1024

    def test_negative_index_rejected(self, rng):
        gen = SeedIdGenerator(rng, dim=16)
        with pytest.raises(IndexError):
            gen[-1]

    def test_table_rejects_zero(self, rng):
        with pytest.raises(ValueError):
            SeedIdGenerator(rng, dim=16).table(0)

    def test_shift_wraps_past_dim(self, rng):
        gen = SeedIdGenerator(rng, dim=8)
        assert np.array_equal(gen[8], gen.seed)
        assert np.array_equal(gen.table(10)[9], gen[9])


class TestIdentityIds:
    def test_all_ones(self):
        ids = identity_ids(4, 16)
        assert ids.shape == (4, 16)
        assert (ids == 1).all()

    def test_binding_with_identity_is_noop(self, rng):
        from repro.core.hypervector import bind, random_bipolar

        v = random_bipolar(rng, 16)
        assert np.array_equal(bind(v, identity_ids(1, 16)[0]), v)
