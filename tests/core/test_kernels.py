"""Tests for the bit-packed encoding kernels (repro.core.kernels).

The contract under test: the packed engine is *bit-identical* to the
reference bipolar engine for every GENERIC/ngram configuration, chunk
size, and thread count -- it is an implementation swap, never a model
change.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.encoders import GenericEncoder, NgramEncoder
from repro.core.encoders.base import _CHUNK_BUDGET
from repro.core.kernels import (
    GenericPackedKernel,
    bit_slice_counts,
    pack_bits,
    popcount,
    popcount_words,
    _popcount_words_lut,
)

SEEDS = st.integers(min_value=0, max_value=2**31 - 1)


def _data(seed: int, n: int, d: int) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=(n, d))


def _pair(dim, window, use_ids, seed=3, num_levels=8):
    """Reference and packed encoders built from the same seed."""
    mk = lambda engine: GenericEncoder(
        dim=dim, num_levels=num_levels, seed=seed, window=window,
        use_ids=use_ids, engine=engine,
    )
    return mk("reference"), mk("packed")


class TestEngineEquivalence:
    @pytest.mark.parametrize("dim", [64, 100, 256])  # incl. dim % 64 != 0
    @pytest.mark.parametrize("window", [1, 2, 3])
    @pytest.mark.parametrize("use_ids", [True, False])
    def test_packed_matches_reference(self, dim, window, use_ids):
        X = _data(11, 16, 10)
        ref, pk = _pair(dim, window, use_ids)
        ref.fit(X)
        pk.fit(X)
        assert np.array_equal(ref.encode_batch(X), pk.encode_batch(X))

    def test_ngram_mode(self):
        X = _data(5, 12, 9)
        ref = NgramEncoder(dim=100, num_levels=8, seed=2, engine="reference").fit(X)
        pk = NgramEncoder(dim=100, num_levels=8, seed=2, engine="packed").fit(X)
        assert np.array_equal(ref.encode_batch(X), pk.encode_batch(X))

    def test_auto_resolves_to_packed(self):
        X = _data(0, 8, 8)
        enc = GenericEncoder(dim=64, num_levels=8, seed=1).fit(X)
        assert enc.engine == "auto"
        assert enc._kernel is not None  # packed tables built at fit

    def test_reference_engine_builds_no_kernel(self):
        X = _data(0, 8, 8)
        enc = GenericEncoder(dim=64, num_levels=8, seed=1,
                             engine="reference").fit(X)
        assert enc._kernel is None

    def test_engine_switch_after_fit(self):
        X = _data(4, 10, 8)
        enc = GenericEncoder(dim=96, num_levels=8, seed=1,
                             engine="reference").fit(X)
        ref_out = enc.encode_batch(X)
        enc.engine = "packed"
        assert np.array_equal(enc.encode_batch(X), ref_out)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown encode engine"):
            GenericEncoder(dim=64, engine="simd")

    def test_kernel_tracks_level_table_swap(self):
        """Fault injection rebinds levels.vectors; the kernel must follow."""
        X = _data(9, 10, 8)
        enc = GenericEncoder(dim=64, num_levels=8, seed=1,
                             engine="packed").fit(X)
        before = enc.encode_batch(X)
        enc.levels.vectors = -enc.levels.vectors  # global sign flip
        after = enc.encode_batch(X)
        assert not np.array_equal(before, after)
        ref = GenericEncoder(dim=64, num_levels=8, seed=1,
                             engine="reference").fit(X)
        ref.levels.vectors = -ref.levels.vectors
        assert np.array_equal(after, ref.encode_batch(X))


@given(
    seed=SEEDS,
    dim=st.integers(min_value=65, max_value=160),
    d=st.integers(min_value=4, max_value=20),
    window=st.integers(min_value=1, max_value=4),
    use_ids=st.booleans(),
)
@settings(max_examples=25, deadline=None)
def test_property_packed_equals_reference(seed, dim, d, window, use_ids):
    window = min(window, d)
    X = _data(seed, 6, d)
    ref, pk = _pair(dim, window, use_ids, seed=seed % 100)
    ref.fit(X)
    pk.fit(X)
    assert np.array_equal(ref.encode_batch(X), pk.encode_batch(X))


class TestParallelPipeline:
    def test_thread_count_never_changes_encodings(self):
        X = _data(21, 33, 14)
        enc = GenericEncoder(dim=128, num_levels=8, seed=2).fit(X)
        serial = enc.encode_batch(X, chunk=5, n_jobs=1)
        for jobs in (2, 4, -1):
            assert np.array_equal(serial, enc.encode_batch(X, chunk=5, n_jobs=jobs))

    def test_parallel_across_engines(self):
        X = _data(22, 17, 11)
        ref, pk = _pair(100, 3, True)
        ref.fit(X)
        pk.fit(X)
        assert np.array_equal(
            ref.encode_batch(X, chunk=3, n_jobs=3),
            pk.encode_batch(X, chunk=4, n_jobs=2),
        )

    def test_classifier_encode_jobs(self, toy_problem):
        X_train, y_train, X_test, _ = toy_problem
        from repro.core.classifier import HDClassifier

        mk = lambda jobs: HDClassifier(
            GenericEncoder(dim=128, num_levels=8, seed=5),
            epochs=2, seed=5, encode_jobs=jobs,
        ).fit(X_train, y_train)
        assert np.array_equal(mk(None).predict(X_test), mk(2).predict(X_test))


class TestChunkCost:
    def test_generic_cost_exceeds_base_estimate(self):
        """Windowed encoders must report their n_windows-scale buffers."""
        X = _data(1, 6, 40)
        enc = GenericEncoder(dim=256, num_levels=8, seed=1,
                             engine="reference").fit(X)
        base_estimate = enc.n_features * enc.dim
        assert enc._chunk_cost() > base_estimate

    def test_reference_cost_scales_with_window(self):
        X = _data(1, 6, 40)
        small = GenericEncoder(dim=256, num_levels=8, window=2,
                               engine="reference").fit(X)
        large = GenericEncoder(dim=256, num_levels=8, window=8,
                               engine="reference").fit(X)
        assert large._chunk_cost() > small._chunk_cost()

    def test_packed_cost_far_below_reference(self):
        X = _data(1, 6, 40)
        ref, pk = _pair(256, 3, True, seed=1)
        ref.fit(X)
        pk.fit(X)
        assert pk._chunk_cost() < ref._chunk_cost() // 4

    def test_auto_chunk_honors_budget(self):
        X = _data(1, 6, 40)
        enc = GenericEncoder(dim=256, num_levels=8, seed=1,
                             engine="reference").fit(X)
        chunk = enc._auto_chunk(10**9)
        assert 1 <= chunk * enc._chunk_cost() <= 2 * _CHUNK_BUDGET


class TestBitPrimitives:
    def test_popcount_words_matches_lut(self):
        rng = np.random.default_rng(3)
        words = rng.integers(0, 2**64, size=(5, 7), dtype=np.uint64)
        assert np.array_equal(popcount_words(words), _popcount_words_lut(words))

    def test_popcount_row_sum(self):
        words = np.array([[0, 0xFF, 0xFFFFFFFFFFFFFFFF]], dtype=np.uint64)
        assert popcount(words)[0] == 8 + 64
        # LUT path agrees
        assert _popcount_words_lut(words).sum() == 8 + 64

    def test_popcount_noncontiguous_input(self):
        rng = np.random.default_rng(4)
        big = rng.integers(0, 2**64, size=(6, 10), dtype=np.uint64)
        view = big[::2, 1::3]
        expected = np.array([
            [bin(int(w)).count("1") for w in row] for row in view
        ]).sum(axis=-1)
        assert np.array_equal(popcount(view), expected)

    def test_bit_slice_counts_matches_unpack(self):
        rng = np.random.default_rng(5)
        bits = rng.integers(0, 2, size=(37, 4, 130), dtype=np.uint8)
        words = pack_bits(bits)  # (37, 4, 3)
        counts = bit_slice_counts(words)
        assert counts.shape == (4, 192)
        assert np.array_equal(counts[:, :130], bits.sum(axis=0, dtype=np.int32))

    def test_bit_slice_counts_single_word(self):
        words = pack_bits(np.array([[1, 0, 1, 1]], dtype=np.uint8))  # (1, 1)
        counts = bit_slice_counts(words)
        assert counts.shape == (64,)
        assert counts[:4].tolist() == [1, 0, 1, 1]
        assert counts[4:].sum() == 0

    def test_bit_slice_counts_rejects_flat_input(self):
        with pytest.raises(ValueError, match="packed words"):
            bit_slice_counts(np.zeros(4, dtype=np.uint64))


class TestKernelValidation:
    def test_level_shape_mismatch(self):
        with pytest.raises(ValueError, match="level table"):
            GenericPackedKernel(np.ones((4, 32), np.int8), None, 2, 64)

    def test_bad_window(self):
        with pytest.raises(ValueError, match="window"):
            GenericPackedKernel(np.ones((4, 64), np.int8), None, 0, 64)

    def test_window_longer_than_input(self):
        k = GenericPackedKernel(np.ones((4, 64), np.int8), None, 5, 64)
        with pytest.raises(ValueError, match="longer than input"):
            k.encode_bins(np.zeros((2, 3), dtype=np.int64))

    def test_table_footprint_reported(self):
        k = GenericPackedKernel(np.ones((4, 64), np.int8), None, 3, 64)
        assert k.nbytes() == 3 * 4 * 1 * 8  # offsets x levels x words x 8B


class TestRestoredModelPath:
    def test_import_model_uses_packed_engine(self, tmp_path, toy_problem):
        """Restored encoders skip fit(); the kernel must build lazily."""
        from repro.core import model_io
        from repro.core.classifier import HDClassifier

        X_train, y_train, X_test, _ = toy_problem
        enc = GenericEncoder(dim=128, num_levels=8, seed=4)
        clf = HDClassifier(enc, epochs=2, seed=4).fit(X_train, y_train)
        image = model_io.export_model(clf)
        restored = model_io.import_model(image)
        assert restored.encoder.engine == "auto"
        assert np.array_equal(restored.predict(X_test), clf.predict(X_test))


class TestCrossEngineOpAccounting:
    """The two engines must agree on *logical* op counts.

    The packed kernel executes 64 dimensions per uint64 XOR, but the
    device/energy models charge per-dimension logical work; if the
    packed engine reported word ops, every traced packed run would look
    ~64x cheaper than the identical reference run.
    """

    @pytest.mark.parametrize("use_ids", [True, False])
    def test_op_profile_identical_across_engines(self, use_ids):
        X = _data(7, 6, 10)
        ref, pk = _pair(128, 3, use_ids)
        ref.fit(X)
        pk.fit(X)
        assert ref.op_profile() == pk.op_profile()

    @pytest.mark.parametrize("use_ids", [True, False])
    def test_kernel_reports_logical_not_word_ops(self, use_ids):
        X = _data(9, 4, 12)
        _, pk = _pair(128, 2, use_ids)
        pk.fit(X)
        profile = pk.op_profile()
        counts = pk._current_kernel().op_counts(n_features=12, n_samples=1)
        assert counts["xor_ops"] == profile.xor_ops
        assert counts["add_ops"] == profile.add_ops
        # the physical word count is dim/64-fold smaller -- never what
        # gets reported as the logical total
        assert counts["word_xor_ops"] * 64 == counts["xor_ops"]
        assert counts["word_xor_ops"] < counts["xor_ops"]

    def test_op_counts_scale_with_samples(self):
        X = _data(2, 4, 10)
        _, pk = _pair(64, 2, True)
        pk.fit(X)
        kernel = pk._current_kernel()
        one = kernel.op_counts(n_features=10, n_samples=1)
        many = kernel.op_counts(n_features=10, n_samples=5)
        assert many["xor_ops"] == 5 * one["xor_ops"]
        assert many["add_ops"] == 5 * one["add_ops"]

    def test_window_longer_than_input_rejected(self):
        k = GenericPackedKernel(np.ones((4, 64), np.int8), None, 3, 64)
        with pytest.raises(ValueError, match="window"):
            k.op_counts(n_features=2)

    def test_traced_spans_agree_across_engines(self):
        """End to end: identical encode spans from both engines."""
        from repro.obs import trace as obs_trace
        from repro.obs.export import CollectorSink

        X = _data(13, 8, 10)
        ref, pk = _pair(128, 3, True)
        ref.fit(X)
        pk.fit(X)
        sink = CollectorSink()
        obs_trace.enable_tracing(sink)
        try:
            ref.encode_batch(X)
            pk.encode_batch(X)
        finally:
            obs_trace.reset()
        ref_rec, pk_rec = sink.spans
        assert ref_rec["attrs"]["engine"] == "reference"
        assert pk_rec["attrs"]["engine"] == "packed"
        assert ref_rec["ops"] == pk_rec["ops"]
