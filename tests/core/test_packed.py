"""Unit tests for the bit-packed binary HDC engine."""

import numpy as np
import pytest

from repro.core.classifier import HDClassifier
from repro.core.encoders import GenericEncoder
from repro.core.hypervector import to_binary
from repro.core.packed import (
    PackedModel,
    pack_bits,
    packed_hamming,
    popcount,
    unpack_bits,
)


class TestPacking:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, size=(5, 200), dtype=np.uint8)
        assert np.array_equal(unpack_bits(pack_bits(bits), 200), bits)

    def test_word_count(self):
        bits = np.zeros((3, 130), dtype=np.uint8)
        assert pack_bits(bits).shape == (3, 3)  # ceil(130/64)

    def test_exact_multiple_of_64(self):
        bits = np.ones((2, 128), dtype=np.uint8)
        words = pack_bits(bits)
        assert words.shape == (2, 2)
        assert (words == np.uint64(0xFFFFFFFFFFFFFFFF)).all()

    def test_popcount(self):
        words = np.array([[0, 0xFF, 0xFFFFFFFFFFFFFFFF]], dtype=np.uint64)
        assert popcount(words)[0] == 8 + 64

    def test_packed_hamming_matches_bitwise(self):
        rng = np.random.default_rng(1)
        a_bits = rng.integers(0, 2, size=256, dtype=np.uint8)
        b_bits = rng.integers(0, 2, size=256, dtype=np.uint8)
        expected = int((a_bits != b_bits).sum())
        got = packed_hamming(pack_bits(a_bits[None]), pack_bits(b_bits[None]))
        assert got[0] == expected

    def test_hamming_broadcast_shape(self):
        rng = np.random.default_rng(2)
        q = pack_bits(rng.integers(0, 2, size=(4, 128), dtype=np.uint8))
        c = pack_bits(rng.integers(0, 2, size=(3, 128), dtype=np.uint8))
        d = packed_hamming(q[:, None, :], c[None, :, :])
        assert d.shape == (4, 3)


class TestPackedModel:
    @pytest.fixture(scope="class")
    def trained(self, toy_problem):
        X_train, y_train, _, _ = toy_problem
        enc = GenericEncoder(dim=512, num_levels=16, seed=6)
        return HDClassifier(enc, epochs=4, seed=6).fit(X_train, y_train)

    def test_matches_one_bit_full_precision_ranking(self, trained, toy_problem):
        """Min-Hamming on packed signs == argmax cosine on the sign model."""
        _, _, X_test, _ = toy_problem
        packed = PackedModel.from_classifier(trained)
        sign_model = trained.quantized_model(1)
        encodings = trained.encoder.encode_batch(X_test).astype(np.float64)
        query_signs = np.where(encodings >= 0, 1.0, -1.0)
        # cosine on +/-1 vectors reduces to the dot product
        dots = query_signs @ sign_model.T
        expected = trained.classes_[np.argmax(dots, axis=1)]
        assert np.array_equal(packed.predict(X_test), expected)

    def test_accuracy_close_to_full_precision(self, trained, toy_problem):
        _, _, X_test, y_test = toy_problem
        packed = PackedModel.from_classifier(trained)
        full = trained.score(X_test, y_test)
        assert packed.score(X_test, y_test) > full - 0.15

    def test_model_footprint_16x_smaller(self, trained):
        packed = PackedModel.from_classifier(trained)
        assert packed.compression_vs_16bit() == pytest.approx(16.0)
        assert packed.model_bytes() == 3 * (512 // 64) * 8

    def test_unfitted_classifier_rejected(self):
        clf = HDClassifier(GenericEncoder(dim=128))
        with pytest.raises(RuntimeError):
            PackedModel.from_classifier(clf)

    def test_packed_words_match_sign_bits(self, trained):
        packed = PackedModel.from_classifier(trained)
        signs = trained.quantized_model(1).astype(np.int8)
        expected = pack_bits(to_binary(signs))
        assert np.array_equal(packed.class_words, expected)
