"""Unit tests for the bit-packed binary HDC engine."""

import numpy as np
import pytest

from repro.core.classifier import HDClassifier
from repro.core.encoders import GenericEncoder
from repro.core.hypervector import to_binary
from repro.core.packed import (
    PackedModel,
    pack_bits,
    packed_hamming,
    popcount,
    unpack_bits,
)


class TestPacking:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, size=(5, 200), dtype=np.uint8)
        assert np.array_equal(unpack_bits(pack_bits(bits), 200), bits)

    def test_word_count(self):
        bits = np.zeros((3, 130), dtype=np.uint8)
        assert pack_bits(bits).shape == (3, 3)  # ceil(130/64)

    def test_exact_multiple_of_64(self):
        bits = np.ones((2, 128), dtype=np.uint8)
        words = pack_bits(bits)
        assert words.shape == (2, 2)
        assert (words == np.uint64(0xFFFFFFFFFFFFFFFF)).all()

    def test_popcount(self):
        words = np.array([[0, 0xFF, 0xFFFFFFFFFFFFFFFF]], dtype=np.uint64)
        assert popcount(words)[0] == 8 + 64

    def test_popcount_matches_unpackbits_reference(self):
        """The fast path (bitwise_count / LUT) equals the old expansion."""
        rng = np.random.default_rng(8)
        words = rng.integers(0, 2**64, size=(6, 9), dtype=np.uint64)
        expected = (
            np.unpackbits(words.view(np.uint8), axis=-1)
            .sum(axis=-1)
            .astype(np.int64)
        )
        assert np.array_equal(popcount(words), expected)
        from repro.core.kernels import _popcount_words_lut

        assert np.array_equal(
            _popcount_words_lut(words).sum(axis=-1, dtype=np.int64), expected
        )

    def test_packed_hamming_matches_bitwise(self):
        rng = np.random.default_rng(1)
        a_bits = rng.integers(0, 2, size=256, dtype=np.uint8)
        b_bits = rng.integers(0, 2, size=256, dtype=np.uint8)
        expected = int((a_bits != b_bits).sum())
        got = packed_hamming(pack_bits(a_bits[None]), pack_bits(b_bits[None]))
        assert got[0] == expected

    def test_hamming_broadcast_shape(self):
        rng = np.random.default_rng(2)
        q = pack_bits(rng.integers(0, 2, size=(4, 128), dtype=np.uint8))
        c = pack_bits(rng.integers(0, 2, size=(3, 128), dtype=np.uint8))
        d = packed_hamming(q[:, None, :], c[None, :, :])
        assert d.shape == (4, 3)


class TestPackedModel:
    @pytest.fixture(scope="class")
    def trained(self, toy_problem):
        X_train, y_train, _, _ = toy_problem
        enc = GenericEncoder(dim=512, num_levels=16, seed=6)
        return HDClassifier(enc, epochs=4, seed=6).fit(X_train, y_train)

    def test_matches_one_bit_full_precision_ranking(self, trained, toy_problem):
        """Min-Hamming on packed signs == argmax cosine on the sign model."""
        _, _, X_test, _ = toy_problem
        packed = PackedModel.from_classifier(trained)
        sign_model = trained.quantized_model(1)
        encodings = trained.encoder.encode_batch(X_test).astype(np.float64)
        query_signs = np.where(encodings >= 0, 1.0, -1.0)
        # cosine on +/-1 vectors reduces to the dot product
        dots = query_signs @ sign_model.T
        expected = trained.classes_[np.argmax(dots, axis=1)]
        assert np.array_equal(packed.predict(X_test), expected)

    def test_accuracy_close_to_full_precision(self, trained, toy_problem):
        _, _, X_test, y_test = toy_problem
        packed = PackedModel.from_classifier(trained)
        full = trained.score(X_test, y_test)
        assert packed.score(X_test, y_test) > full - 0.15

    def test_model_footprint_16x_smaller(self, trained):
        packed = PackedModel.from_classifier(trained)
        assert packed.compression_vs_16bit() == pytest.approx(16.0)
        assert packed.model_bytes() == 3 * (512 // 64) * 8

    def test_unfitted_classifier_rejected(self):
        clf = HDClassifier(GenericEncoder(dim=128))
        with pytest.raises(RuntimeError):
            PackedModel.from_classifier(clf)

    def test_packed_words_match_sign_bits(self, trained):
        packed = PackedModel.from_classifier(trained)
        signs = trained.quantized_model(1).astype(np.int8)
        expected = pack_bits(to_binary(signs))
        assert np.array_equal(packed.class_words, expected)


class TestEdgeCases:
    """D not a multiple of 64, single-vs-batch agreement, cosine identity."""

    @pytest.fixture(scope="class")
    def trained(self, toy_problem):
        X_train, y_train, _, _ = toy_problem
        enc = GenericEncoder(dim=512, num_levels=16, seed=6)
        return HDClassifier(enc, epochs=4, seed=6).fit(X_train, y_train)

    @staticmethod
    def _random_packed(rng, n_classes, dim):
        """A PackedModel over random class bits, no encoder needed."""
        class_bits = rng.integers(0, 2, size=(n_classes, dim), dtype=np.uint8)
        model = PackedModel(None, pack_bits(class_bits),
                            np.arange(n_classes), dim)
        return model, class_bits

    def test_dim_not_multiple_of_64(self):
        """D=200 pads to 4 words; padding must never affect distances."""
        rng = np.random.default_rng(3)
        model, class_bits = self._random_packed(rng, n_classes=5, dim=200)
        assert model.class_words.shape == (5, 4)  # ceil(200/64)
        q_bits = rng.integers(0, 2, size=(7, 200), dtype=np.uint8)
        dists = model.hamming_to_classes(pack_bits(q_bits))
        expected = (q_bits[:, None, :] != class_bits[None, :, :]).sum(axis=2)
        assert np.array_equal(dists, expected)

    def test_single_vs_batched_queries_agree(self, trained, toy_problem):
        _, _, X_test, _ = toy_problem
        packed = PackedModel.from_classifier(trained)
        batched = packed.predict(X_test)
        singles = np.array([packed.predict(x[None, :])[0] for x in X_test])
        assert np.array_equal(batched, singles)

    def test_cosine_hamming_identity_on_random_models(self):
        """The documented ranking identity: cos = 1 - 2*hamming/D exactly."""
        rng = np.random.default_rng(9)
        dim = 320
        model, class_bits = self._random_packed(rng, n_classes=6, dim=dim)
        q_bits = rng.integers(0, 2, size=(11, dim), dtype=np.uint8)
        hamming = model.hamming_to_classes(pack_bits(q_bits))

        q_signs = q_bits.astype(np.float64) * 2 - 1
        c_signs = class_bits.astype(np.float64) * 2 - 1
        cos = (q_signs @ c_signs.T) / dim  # unit-norm-free binary cosine
        assert np.allclose(cos, 1.0 - 2.0 * hamming / dim)
        # and therefore the rankings coincide
        assert np.array_equal(np.argmax(cos, axis=1),
                              np.argmin(hamming, axis=1))

    def test_reduced_dim_prefix_hamming(self):
        rng = np.random.default_rng(5)
        model, class_bits = self._random_packed(rng, n_classes=4, dim=256)
        q_bits = rng.integers(0, 2, size=(3, 256), dtype=np.uint8)
        words = pack_bits(q_bits)
        dists = model.hamming_to_classes(words, dim=128)
        expected = (q_bits[:, None, :128] != class_bits[None, :, :128]).sum(axis=2)
        assert np.array_equal(dists, expected)
        preds = model.predict_packed(words, dim=128)
        assert np.array_equal(preds, np.argmin(expected, axis=1))

    def test_reduced_dim_validation(self):
        rng = np.random.default_rng(6)
        model, _ = self._random_packed(rng, n_classes=2, dim=256)
        words = pack_bits(rng.integers(0, 2, size=(1, 256), dtype=np.uint8))
        with pytest.raises(ValueError):
            model.hamming_to_classes(words, dim=100)  # not a word multiple
        with pytest.raises(ValueError):
            model.hamming_to_classes(words, dim=512)  # beyond the model
        # full dim (or None) short-circuits the prefix path
        full = model.hamming_to_classes(words, dim=256)
        assert np.array_equal(full, model.hamming_to_classes(words))
