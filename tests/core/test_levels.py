"""Unit tests for level hypervectors and the quantizer."""

import numpy as np
import pytest

from repro.core.levels import LevelTable, Quantizer


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestLevelTable:
    def test_shape_and_dtype(self, rng):
        table = LevelTable(rng, num_levels=16, dim=512)
        assert table.vectors.shape == (16, 512)
        assert table.vectors.dtype == np.int8
        assert len(table) == 16

    def test_entries_are_bipolar(self, rng):
        table = LevelTable(rng, num_levels=8, dim=256)
        assert set(np.unique(table.vectors)) <= {-1, 1}

    def test_adjacent_levels_are_similar(self, rng):
        table = LevelTable(rng, num_levels=64, dim=4096)
        profile = table.similarity_profile()
        # adjacent levels flip ~ dim/(2*(Q-1)) positions -> cosine ~ 1 - 1/63
        assert profile[1] > 0.95

    def test_extreme_levels_are_orthogonal(self, rng):
        table = LevelTable(rng, num_levels=64, dim=4096)
        profile = table.similarity_profile()
        # Fig 2a: L_min . L_max ~ 0
        assert abs(profile[-1]) < 0.05

    def test_similarity_decays_monotonically(self, rng):
        table = LevelTable(rng, num_levels=32, dim=2048)
        profile = table.similarity_profile()
        diffs = np.diff(profile)
        assert (diffs <= 1e-9).all()

    def test_similarity_decay_is_linear(self, rng):
        table = LevelTable(rng, num_levels=64, dim=4096)
        profile = table.similarity_profile()
        expected = 1.0 - np.arange(64) / 63.0
        assert np.abs(profile - expected).max() < 0.05

    def test_lookup_by_bin_array(self, rng):
        table = LevelTable(rng, num_levels=8, dim=64)
        bins = np.array([[0, 7], [3, 3]])
        out = table[bins]
        assert out.shape == (2, 2, 64)
        assert np.array_equal(out[0, 0], table.vectors[0])

    def test_rejects_degenerate_configs(self, rng):
        with pytest.raises(ValueError):
            LevelTable(rng, num_levels=1, dim=64)
        with pytest.raises(ValueError):
            LevelTable(rng, num_levels=128, dim=64)


class TestQuantizer:
    def test_bins_span_range(self):
        q = Quantizer(num_levels=4)
        X = np.array([[0.0, 1.0, 2.0, 3.0]])
        bins = q.fit_transform(X)
        assert bins.min() == 0
        assert bins.max() == 3

    def test_clipping_out_of_range(self):
        q = Quantizer(num_levels=8)
        q.fit(np.array([[0.0, 1.0]]))
        bins = q.transform(np.array([[-5.0, 10.0]]))
        assert bins.tolist() == [[0, 7]]

    def test_constant_feature_is_safe(self):
        q = Quantizer(num_levels=8)
        bins = q.fit_transform(np.full((5, 3), 2.5))
        assert (bins >= 0).all() and (bins < 8).all()

    def test_per_feature_ranges(self):
        q = Quantizer(num_levels=4, per_feature=True)
        X = np.array([[0.0, 100.0], [1.0, 200.0]])
        bins = q.fit_transform(X)
        # each column quantized against its own range
        assert bins[0].tolist() == [0, 0]
        assert bins[1].tolist() == [3, 3]

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            Quantizer().transform(np.zeros((1, 2)))

    def test_fit_rejects_non_matrix(self):
        with pytest.raises(ValueError):
            Quantizer().fit(np.zeros(5))

    def test_bins_are_monotone_in_value(self):
        q = Quantizer(num_levels=16)
        X = np.linspace(0, 1, 50)[None, :]
        q.fit(X)
        bins = q.transform(X)[0]
        assert (np.diff(bins) >= 0).all()
