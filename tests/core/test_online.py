"""Unit tests for the adaptive (OnlineHD-style) retraining extension."""

import numpy as np
import pytest

from repro.core.encoders import GenericEncoder
from repro.core.online import AdaptiveHDClassifier

DIM = 256


class TestAdaptiveClassifier:
    def test_learns_toy_problem(self, toy_problem):
        X_train, y_train, X_test, y_test = toy_problem
        clf = AdaptiveHDClassifier(GenericEncoder(dim=DIM, seed=1), epochs=5, seed=1)
        clf.fit(X_train, y_train)
        assert clf.score(X_test, y_test) > 0.8

    def test_matches_or_beats_plain_on_hard_problem(self):
        """Weighted updates shouldn't be worse on an overlapping problem."""
        from repro.core.classifier import HDClassifier

        rng = np.random.default_rng(2)
        protos = rng.normal(scale=0.8, size=(4, 30))
        y = rng.integers(0, 4, size=400)
        X = protos[y] + rng.normal(scale=0.9, size=(400, 30))
        Xtr, ytr, Xte, yte = X[:300], y[:300], X[300:], y[300:]
        plain = HDClassifier(GenericEncoder(dim=1024, seed=3), epochs=8, seed=3)
        adaptive = AdaptiveHDClassifier(
            GenericEncoder(dim=1024, seed=3), epochs=8, seed=3
        )
        plain.fit(Xtr, ytr)
        adaptive.fit(Xtr, ytr)
        assert adaptive.score(Xte, yte) >= plain.score(Xte, yte) - 0.05

    def test_lr_validated(self):
        with pytest.raises(ValueError):
            AdaptiveHDClassifier(GenericEncoder(dim=DIM), lr=0.0)

    def test_norms_stay_consistent(self, toy_problem):
        X_train, y_train, _, _ = toy_problem
        clf = AdaptiveHDClassifier(GenericEncoder(dim=DIM, seed=4), epochs=4, seed=4)
        clf.fit(X_train, y_train)
        assert np.allclose(clf.norms_.full_norm2(), (clf.model_**2).sum(axis=1))

    def test_update_on_correct_keeps_training(self, toy_problem):
        X_train, y_train, _, _ = toy_problem
        clf = AdaptiveHDClassifier(
            GenericEncoder(dim=DIM, seed=5), epochs=6, seed=5,
            update_on_correct=True,
        )
        clf.fit(X_train, y_train)
        # no early stop when reinforcement is on
        assert clf.report_.epochs_run == 6


class TestPartialFit:
    def test_streaming_adaptation_to_drift(self):
        """partial_fit recovers accuracy after the class semantics rotate."""
        rng = np.random.default_rng(6)
        protos = rng.normal(scale=1.5, size=(3, 24))
        y_a = rng.integers(0, 3, 300)
        X_a = protos[y_a] + rng.normal(scale=0.5, size=(300, 24))
        # drift: each label's prototype becomes the next one's (rotation)
        rotated = protos[(np.arange(3) + 1) % 3]
        y_b = rng.integers(0, 3, 300)
        X_b = rotated[y_b] + rng.normal(scale=0.5, size=(300, 24))

        clf = AdaptiveHDClassifier(GenericEncoder(dim=1024, seed=6), epochs=5, seed=6)
        clf.fit(X_a, y_a)
        before = clf.score(X_b[200:], y_b[200:])
        assert before < 0.4  # the old model is now wrong
        for _ in range(3):
            clf.partial_fit(X_b[:200], y_b[:200])
        after = clf.score(X_b[200:], y_b[200:])
        assert after > before + 0.3

    def test_unknown_labels_rejected(self, toy_problem):
        X_train, y_train, _, _ = toy_problem
        clf = AdaptiveHDClassifier(GenericEncoder(dim=DIM, seed=7), epochs=1, seed=7)
        clf.fit(X_train, y_train)
        with pytest.raises(ValueError, match="labels not present"):
            clf.partial_fit(X_train[:2], np.array([99, 99]))

    def test_partial_fit_before_fit_rejected(self, toy_problem):
        X_train, y_train, _, _ = toy_problem
        clf = AdaptiveHDClassifier(GenericEncoder(dim=DIM))
        with pytest.raises(RuntimeError):
            clf.partial_fit(X_train, y_train)

    def test_encode_jobs_does_not_change_the_updates(self, toy_problem):
        """partial_fit encodes through encode_batch: fan-out is exact."""
        from repro.core.config import ComputeConfig

        X_train, y_train, _, _ = toy_problem
        models = []
        for jobs in (None, 3):
            clf = AdaptiveHDClassifier(
                GenericEncoder(dim=DIM, seed=8), epochs=1, seed=8,
                config=ComputeConfig(encode_jobs=jobs),
            )
            clf.fit(X_train[:60], y_train[:60])
            clf.partial_fit(X_train[60:], y_train[60:])
            models.append(clf.model_.copy())
        assert np.array_equal(models[0], models[1])

    def test_partial_fit_emits_train_span(self, toy_problem):
        from repro.obs import trace as obs_trace
        from repro.obs.export import CollectorSink

        X_train, y_train, _, _ = toy_problem
        clf = AdaptiveHDClassifier(GenericEncoder(dim=DIM, seed=9),
                                   epochs=1, seed=9)
        clf.fit(X_train, y_train)
        sink = CollectorSink()
        obs_trace.enable_tracing(sink)
        try:
            clf.partial_fit(X_train[:40], y_train[:40])
        finally:
            obs_trace.reset()
        spans = [s for s in sink.spans if s["name"] == "train.partial_fit"]
        assert len(spans) == 1
        attrs = spans[0]["attrs"]
        assert attrs["rule"] == "adaptive"
        assert attrs["engine"] == "reference"
        assert attrs["samples"] == 40
        assert attrs["dim"] == DIM
        assert attrs["epochs"] == 1
        assert 0 <= attrs["updates"] <= 40
        ops = spans[0]["ops"]
        score_macs = 40 * len(clf.classes_) * DIM
        assert ops["mul_ops"] == score_macs
        assert ops["add_ops"] == score_macs + attrs["updates"] * 4 * DIM
