"""ComputeConfig: the consolidated compute-knob API and its legacy shims."""

from __future__ import annotations

import pickle
import warnings

import numpy as np
import pytest

from repro.core import ComputeConfig
from repro.core.classifier import HDClassifier
from repro.core.clustering import HDCluster
from repro.core.config import UNSET
from repro.core.encoders import GenericEncoder
from repro.core.online import AdaptiveHDClassifier
from repro.core.packed import PackedModel


class TestComputeConfig:
    def test_defaults(self):
        cfg = ComputeConfig()
        assert cfg.engine is None
        assert cfg.encode_jobs is None
        assert cfg.train_engine == "auto"
        assert cfg.train_memory_budget is None

    def test_replace_is_a_copy(self):
        cfg = ComputeConfig(engine="packed")
        clone = cfg.replace(encode_jobs=2)
        assert clone.engine == "packed" and clone.encode_jobs == 2
        assert cfg.encode_jobs is None  # original untouched
        clone.engine = "reference"
        assert cfg.engine == "packed"

    def test_dict_round_trip(self):
        cfg = ComputeConfig(engine="reference", encode_jobs=3,
                            train_engine="gram", train_memory_budget=1 << 20)
        assert ComputeConfig.from_dict(cfg.to_dict()) == cfg

    def test_pickle_round_trip(self):
        cfg = ComputeConfig(engine="packed", train_engine="gram")
        assert pickle.loads(pickle.dumps(cfg)) == cfg

    def test_unset_sentinel_is_singleton_through_pickle(self):
        assert pickle.loads(pickle.dumps(UNSET)) is UNSET

    def test_from_kwargs_merges_and_warns(self):
        base = ComputeConfig(engine="packed")
        with pytest.warns(DeprecationWarning, match="encode_jobs"):
            out = ComputeConfig.from_kwargs(base, encode_jobs=4, owner="X")
        assert out.engine == "packed" and out.encode_jobs == 4
        assert base.encode_jobs is None  # input config never mutated

    def test_from_kwargs_no_legacy_no_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            out = ComputeConfig.from_kwargs(ComputeConfig(engine="reference"))
        assert out.engine == "reference"


@pytest.fixture()
def encoder():
    return GenericEncoder(dim=256, num_levels=8, seed=0)


class TestLegacyKwargShims:
    """Every user-facing class accepts config= and warns on old kwargs."""

    def test_classifier_warns_on_legacy_kwargs(self, encoder):
        with pytest.warns(DeprecationWarning, match="train_engine"):
            clf = HDClassifier(encoder, train_engine="gram")
        assert clf.train_engine == "gram"
        assert clf.config.train_engine == "gram"

    def test_classifier_accepts_config_silently(self, encoder):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            clf = HDClassifier(
                encoder, config=ComputeConfig(train_engine="gram",
                                              encode_jobs=2),
            )
        assert clf.train_engine == "gram" and clf.encode_jobs == 2

    def test_classifier_properties_write_through(self, encoder):
        clf = HDClassifier(encoder)
        clf.train_engine = "reference"
        clf.encode_jobs = 2
        assert clf.config.train_engine == "reference"
        assert clf.config.encode_jobs == 2

    def test_adaptive_classifier_forwards(self, encoder):
        with pytest.warns(DeprecationWarning, match="encode_jobs"):
            clf = AdaptiveHDClassifier(encoder, encode_jobs=2)
        assert clf.config.encode_jobs == 2

    def test_cluster_forwards(self, encoder):
        with pytest.warns(DeprecationWarning, match="encode_jobs"):
            clu = HDCluster(encoder, k=3, encode_jobs=2)
        assert clu.config.encode_jobs == 2
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            clu = HDCluster(encoder, k=3, config=ComputeConfig(encode_jobs=1))
        assert clu.encode_jobs == 1

    def test_config_is_copied_on_ingestion(self, encoder):
        shared = ComputeConfig(encode_jobs=2)
        clf = HDClassifier(encoder, config=shared)
        shared.encode_jobs = 8
        assert clf.encode_jobs == 2


class TestRoundTrips:
    """config= must survive with_model, pickling and packing."""

    def test_with_model_carries_config(self, toy_problem, encoder):
        X, y, _, _ = toy_problem
        clf = HDClassifier(
            encoder, epochs=2,
            config=ComputeConfig(train_engine="gram", encode_jobs=2),
        ).fit(X, y)
        clone = clf.with_model(clf.model_ + 1.0)
        assert clone.config == clf.config
        assert clone.config is not clf.config  # independent copies

    def test_pickle_carries_config(self, toy_problem, encoder):
        X, y, _, _ = toy_problem
        clf = HDClassifier(
            encoder, epochs=2, config=ComputeConfig(train_engine="gram"),
        ).fit(X, y)
        thawed = pickle.loads(pickle.dumps(clf))
        assert thawed.config == clf.config
        assert np.array_equal(thawed.predict(X), clf.predict(X))

    def test_packed_from_classifier_merges_config(self, toy_problem, encoder):
        X, y, _, _ = toy_problem
        clf = HDClassifier(encoder, epochs=2).fit(X, y)
        packed = PackedModel.from_classifier(
            clf, config=ComputeConfig(encode_jobs=2)
        )
        assert packed.config.encode_jobs == 2
        with pytest.warns(DeprecationWarning, match="encode_jobs"):
            packed = PackedModel.from_classifier(clf, encode_jobs=3)
        assert packed.encode_jobs == 3

    def test_packed_with_words_carries_config(self, toy_problem, encoder):
        X, y, _, _ = toy_problem
        clf = HDClassifier(encoder, epochs=2).fit(X, y)
        packed = PackedModel.from_classifier(
            clf, config=ComputeConfig(encode_jobs=2)
        )
        clone = packed.with_words(packed.class_words ^ np.uint64(1))
        assert clone.config == packed.config
        assert clone.config is not packed.config


class TestServeConfigIntegration:
    def test_serve_config_folds_legacy_kwargs(self):
        from repro.serve import ServeConfig

        with pytest.warns(DeprecationWarning, match="train_engine"):
            cfg = ServeConfig(train_engine="gram", engine="packed")
        assert cfg.config.train_engine == "gram"
        assert cfg.config.engine == "packed"
        # mirrored legacy attributes keep reading correctly
        assert cfg.train_engine == "gram" and cfg.engine == "packed"

    def test_serve_config_accepts_compute_config(self):
        from repro.serve import ServeConfig

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            cfg = ServeConfig(config=ComputeConfig(engine="reference"))
        assert cfg.config.engine == "reference"
        assert cfg.engine == "reference"
