"""Property-based tests on the encoder family."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.encoders import (
    GenericEncoder,
    NgramEncoder,
    PAPER_ORDER,
    RandomProjectionEncoder,
    make_encoder,
)

SEEDS = st.integers(min_value=0, max_value=2**31 - 1)


def _data(seed: int, n: int, d: int) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=(n, d))


@given(
    seed=SEEDS,
    name=st.sampled_from(PAPER_ORDER),
    d=st.integers(min_value=4, max_value=24),
    chunk=st.integers(min_value=1, max_value=7),
)
@settings(max_examples=25, deadline=None)
def test_chunking_never_changes_encodings(seed, name, d, chunk):
    X = _data(seed, 9, d)
    enc = make_encoder(name, dim=64, num_levels=8, seed=seed % 100)
    enc.fit(X)
    assert np.array_equal(
        enc.encode_batch(X, chunk=chunk), enc.encode_batch(X, chunk=100)
    )


@given(seed=SEEDS, d=st.integers(min_value=4, max_value=32),
       window=st.integers(min_value=1, max_value=4))
@settings(max_examples=25, deadline=None)
def test_generic_magnitude_bounded_by_window_count(seed, d, window):
    if window > d:
        window = d
    X = _data(seed, 5, d)
    enc = GenericEncoder(dim=64, num_levels=8, seed=seed % 100, window=window)
    enc.fit(X)
    H = enc.encode_batch(X)
    assert np.abs(H).max() <= d - window + 1


@given(seed=SEEDS, d=st.integers(min_value=4, max_value=24))
@settings(max_examples=25, deadline=None)
def test_ngram_always_equals_generic_without_ids(seed, d):
    X = _data(seed, 6, d)
    a = NgramEncoder(dim=64, num_levels=8, seed=seed % 100)
    b = GenericEncoder(dim=64, num_levels=8, seed=seed % 100, use_ids=False)
    a.fit(X)
    b.fit(X)
    assert np.array_equal(a.encode_batch(X), b.encode_batch(X))


@given(seed=SEEDS, d=st.integers(min_value=3, max_value=16))
@settings(max_examples=25, deadline=None)
def test_rp_is_additive_in_bins(seed, d):
    """The raw projection (pre-rounding) is linear in the bin vector."""
    X = _data(seed, 4, d)
    enc = RandomProjectionEncoder(dim=64, num_levels=8, seed=seed % 100)
    enc.fit(X)
    bins = enc.quantizer.transform(X).astype(np.float64)
    ids = enc.ids.all().astype(np.float64)
    expected = np.rint(bins @ ids).astype(np.int32)
    assert np.array_equal(enc.encode_batch(X), expected)


@given(seed=SEEDS, name=st.sampled_from(PAPER_ORDER))
@settings(max_examples=20, deadline=None)
def test_identical_rows_encode_identically(seed, name):
    x = np.random.default_rng(seed).normal(size=12)
    X = np.vstack([x, x, x])
    enc = make_encoder(name, dim=64, num_levels=8, seed=seed % 100)
    enc.fit(X)
    H = enc.encode_batch(X)
    assert np.array_equal(H[0], H[1])
    assert np.array_equal(H[1], H[2])


@given(seed=SEEDS)
@settings(max_examples=15, deadline=None)
def test_encoding_invariant_to_other_rows_in_fit(seed):
    """Fitting on a superset (same min/max) must not change encodings."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(8, 10))
    # append rows inside the existing range so the quantizer is unchanged
    inside = X.min() + (X.max() - X.min()) * rng.random((4, 10))
    enc_a = GenericEncoder(dim=64, num_levels=8, seed=3)
    enc_b = GenericEncoder(dim=64, num_levels=8, seed=3)
    enc_a.fit(X)
    enc_b.fit(np.vstack([X, inside]))
    assert np.array_equal(enc_a.encode(X[0]), enc_b.encode(X[0]))
