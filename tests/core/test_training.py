"""Tests for the retraining engines (repro.core.training).

The load-bearing property: the ``gram`` engine must be **result
identical** to the sequential reference loop for the paper's ±h rule --
same model matrix, same sub-norm table, same per-epoch update counts
and accuracies -- across metrics, shuffle settings and encoders.
"""

import numpy as np
import pytest

from repro.core import training
from repro.core.classifier import HDClassifier
from repro.core.encoders import GenericEncoder
from repro.core.online import AdaptiveHDClassifier
from repro.core.training import (
    DEFAULT_TRAIN_BUDGET,
    TRAIN_ENGINES,
    TrainPlan,
    plan_retraining,
)


def _workload(n=160, n_features=8, n_classes=5, noise=0.3, seed=3):
    """Gaussian clusters with flipped labels so retraining keeps firing."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(n_classes, n_features)) * 2.0
    y = rng.integers(0, n_classes, size=n)
    X = centers[y] + rng.normal(size=(n, n_features))
    flip = rng.random(n) < noise
    y[flip] = rng.integers(0, n_classes, size=int(flip.sum()))
    return X, y


def _fit(engine, metric="cosine", shuffle=True, use_ids=True,
         cls=HDClassifier, epochs=6, dim=256, **kwargs):
    X, y = _workload()
    enc = GenericEncoder(dim=dim, num_levels=16, seed=2, use_ids=use_ids)
    clf = cls(enc, epochs=epochs, metric=metric, shuffle=shuffle, seed=9,
              train_engine=engine, **kwargs)
    clf.fit(X, y)
    return clf


def _assert_identical(ref, gram):
    assert np.array_equal(ref.model_, gram.model_)
    assert np.array_equal(ref.norms_.table, gram.norms_.table)
    assert ref.report_.epochs_run == gram.report_.epochs_run
    assert ref.report_.updates_per_epoch == gram.report_.updates_per_epoch
    assert (ref.report_.train_accuracy_per_epoch
            == gram.report_.train_accuracy_per_epoch)


class TestGramIdentity:
    @pytest.mark.parametrize("metric", ["cosine", "dot", "hardware"])
    @pytest.mark.parametrize("shuffle", [True, False])
    def test_identical_across_metrics_and_shuffle(self, metric, shuffle):
        ref = _fit("reference", metric=metric, shuffle=shuffle)
        gram = _fit("gram", metric=metric, shuffle=shuffle)
        assert sum(ref.report_.updates_per_epoch) > 0  # non-trivial run
        _assert_identical(ref, gram)

    def test_identical_without_position_ids(self):
        _assert_identical(_fit("reference", use_ids=False),
                          _fit("gram", use_ids=False))

    def test_auto_resolves_to_gram_and_matches(self):
        auto = _fit("auto")
        assert auto.train_plan_.engine == "gram"
        assert auto.train_plan_.exact
        _assert_identical(_fit("reference"), auto)

    def test_same_predictions(self):
        X, _ = _workload(seed=11)
        ref, gram = _fit("reference"), _fit("gram")
        assert np.array_equal(ref.predict(X), gram.predict(X))

    def test_column_kernel_matches_precomputed(self):
        # budget large enough for G but not for K -> on-demand columns
        ref = _fit("reference")
        n, n_classes = 160, len(ref.classes_)
        tight = n_classes * n * 8 + n * 8 + 4 * n * 8
        gram = _fit("gram", train_memory_budget=tight)
        assert gram.train_plan_.kernel == "columns"
        _assert_identical(ref, gram)


class TestAdaptiveEngine:
    def test_auto_uses_reference_for_adaptive_rule(self):
        clf = _fit("auto", cls=AdaptiveHDClassifier)
        assert clf.train_plan_.engine == "reference"
        assert not clf.train_plan_.exact

    def test_explicit_gram_agrees_to_rounding(self):
        ref = _fit("reference", cls=AdaptiveHDClassifier)
        gram = _fit("gram", cls=AdaptiveHDClassifier)
        assert gram.train_plan_.engine == "gram"
        assert ref.report_.updates_per_epoch == gram.report_.updates_per_epoch
        np.testing.assert_allclose(ref.model_, gram.model_, rtol=1e-9)
        np.testing.assert_allclose(ref.norms_.table, gram.norms_.table,
                                   rtol=1e-9)


class TestPlanning:
    def test_invalid_engine_rejected(self):
        enc = GenericEncoder(dim=128, num_levels=4, seed=0)
        with pytest.raises(ValueError, match="train engine"):
            HDClassifier(enc, train_engine="turbo")
        with pytest.raises(ValueError, match="train engine"):
            plan_retraining(np.ones((4, 8)), 2, 1, engine="turbo")

    def test_reference_requested_is_honored(self):
        plan = plan_retraining(np.ones((4, 8)), 2, 1, engine="reference")
        assert plan.engine == "reference" and plan.reason == "requested"

    def test_zero_epochs_falls_back(self):
        plan = plan_retraining(np.ones((4, 8)), 2, 0, engine="auto")
        assert plan.engine == "reference"

    def test_non_integer_encodings_fall_back(self):
        rng = np.random.default_rng(0)
        plan = plan_retraining(rng.normal(size=(16, 32)), 3, 5, engine="auto")
        assert plan.engine == "reference" and not plan.exact

    def test_budget_fallback(self):
        enc = np.ones((64, 32))
        plan = plan_retraining(enc, 4, 5, engine="auto", budget_bytes=1024)
        assert plan.engine == "reference"
        assert "budget" in plan.reason

    def test_budget_fallback_through_classifier(self):
        clf = _fit("auto", train_memory_budget=64)
        assert clf.train_plan_.engine == "reference"

    def test_default_budget_and_plan_shape(self):
        enc = np.full((32, 64), 3.0)
        plan = plan_retraining(enc, 4, 5, engine="auto")
        assert isinstance(plan, TrainPlan)
        assert plan.budget_bytes == DEFAULT_TRAIN_BUDGET
        assert plan.engine == "gram" and plan.kernel == "precomputed"
        assert plan.kernel_dtype == "float32"  # small ints: f32 is exact
        assert plan.cache_bytes <= plan.budget_bytes

    def test_huge_magnitudes_not_proven_exact(self):
        enc = np.full((8, 16), 2.0**40)
        plan = plan_retraining(enc, 2, 20, engine="auto")
        assert plan.engine == "reference" and not plan.exact

    def test_engines_tuple_is_public(self):
        assert TRAIN_ENGINES == ("auto", "reference", "gram")


class TestReport:
    def test_retrain_seconds_recorded(self):
        clf = _fit("gram")
        assert clf.report_.seconds is not None
        assert clf.report_.seconds >= 0.0

    def test_training_module_reexported(self):
        from repro.core import TRAIN_ENGINES as exported
        assert exported is training.TRAIN_ENGINES
