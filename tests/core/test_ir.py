"""Property-based suite for the primitive IR, planner, and backends.

The central contract -- every backend executes every legal plan
*bit-identically* -- is pinned here with Hypothesis over random shape
classes (levels, dim, features, window, ids, approximation), not just
the handful of grid points the benchmarks time.  Alongside it: planner
policy invariants (cache behaviour, chunk sizing, error bounds), the
window-selection maths of multifold approximation, and the
content-hash kernel memoization the encoders share packed tables
through.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.encoders import GenericEncoder
from repro.core.ir import (
    BACKENDS,
    BACKEND_TO_ENGINE,
    ENGINE_TO_BACKEND,
    EncodeSources,
    KernelPlanner,
    PlanRequest,
    plan_encode,
    select_windows,
)
from repro.core.kernels import (
    GenericPackedKernel,
    clear_packed_kernel_cache,
    packed_kernel_cache_info,
)
from repro.core.hypervector import random_bipolar


# --- shared strategy: one random encode shape class -------------------------

shape_classes = st.fixed_dictionaries(
    {
        "num_levels": st.integers(min_value=2, max_value=32),
        "dim": st.integers(min_value=8, max_value=320),
        "window": st.integers(min_value=1, max_value=5),
        "extra_feats": st.integers(min_value=0, max_value=24),
        "use_ids": st.booleans(),
        "n_samples": st.integers(min_value=1, max_value=6),
        "fold_frac": st.one_of(
            st.none(), st.floats(min_value=0.1, max_value=1.0)
        ),
    }
)


def _materialize(shape, seed=0):
    """Random fitted tables + bins for one drawn shape class."""
    rng = np.random.default_rng(seed)
    n_features = shape["window"] + shape["extra_feats"]
    n_windows = n_features - shape["window"] + 1
    folds = None
    if shape["fold_frac"] is not None:
        folds = max(1, int(round(shape["fold_frac"] * n_windows)))
    levels = random_bipolar(rng, shape["dim"], size=shape["num_levels"])
    ids = (
        random_bipolar(rng, shape["dim"], size=n_windows)
        if shape["use_ids"] else None
    )
    bins = rng.integers(
        0, shape["num_levels"], size=(shape["n_samples"], n_features)
    )
    return n_features, folds, levels, ids, bins


def _plan_for(shape, n_features, folds, engine):
    return plan_encode(
        n_features=n_features,
        window=shape["window"],
        dim=shape["dim"],
        num_levels=shape["num_levels"],
        use_ids=shape["use_ids"],
        engine=engine,
        approx_folds=folds,
    )


def _sources(levels, ids, shape):
    kernel = GenericPackedKernel(
        levels, ids, window=shape["window"], dim=shape["dim"]
    )
    return (
        EncodeSources(levels=levels, ids=ids),
        EncodeSources(kernel=kernel),
    )


class TestCrossBackendIdentity:
    """Backends are bit-identical over random shape classes."""

    @given(shape=shape_classes)
    @settings(max_examples=60, deadline=None)
    def test_full_plans_bit_identical(self, shape):
        n_features, folds, levels, ids, bins = _materialize(shape)
        ref_plan = _plan_for(shape, n_features, folds, "reference")
        pk_plan = _plan_for(shape, n_features, folds, "packed")
        ref_src, pk_src = _sources(levels, ids, shape)
        ref_out = ref_plan.execute(ref_src, bins)
        pk_out = pk_plan.execute(pk_src, bins)
        assert ref_out.dtype == pk_out.dtype == np.int32
        np.testing.assert_array_equal(ref_out, pk_out)

    @pytest.mark.skipif("numba-jit" not in BACKENDS,
                        reason="numba not installed")
    @given(shape=shape_classes)
    @settings(max_examples=25, deadline=None)
    def test_numba_plans_bit_identical(self, shape):
        """The optional JIT backend joins the bit-identity contract."""
        n_features, folds, levels, ids, bins = _materialize(shape, seed=4)
        ref_plan = _plan_for(shape, n_features, folds, "reference")
        nb_plan = _plan_for(shape, n_features, folds, "numba")
        ref_src, pk_src = _sources(levels, ids, shape)
        np.testing.assert_array_equal(
            ref_plan.execute(ref_src, bins), nb_plan.execute(pk_src, bins)
        )

    @given(shape=shape_classes)
    @settings(max_examples=40, deadline=None)
    def test_approx_at_all_windows_is_exact(self, shape):
        """``approx_folds == n_windows`` must be bit-identical to exact."""
        n_features, _, levels, ids, bins = _materialize(shape, seed=1)
        n_windows = n_features - shape["window"] + 1
        exact = _plan_for(shape, n_features, None, "packed")
        ident = _plan_for(shape, n_features, n_windows, "packed")
        _, pk_src = _sources(levels, ids, shape)
        np.testing.assert_array_equal(
            exact.execute(pk_src, bins), ident.execute(pk_src, bins)
        )
        assert ident.error_bound is None

    @given(shape=shape_classes)
    @settings(max_examples=40, deadline=None)
    def test_approx_error_bound_holds(self, shape):
        """|approx - exact| <= n_windows - folds, elementwise."""
        n_features, folds, levels, ids, bins = _materialize(shape, seed=2)
        if folds is None:
            folds = 1
        exact_plan = _plan_for(shape, n_features, None, "packed")
        approx_plan = _plan_for(shape, n_features, folds, "packed")
        _, pk_src = _sources(levels, ids, shape)
        exact = exact_plan.execute(pk_src, bins)
        approx = approx_plan.execute(pk_src, bins)
        n_windows = n_features - shape["window"] + 1
        bound = n_windows - min(folds, n_windows)
        assert np.abs(approx - exact).max() <= bound
        if bound > 0:
            eb = approx_plan.error_bound
            assert eb["max_abs_count_error"] == bound
            assert eb["skipped_windows"] == bound

    @given(shape=shape_classes)
    @settings(max_examples=30, deadline=None)
    def test_primitive_popcount_search_agrees(self, shape):
        """The search primitive matches across domains too."""
        rng = np.random.default_rng(7)
        dim = shape["dim"]
        queries = rng.choice([-1, 1], size=(3, dim)).astype(np.int8)
        classes = rng.choice([-1, 1], size=(4, dim)).astype(np.int8)
        ref = BACKENDS.get("numpy-reference").popcount_search(
            queries, classes
        )
        from repro.core.kernels import pack_bits

        pk = BACKENDS.get("packed-uint64").popcount_search(
            pack_bits(queries < 0), pack_bits(classes < 0)
        )
        np.testing.assert_array_equal(np.asarray(ref), np.asarray(pk))


class TestSelectWindows:
    @given(
        n=st.integers(min_value=1, max_value=500),
        k=st.integers(min_value=1, max_value=500),
    )
    @settings(max_examples=100, deadline=None)
    def test_selection_invariants(self, n, k):
        sel = select_windows(n, k)
        if k >= n:
            assert sel is None  # exact case
            return
        assert len(sel) == k
        assert sel[0] == 0
        assert sel[-1] < n
        assert np.all(np.diff(sel) >= 1)  # strictly increasing

    def test_exact_sentinels(self):
        assert select_windows(10, None) is None
        assert select_windows(10, 10) is None
        assert select_windows(10, 99) is None
        with pytest.raises(ValueError):
            select_windows(10, 0)


class TestPlannerPolicy:
    def test_cache_hits_on_same_request(self):
        planner = KernelPlanner()
        req = PlanRequest(n_features=20, window=3, dim=256, num_levels=16)
        a = planner.plan(req)
        b = planner.plan(
            PlanRequest(n_features=20, window=3, dim=256, num_levels=16)
        )
        assert a is b
        info = planner.cache_info()
        assert info["plans"] == 1 and info["built"] == 1
        planner.clear_cache()
        assert planner.cache_info()["plans"] == 0

    def test_engine_resolution(self):
        planner = KernelPlanner()
        for engine, backend in ENGINE_TO_BACKEND.items():
            if backend not in BACKENDS:
                continue
            assert planner.resolve_backend(engine) == backend
            assert BACKEND_TO_ENGINE[backend] == engine
        assert planner.resolve_backend("auto") == BACKENDS.best().name
        with pytest.raises((KeyError, ValueError)):
            planner.resolve_backend("no-such-engine")

    @given(shape=shape_classes)
    @settings(max_examples=50, deadline=None)
    def test_chunking_respects_budget(self, shape):
        from repro.core.ir.planner import CHUNK_BUDGET

        n_features, folds, _, _, _ = _materialize(shape)
        plan = _plan_for(shape, n_features, folds, "packed")
        assert plan.chunk_samples >= 1
        assert plan.bytes_per_sample >= 1
        if plan.chunk_samples > 1:
            assert plan.chunk_samples * plan.bytes_per_sample <= CHUNK_BUDGET

    @given(shape=shape_classes)
    @settings(max_examples=30, deadline=None)
    def test_describe_and_op_counts(self, shape):
        n_features, folds, _, _, _ = _materialize(shape)
        plan = _plan_for(shape, n_features, folds, "auto")
        text = plan.describe()
        assert plan.backend_name in text
        prims = plan.primitive_ops(4)
        assert prims and all(v >= 0 for v in prims.values())
        # logical op totals scale linearly with sample count
        once = plan.primitive_ops(1)
        assert all(prims[k] == 4 * once[k] for k in once)


class TestKernelMemoization:
    def test_content_equal_tables_share_kernel(self):
        clear_packed_kernel_cache()
        rng = np.random.default_rng(0)
        X = rng.normal(size=(12, 20))
        a = GenericEncoder(dim=128, num_levels=8, seed=3, window=2,
                           engine="packed").fit(X)
        b = GenericEncoder(dim=128, num_levels=8, seed=3, window=2,
                           engine="packed").fit(X)
        assert a._kernel is b._kernel  # content hash matched
        info = packed_kernel_cache_info()
        assert 1 <= info["size"] <= info["max_size"]

    def test_different_content_different_kernel(self):
        clear_packed_kernel_cache()
        rng = np.random.default_rng(0)
        X = rng.normal(size=(12, 20))
        a = GenericEncoder(dim=128, num_levels=8, seed=3, window=2,
                           engine="packed").fit(X)
        b = GenericEncoder(dim=128, num_levels=8, seed=4, window=2,
                           engine="packed").fit(X)
        assert a._kernel is not b._kernel

    def test_pair_table_is_cached_and_consistent(self):
        rng = np.random.default_rng(1)
        levels = random_bipolar(rng, 192, size=8)
        kernel = GenericPackedKernel(levels, None, window=3, dim=192)
        pair = kernel.pair_table(0)
        assert pair is kernel.pair_table(0)  # lazily built once
        assert not pair.flags.writeable
        # pair(j) == rho^j(levels) ^ rho^{j+1}(levels) for all bin pairs
        bins = rng.integers(0, 8, size=(4, 5))
        bt = np.ascontiguousarray(bins.T)
        direct = kernel.tables[0][bt[0:3]] ^ kernel.tables[1][bt[1:4]]
        fused = pair[bt[0:3], bt[1:4]]
        np.testing.assert_array_equal(direct, fused)


class TestEncoderIntegration:
    def test_numba_engine_gated_when_absent(self):
        enc = GenericEncoder(dim=64, num_levels=4, seed=0)
        if "numba-jit" in BACKENDS:  # pragma: no cover - optional dep
            enc.engine = "numba"
            assert enc.engine == "numba"
        else:
            with pytest.raises(ValueError, match="numba"):
                enc.engine = "numba"

    def test_plan_pinned_and_reset_on_engine_change(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(8, 15))
        enc = GenericEncoder(dim=96, num_levels=8, seed=0, window=2,
                             engine="packed").fit(X)
        plan = enc.encode_plan()
        assert enc.encode_plan() is plan
        enc.engine = "reference"
        assert enc.encode_plan() is not plan
        assert enc.encode_plan().backend_name == "numpy-reference"

    def test_approx_folds_roundtrip_through_encoder(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(10, 24))
        exact = GenericEncoder(dim=128, num_levels=8, seed=0, window=3,
                               engine="packed").fit(X)
        approx = GenericEncoder(dim=128, num_levels=8, seed=0, window=3,
                                engine="packed",
                                approx_folds=exact.n_windows).fit(X)
        np.testing.assert_array_equal(
            exact.encode_batch(X), approx.encode_batch(X)
        )
        approx.approx_folds = 2
        eb = approx.encode_plan().error_bound
        assert eb["max_abs_count_error"] == approx.n_windows - 2
