"""Unit tests for HDC clustering."""

import numpy as np
import pytest

from repro.core.clustering import HDCluster
from repro.core.encoders import GenericEncoder
from repro.eval.metrics import normalized_mutual_information

DIM = 512


@pytest.fixture
def blobs():
    rng = np.random.default_rng(3)
    centers = np.array([[0.0] * 8, [4.0] * 8, [-4.0] * 8])
    y = rng.integers(0, 3, size=150)
    X = centers[y] + rng.normal(scale=0.5, size=(150, 8))
    order = rng.permutation(150)
    return X[order], y[order]


class TestHDCluster:
    def test_recovers_well_separated_blobs(self, blobs):
        X, y = blobs
        clu = HDCluster(GenericEncoder(dim=DIM, seed=1), k=3, epochs=10).fit(X)
        assert normalized_mutual_information(y, clu.labels_) > 0.8

    def test_labels_in_range(self, blobs):
        X, _ = blobs
        clu = HDCluster(GenericEncoder(dim=DIM, seed=1), k=3, epochs=5).fit(X)
        assert clu.labels_.min() >= 0
        assert clu.labels_.max() < 3

    def test_fit_predict_matches_labels(self, blobs):
        X, _ = blobs
        clu = HDCluster(GenericEncoder(dim=DIM, seed=2), k=3, epochs=5)
        labels = clu.fit_predict(X)
        assert np.array_equal(labels, clu.labels_)

    def test_predict_new_points(self, blobs):
        X, _ = blobs
        clu = HDCluster(GenericEncoder(dim=DIM, seed=1), k=3, epochs=5).fit(X)
        preds = clu.predict(X[:10])
        # points already seen should mostly land in their assigned cluster
        assert np.mean(preds == clu.labels_[:10]) > 0.7

    def test_centroids_shape(self, blobs):
        X, _ = blobs
        clu = HDCluster(GenericEncoder(dim=DIM, seed=1), k=3, epochs=3).fit(X)
        assert clu.centroids_.shape == (3, DIM)

    def test_converges_and_stops_early(self, blobs):
        X, _ = blobs
        clu = HDCluster(GenericEncoder(dim=DIM, seed=1), k=3, epochs=50).fit(X)
        assert clu.epochs_run_ < 50

    def test_k_larger_than_samples_rejected(self):
        clu = HDCluster(GenericEncoder(dim=DIM), k=10)
        with pytest.raises(ValueError):
            clu.fit(np.zeros((5, 4)))

    def test_bad_k_rejected(self):
        with pytest.raises(ValueError):
            HDCluster(GenericEncoder(dim=DIM), k=0)

    def test_predict_before_fit_raises(self):
        clu = HDCluster(GenericEncoder(dim=DIM), k=2)
        with pytest.raises(RuntimeError):
            clu.predict(np.zeros((1, 4)))

    def test_k1_puts_everything_together(self, blobs):
        X, _ = blobs
        clu = HDCluster(GenericEncoder(dim=DIM, seed=1), k=1, epochs=3).fit(X)
        assert (clu.labels_ == 0).all()

    def test_empty_cluster_keeps_centroid(self):
        # two identical points seed two centroids; one cluster will end up
        # empty and must not collapse to a zero centroid
        X = np.ones((10, 6)) * 2.0
        X[0] = 2.0  # duplicates
        clu = HDCluster(GenericEncoder(dim=DIM, seed=4), k=2, epochs=3).fit(X)
        norms = np.linalg.norm(clu.centroids_, axis=1)
        assert (norms > 0).all()


class TestClusterEngineControls:
    def test_encode_jobs_results_identical(self, blobs):
        X, _ = blobs
        serial = HDCluster(GenericEncoder(dim=DIM, seed=1), k=3, epochs=5).fit(X)
        fanned = HDCluster(GenericEncoder(dim=DIM, seed=1), k=3, epochs=5,
                           encode_jobs=2).fit(X)
        assert np.array_equal(serial.labels_, fanned.labels_)
        assert np.array_equal(serial.centroids_, fanned.centroids_)
        assert np.array_equal(serial.predict(X[:20]), fanned.predict(X[:20]))

    def test_engine_forwarded_to_encoder(self, blobs):
        X, _ = blobs
        enc = GenericEncoder(dim=DIM, seed=1)
        clu = HDCluster(enc, k=3, epochs=3, engine="reference")
        assert enc.engine == "reference"
        ref_labels = clu.fit(X).labels_
        enc2 = GenericEncoder(dim=DIM, seed=1)
        packed = HDCluster(enc2, k=3, epochs=3, engine="packed").fit(X)
        assert np.array_equal(ref_labels, packed.labels_)

    def test_engine_rejected_without_support(self):
        class Plain:
            fitted = True
        with pytest.raises(ValueError, match="selectable engine"):
            HDCluster(Plain(), k=2, engine="packed")
