"""PackedModel ownership contract + shared-memory image round trips."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.classifier import HDClassifier
from repro.core.encoders import GenericEncoder
from repro.core.packed import PackedModel
from repro.core.shared import SharedModelArena


@pytest.fixture(scope="module")
def packed_setup():
    rng = np.random.default_rng(3)
    X = rng.normal(size=(120, 12))
    y = rng.integers(0, 4, 120)
    enc = GenericEncoder(dim=256, num_levels=8, seed=5)
    clf = HDClassifier(enc, epochs=2, seed=5).fit(X, y)
    pm = PackedModel.from_classifier(clf)
    return pm, X


class TestOwnership:
    def test_fresh_model_owns_words(self, packed_setup):
        pm, _ = packed_setup
        assert pm.owns_words
        assert pm.shared_segment is None

    def test_with_words_default_adopts_buffer(self, packed_setup):
        pm, _ = packed_setup
        words = pm.class_words.copy()
        clone = pm.with_words(words)
        assert clone.class_words is not pm.class_words
        assert clone.encoder is pm.encoder  # encoder is shared, words are not
        words[0, 0] ^= np.uint64(1)
        assert clone.class_words[0, 0] == words[0, 0]  # adopted, not copied

    def test_with_words_copy_detaches(self, packed_setup):
        pm, _ = packed_setup
        words = pm.class_words.copy()
        clone = pm.with_words(words, copy=True)
        words[0, 0] ^= np.uint64(1)
        assert clone.class_words[0, 0] != words[0, 0]
        assert clone.owns_words

    def test_pickle_round_trip_owns_buffers(self, packed_setup):
        pm, X = packed_setup
        clone = pickle.loads(pickle.dumps(pm))
        assert clone.owns_words
        assert clone.shared_segment is None
        np.testing.assert_array_equal(clone.predict(X[:10]), pm.predict(X[:10]))

    def test_numpy_view_still_counts_as_owned(self, packed_setup):
        pm, _ = packed_setup
        # a slice of numpy-owned memory is self-contained: still owned
        assert pm.with_words(pm.class_words[:]).owns_words

    def test_pickle_of_foreign_buffer_model_owns(self, packed_setup):
        pm, _ = packed_setup
        blob = pm.class_words.tobytes()
        foreign = np.frombuffer(blob, dtype=np.uint64).reshape(
            pm.class_words.shape
        )
        view_backed = pm.with_words(foreign)
        assert not view_backed.owns_words  # bytes-backed, dies with blob
        clone = pickle.loads(pickle.dumps(view_backed))
        assert clone.owns_words

    def test_materialize_is_identity_for_owned(self, packed_setup):
        pm, _ = packed_setup
        assert pm.materialize() is pm


class TestSharedImage:
    def test_round_trip_bit_exact(self, packed_setup):
        pm, X = packed_setup
        with SharedModelArena(prefix="t_img") as arena:
            spec = pm.to_shared(arena)
            clone = PackedModel.from_shared(spec, arena)
            # class words are zero-copy read-only views of the segment
            assert clone.class_words.base is not None
            assert not clone.class_words.flags.writeable
            assert not clone.owns_words
            assert clone.shared_segment == spec.segment
            np.testing.assert_array_equal(
                clone.encode_packed(X[:16]), pm.encode_packed(X[:16])
            )
            np.testing.assert_array_equal(
                clone.predict(X[:16]), pm.predict(X[:16])
            )

    def test_publisher_model_untouched_by_to_shared(self, packed_setup):
        pm, _ = packed_setup
        before = pm.class_words.copy()
        with SharedModelArena(prefix="t_img2") as arena:
            pm.to_shared(arena)
            assert pm.owns_words  # stash/restore left the model intact
            np.testing.assert_array_equal(pm.class_words, before)

    def test_materialize_detaches_from_segment(self, packed_setup):
        pm, X = packed_setup
        with SharedModelArena(prefix="t_img3") as arena:
            spec = pm.to_shared(arena)
            clone = PackedModel.from_shared(spec, arena)
            owned = clone.materialize()
            assert owned is not clone
            assert owned.owns_words
            assert owned.shared_segment is None
        # the arena is gone; the materialized model must still work
        np.testing.assert_array_equal(owned.predict(X[:8]), pm.predict(X[:8]))

    def test_shared_kernel_tables_are_views(self, packed_setup):
        pm, X = packed_setup
        pm.encode_packed(X[:1])  # force-build the kernel before publishing
        with SharedModelArena(prefix="t_img4") as arena:
            spec = pm.to_shared(arena)
            clone = PackedModel.from_shared(spec, arena)
            clone.encode_packed(X[:1])
            kernel = clone.encoder._kernel
            assert kernel is not None
            assert kernel.tables.base is not None  # mapped, not rebuilt


class TestTopK:
    def test_topk_matches_predict_packed(self, packed_setup):
        pm, X = packed_setup
        q = pm.encode_packed(X[:32])
        ref = pm.predict_packed(q)
        _, rows = pm.topk_to_classes(q, k=1)
        np.testing.assert_array_equal(pm.class_labels[rows[:, 0]], ref)

    def test_topk_rows_slice_returns_global_indices(self, packed_setup):
        pm, X = packed_setup
        q = pm.encode_packed(X[:8])
        n = len(pm.class_labels)
        lo, hi = 1, n
        dists, rows = pm.topk_to_classes(q, k=2, rows=slice(lo, hi))
        assert rows.min() >= lo
        full = pm.hamming_to_classes(q)
        expect_rows = np.argsort(full[:, lo:hi], axis=1,
                                 kind="stable")[:, :2] + lo
        np.testing.assert_array_equal(rows, expect_rows)
        np.testing.assert_array_equal(
            dists, np.take_along_axis(full, expect_rows, axis=1)
        )

    def test_topk_prefix_dim(self, packed_setup):
        pm, X = packed_setup
        q = pm.encode_packed(X[:16])
        ref = pm.predict_packed(q, dim=128)
        _, rows = pm.topk_to_classes(q, k=1, dim=128)
        np.testing.assert_array_equal(pm.class_labels[rows[:, 0]], ref)
