"""Unit tests for the blocked sub-norm table (Section 4.3.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.norms import SubNormTable


@pytest.fixture
def table_and_classes():
    rng = np.random.default_rng(5)
    classes = rng.normal(scale=10, size=(4, 512))
    table = SubNormTable(4, 512, block=128)
    table.recompute(classes)
    return table, classes


class TestSubNormTable:
    def test_full_norm_matches_numpy(self, table_and_classes):
        table, classes = table_and_classes
        expected = (classes**2).sum(axis=1)
        assert np.allclose(table.full_norm2(), expected)

    def test_prefix_norm_matches_numpy(self, table_and_classes):
        table, classes = table_and_classes
        for dim in (128, 256, 384, 512):
            expected = (classes[:, :dim] ** 2).sum(axis=1)
            assert np.allclose(table.norm2(dim), expected)

    def test_update_single_class(self, table_and_classes):
        table, classes = table_and_classes
        classes[2] *= 3.0
        table.update_class(2, classes[2])
        assert np.allclose(table.full_norm2()[2], (classes[2] ** 2).sum())
        # untouched classes unchanged
        assert np.allclose(table.full_norm2()[0], (classes[0] ** 2).sum())

    def test_non_multiple_dim_rejected(self, table_and_classes):
        table, _ = table_and_classes
        with pytest.raises(ValueError):
            table.norm2(100)

    def test_out_of_range_dim_rejected(self, table_and_classes):
        table, _ = table_and_classes
        with pytest.raises(ValueError):
            table.norm2(0)
        with pytest.raises(ValueError):
            table.norm2(640)

    def test_dim_must_divide_into_blocks(self):
        with pytest.raises(ValueError):
            SubNormTable(2, 100, block=128)

    def test_recompute_shape_checked(self, table_and_classes):
        table, _ = table_and_classes
        with pytest.raises(ValueError):
            table.recompute(np.zeros((3, 512)))

    def test_delta_update_matches_recompute_integer_rule(self):
        # the paper's ±h rule on integer vectors: delta must be bit-equal
        rng = np.random.default_rng(1)
        classes = rng.integers(-50, 50, size=(4, 512)).astype(np.float64)
        h = rng.integers(0, 30, size=512).astype(np.float64)
        table = SubNormTable(4, 512, block=128)
        table.recompute(classes)
        table.delta_update(1, classes[1], h, scale=-1.0)
        classes[1] -= h
        fresh = SubNormTable(4, 512, block=128)
        fresh.recompute(classes)
        assert np.array_equal(table.table, fresh.table)

    def test_storage_matches_paper_2kb(self):
        # 32 classes x (4096/128) blocks x 2 bytes ~ 2 KB in the paper;
        # we store 4-byte words -> 4 KB, same order
        table = SubNormTable(32, 4096, block=128)
        assert table.storage_bytes(word_bytes=2) == 2048


class TestDeltaUpdateProperty:
    """delta_update must track a full recompute for arbitrary floats."""

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        scale=st.floats(min_value=-4.0, max_value=4.0,
                        allow_nan=False, allow_infinity=False),
        n_updates=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_delta_matches_recompute(self, seed, scale, n_updates):
        rng = np.random.default_rng(seed)
        n_classes, dim, block = 3, 256, 64
        classes = rng.normal(scale=5.0, size=(n_classes, dim))
        table = SubNormTable(n_classes, dim, block=block)
        table.recompute(classes)
        for _ in range(n_updates):
            idx = int(rng.integers(0, n_classes))
            h = rng.normal(scale=3.0, size=dim)
            table.delta_update(idx, classes[idx], h, scale=scale)
            classes[idx] += scale * h
        fresh = SubNormTable(n_classes, dim, block=block)
        fresh.recompute(classes)
        np.testing.assert_allclose(table.table, fresh.table,
                                   rtol=1e-9, atol=1e-9)

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_precomputed_h_norms_equivalent(self, seed):
        rng = np.random.default_rng(seed)
        dim, block = 256, 128
        classes = rng.integers(-20, 20, size=(2, dim)).astype(np.float64)
        h = rng.integers(0, 15, size=dim).astype(np.float64)
        hb = h.reshape(dim // block, block)
        h_blk2 = np.einsum("ij,ij->i", hb, hb)
        with_pre = SubNormTable(2, dim, block=block)
        with_pre.recompute(classes)
        without = SubNormTable(2, dim, block=block)
        without.recompute(classes)
        with_pre.delta_update(0, classes[0], h, 1.0, h_block_norm2=h_blk2)
        without.delta_update(0, classes[0], h, 1.0)
        assert np.array_equal(with_pre.table, without.table)
