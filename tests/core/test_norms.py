"""Unit tests for the blocked sub-norm table (Section 4.3.3)."""

import numpy as np
import pytest

from repro.core.norms import SubNormTable


@pytest.fixture
def table_and_classes():
    rng = np.random.default_rng(5)
    classes = rng.normal(scale=10, size=(4, 512))
    table = SubNormTable(4, 512, block=128)
    table.recompute(classes)
    return table, classes


class TestSubNormTable:
    def test_full_norm_matches_numpy(self, table_and_classes):
        table, classes = table_and_classes
        expected = (classes**2).sum(axis=1)
        assert np.allclose(table.full_norm2(), expected)

    def test_prefix_norm_matches_numpy(self, table_and_classes):
        table, classes = table_and_classes
        for dim in (128, 256, 384, 512):
            expected = (classes[:, :dim] ** 2).sum(axis=1)
            assert np.allclose(table.norm2(dim), expected)

    def test_update_single_class(self, table_and_classes):
        table, classes = table_and_classes
        classes[2] *= 3.0
        table.update_class(2, classes[2])
        assert np.allclose(table.full_norm2()[2], (classes[2] ** 2).sum())
        # untouched classes unchanged
        assert np.allclose(table.full_norm2()[0], (classes[0] ** 2).sum())

    def test_non_multiple_dim_rejected(self, table_and_classes):
        table, _ = table_and_classes
        with pytest.raises(ValueError):
            table.norm2(100)

    def test_out_of_range_dim_rejected(self, table_and_classes):
        table, _ = table_and_classes
        with pytest.raises(ValueError):
            table.norm2(0)
        with pytest.raises(ValueError):
            table.norm2(640)

    def test_dim_must_divide_into_blocks(self):
        with pytest.raises(ValueError):
            SubNormTable(2, 100, block=128)

    def test_recompute_shape_checked(self, table_and_classes):
        table, _ = table_and_classes
        with pytest.raises(ValueError):
            table.recompute(np.zeros((3, 512)))

    def test_storage_matches_paper_2kb(self):
        # 32 classes x (4096/128) blocks x 2 bytes ~ 2 KB in the paper;
        # we store 4-byte words -> 4 KB, same order
        table = SubNormTable(32, 4096, block=128)
        assert table.storage_bytes(word_bytes=2) == 2048
