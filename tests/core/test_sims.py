"""Unit tests for the similarity metrics."""

import numpy as np
import pytest

from repro.core import sims


@pytest.fixture
def setup():
    rng = np.random.default_rng(11)
    queries = rng.integers(-20, 21, size=(6, 256)).astype(np.float64)
    classes = rng.integers(-50, 51, size=(4, 256)).astype(np.float64)
    return queries, classes


class TestDotCosine:
    def test_dot_shapes(self, setup):
        q, c = setup
        assert sims.dot_scores(q, c).shape == (6, 4)

    def test_dot_single_query(self, setup):
        _, c = setup
        assert sims.dot_scores(c[0], c).shape == (1, 4)

    def test_cosine_bounded(self, setup):
        q, c = setup
        scores = sims.cosine_scores(q, c)
        assert (np.abs(scores) <= 1.0 + 1e-12).all()

    def test_cosine_self_similarity(self, setup):
        _, c = setup
        scores = sims.cosine_scores(c, c)
        assert np.allclose(np.diag(scores), 1.0)

    def test_cosine_zero_class_scores_zero(self, setup):
        q, c = setup
        c = c.copy()
        c[1] = 0.0
        scores = sims.cosine_scores(q, c)
        assert np.allclose(scores[:, 1], 0.0)


class TestHardwareMetric:
    def test_same_argmax_as_cosine_for_positive_dots(self, setup):
        q, c = setup
        # shift classes so dots are positive (the common trained regime)
        c = c + 100.0
        q = q + 100.0
        cos_pred = np.argmax(sims.cosine_scores(q, c), axis=1)
        hw_pred = np.argmax(sims.hardware_scores(q, c), axis=1)
        assert np.array_equal(cos_pred, hw_pred)

    def test_sign_preserved(self):
        q = np.array([[1.0, 1.0]])
        classes = np.array([[1.0, 1.0], [-1.0, -1.0]])
        scores = sims.hardware_scores(q, classes)
        assert scores[0, 0] > 0 > scores[0, 1]

    def test_norm_override(self, setup):
        q, c = setup
        fake_norm2 = np.ones(4)
        scores = sims.hardware_scores(q, c, norm2=fake_norm2)
        dots = sims.dot_scores(q, c)
        assert np.allclose(scores, np.sign(dots) * dots * dots)

    def test_custom_divider_is_used(self, setup):
        q, c = setup
        calls = []

        def divider(num, den):
            calls.append(num.shape)
            return num / den

        sims.hardware_scores(q, c, divider=divider)
        assert calls

    def test_zero_norm_class_neutralized(self, setup):
        q, c = setup
        c = c.copy()
        c[2] = 0.0
        scores = sims.hardware_scores(q, c)
        assert np.allclose(scores[:, 2], 0.0)


class TestScoreDispatch:
    def test_metric_names(self, setup):
        q, c = setup
        for metric in sims.METRICS:
            out = sims.score(q, c, metric=metric)
            assert out.shape == (6, 4)

    def test_unknown_metric_raises(self, setup):
        q, c = setup
        with pytest.raises(ValueError, match="unknown metric"):
            sims.score(q, c, metric="euclidean")
