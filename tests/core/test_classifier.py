"""Unit tests for the HDC classifier (training, retraining, inference)."""

import numpy as np
import pytest

from repro.core.classifier import HDClassifier
from repro.core.encoders import GenericEncoder, LevelIdEncoder

DIM = 256


class TestFitPredict:
    def test_learns_toy_problem(self, toy_problem):
        X_train, y_train, X_test, y_test = toy_problem
        clf = HDClassifier(GenericEncoder(dim=DIM, seed=1), epochs=5, seed=1)
        clf.fit(X_train, y_train)
        assert clf.score(X_test, y_test) > 0.8

    def test_predict_returns_original_labels(self, toy_problem):
        X_train, y_train, _, _ = toy_problem
        labels = np.array(["cat", "dog", "owl"])[y_train]
        clf = HDClassifier(GenericEncoder(dim=DIM, seed=1), epochs=2, seed=1)
        clf.fit(X_train, labels)
        preds = clf.predict(X_train[:10])
        assert set(preds) <= {"cat", "dog", "owl"}

    def test_retraining_improves_train_accuracy(self, toy_problem):
        X_train, y_train, _, _ = toy_problem
        no_retrain = HDClassifier(GenericEncoder(dim=DIM, seed=2), epochs=0, seed=2)
        retrained = HDClassifier(GenericEncoder(dim=DIM, seed=2), epochs=8, seed=2)
        no_retrain.fit(X_train, y_train)
        retrained.fit(X_train, y_train)
        assert retrained.score(X_train, y_train) >= no_retrain.score(X_train, y_train)

    def test_report_tracks_epochs(self, fitted_generic_classifier):
        report = fitted_generic_classifier.report_
        assert report.epochs_run >= 1
        assert len(report.updates_per_epoch) == report.epochs_run
        assert 0.0 <= report.final_train_accuracy <= 1.0

    def test_early_stop_on_zero_updates(self, toy_problem):
        X_train, y_train, _, _ = toy_problem
        # easy problem + many epochs: should converge before the cap
        clf = HDClassifier(GenericEncoder(dim=1024, seed=1), epochs=50, seed=1)
        clf.fit(X_train, y_train)
        assert clf.report_.epochs_run < 50

    def test_model_shape(self, fitted_generic_classifier):
        clf = fitted_generic_classifier
        assert clf.model_.shape == (clf.n_classes, clf.encoder.dim)

    def test_length_mismatch_raises(self):
        clf = HDClassifier(GenericEncoder(dim=DIM))
        with pytest.raises(ValueError):
            clf.fit(np.zeros((5, 4)), np.zeros(4))

    def test_use_before_fit_raises(self):
        clf = HDClassifier(GenericEncoder(dim=DIM))
        with pytest.raises(RuntimeError):
            clf.predict(np.zeros((1, 4)))

    def test_metric_hardware_agrees_with_cosine(self, toy_problem):
        X_train, y_train, X_test, _ = toy_problem
        cos = HDClassifier(GenericEncoder(dim=DIM, seed=3), epochs=3, seed=3,
                           metric="cosine").fit(X_train, y_train)
        hw = HDClassifier(GenericEncoder(dim=DIM, seed=3), epochs=3, seed=3,
                          metric="hardware").fit(X_train, y_train)
        agree = np.mean(cos.predict(X_test) == hw.predict(X_test))
        assert agree > 0.9

    def test_shuffle_off_is_deterministic(self, toy_problem):
        X_train, y_train, X_test, _ = toy_problem
        a = HDClassifier(GenericEncoder(dim=DIM, seed=1), epochs=3, shuffle=False)
        b = HDClassifier(GenericEncoder(dim=DIM, seed=1), epochs=3, shuffle=False)
        a.fit(X_train, y_train)
        b.fit(X_train, y_train)
        assert np.array_equal(a.model_, b.model_)

    def test_norms_consistent_after_retraining(self, fitted_generic_classifier):
        clf = fitted_generic_classifier
        expected = (clf.model_**2).sum(axis=1)
        assert np.allclose(clf.norms_.full_norm2(), expected)


class TestDimensionReduction:
    def test_reduced_prediction_shapes(self, fitted_generic_classifier, toy_problem):
        _, _, X_test, _ = toy_problem
        clf = fitted_generic_classifier
        preds = clf.predict(X_test, dim=128)
        assert preds.shape == (len(X_test),)

    def test_updated_norms_beat_constant_at_low_dims(self, toy_problem):
        X_train, y_train, X_test, y_test = toy_problem
        clf = HDClassifier(GenericEncoder(dim=1024, seed=4), epochs=5, seed=4)
        clf.fit(X_train, y_train)
        updated = clf.score(X_test, y_test, dim=128)
        constant = clf.score(X_test, y_test, dim=128, constant_norms=True)
        assert updated >= constant - 0.02

    def test_full_dim_equals_default(self, fitted_generic_classifier, toy_problem):
        _, _, X_test, _ = toy_problem
        clf = fitted_generic_classifier
        assert np.array_equal(
            clf.predict(X_test), clf.predict(X_test, dim=clf.encoder.dim)
        )

    def test_non_block_dim_rejected(self, fitted_generic_classifier, toy_problem):
        _, _, X_test, _ = toy_problem
        with pytest.raises(ValueError):
            fitted_generic_classifier.predict(X_test, dim=100)


class TestModelSurgery:
    def test_quantized_model_range(self, fitted_generic_classifier):
        q = fitted_generic_classifier.quantized_model(4)
        assert np.abs(q).max() <= 7

    def test_one_bit_model_is_sign(self, fitted_generic_classifier):
        q = fitted_generic_classifier.quantized_model(1)
        assert set(np.unique(q)) <= {-1.0, 1.0}

    def test_bad_bits_rejected(self, fitted_generic_classifier):
        with pytest.raises(ValueError):
            fitted_generic_classifier.quantized_model(0)

    def test_with_model_substitutes(self, fitted_generic_classifier, toy_problem):
        _, _, X_test, _ = toy_problem
        clf = fitted_generic_classifier
        clone = clf.with_model(np.zeros_like(clf.model_))
        # degenerate model: all scores equal -> argmax picks class 0
        preds = clone.predict(X_test)
        assert (preds == clone.classes_[0]).all()
        # original untouched
        assert not np.allclose(clf.model_, 0.0)

    def test_with_model_keeps_quality(self, fitted_generic_classifier, toy_problem):
        _, _, X_test, y_test = toy_problem
        clf = fitted_generic_classifier
        clone = clf.with_model(clf.model_.copy())
        assert clone.score(X_test, y_test) == clf.score(X_test, y_test)

    def test_with_model_preserves_configuration(self, fitted_generic_classifier):
        clf = fitted_generic_classifier
        clf.seed = 123
        clf.train_engine = "gram"
        clf.train_memory_budget = 2**20
        clf.encode_jobs = 2
        clone = clf.with_model(clf.model_.copy())
        assert clone.seed == 123
        assert clone.engine == clf.engine
        assert clone.encode_jobs == 2
        assert clone.train_engine == "gram"
        assert clone.train_memory_budget == 2**20


class TestEncoderInterplay:
    def test_prefitted_encoder_reused(self, toy_problem):
        X_train, y_train, _, _ = toy_problem
        enc = LevelIdEncoder(dim=DIM, seed=5)
        enc.fit(X_train)
        ids_before = enc.ids.all().copy()
        HDClassifier(enc, epochs=1, seed=5).fit(X_train, y_train)
        assert np.array_equal(enc.ids.all(), ids_before)

    def test_dim_not_multiple_of_block_rejected(self, toy_problem):
        X_train, y_train, _, _ = toy_problem
        clf = HDClassifier(GenericEncoder(dim=200, seed=1), norm_block=128)
        with pytest.raises(ValueError):
            clf.fit(X_train, y_train)


class TestDotMetric:
    def test_dot_metric_trains_and_predicts(self, toy_problem):
        X_train, y_train, X_test, y_test = toy_problem
        clf = HDClassifier(GenericEncoder(dim=DIM, seed=8), epochs=3, seed=8,
                           metric="dot")
        clf.fit(X_train, y_train)
        # raw dot favors large-norm classes but still learns the easy toy
        assert clf.score(X_test, y_test) > 0.7

    def test_unknown_metric_raises_at_predict(self, toy_problem):
        X_train, y_train, X_test, _ = toy_problem
        clf = HDClassifier(GenericEncoder(dim=DIM, seed=8), epochs=0, seed=8,
                           metric="manhattan")
        clf.fit(X_train, y_train)  # no scoring happens with epochs=0
        with pytest.raises(ValueError, match="unknown metric"):
            clf.predict(X_test[:2])
