"""Property-based tests (hypothesis) on the core HDC invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import hypervector as hv
from repro.core.levels import LevelTable, Quantizer
from repro.core.norms import SubNormTable

DIMS = st.integers(min_value=8, max_value=256)
SEEDS = st.integers(min_value=0, max_value=2**31 - 1)


@given(dim=DIMS, seed=SEEDS)
@settings(max_examples=30, deadline=None)
def test_bind_self_inverse_property(dim, seed):
    rng = np.random.default_rng(seed)
    a = hv.random_bipolar(rng, dim)
    b = hv.random_bipolar(rng, dim)
    assert np.array_equal(hv.bind(hv.bind(a, b), b), a)


@given(dim=DIMS, seed=SEEDS, shift=st.integers(min_value=-500, max_value=500))
@settings(max_examples=30, deadline=None)
def test_permute_preserves_multiset(dim, seed, shift):
    rng = np.random.default_rng(seed)
    a = hv.random_bipolar(rng, dim)
    rolled = hv.permute(a, shift)
    assert sorted(rolled.tolist()) == sorted(a.tolist())
    assert int(rolled.sum()) == int(a.sum())


@given(dim=DIMS, seed=SEEDS, n=st.integers(min_value=1, max_value=12))
@settings(max_examples=30, deadline=None)
def test_bundle_commutative(dim, seed, n):
    rng = np.random.default_rng(seed)
    vs = [hv.random_bipolar(rng, dim) for _ in range(n)]
    forward = hv.bundle(vs)
    backward = hv.bundle(list(reversed(vs)))
    assert np.array_equal(forward, backward)


@given(dim=DIMS, seed=SEEDS)
@settings(max_examples=30, deadline=None)
def test_binary_bipolar_roundtrip_property(dim, seed):
    rng = np.random.default_rng(seed)
    v = hv.random_bipolar(rng, dim)
    assert np.array_equal(hv.to_bipolar(hv.to_binary(v)), v)


@given(
    seed=SEEDS,
    num_levels=st.integers(min_value=2, max_value=32),
)
@settings(max_examples=20, deadline=None)
def test_level_similarity_monotone_property(seed, num_levels):
    rng = np.random.default_rng(seed)
    table = LevelTable(rng, num_levels=num_levels, dim=512)
    profile = table.similarity_profile()
    assert (np.diff(profile) <= 1e-9).all()
    assert profile[0] == 1.0


@given(
    seed=SEEDS,
    num_levels=st.integers(min_value=2, max_value=64),
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=2,
        max_size=20,
    ),
)
@settings(max_examples=40, deadline=None)
def test_quantizer_bins_always_in_range(seed, num_levels, values):
    X = np.asarray(values, dtype=np.float64)[None, :]
    q = Quantizer(num_levels=num_levels)
    q.fit(X)
    probe = np.asarray(values[::-1], dtype=np.float64)[None, :]
    bins = q.transform(probe * 2.0)  # even out-of-range inputs
    assert (bins >= 0).all()
    assert (bins < num_levels).all()


@given(
    seed=SEEDS,
    n_classes=st.integers(min_value=1, max_value=8),
    blocks=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=30, deadline=None)
def test_subnorm_prefix_consistency(seed, n_classes, blocks):
    rng = np.random.default_rng(seed)
    block = 32
    dim = blocks * block
    classes = rng.normal(size=(n_classes, dim))
    table = SubNormTable(n_classes, dim, block=block)
    table.recompute(classes)
    for b in range(1, blocks + 1):
        d = b * block
        assert np.allclose(table.norm2(d), (classes[:, :d] ** 2).sum(axis=1))
    assert np.allclose(table.full_norm2(), table.norm2(dim))
