"""Unit tests for the five HDC encoders."""

import numpy as np
import pytest

from repro.core.encoders import (
    ENCODERS,
    GenericEncoder,
    LevelIdEncoder,
    NgramEncoder,
    PAPER_ORDER,
    PermutationEncoder,
    RandomProjectionEncoder,
    make_encoder,
)

DIM = 256


@pytest.fixture
def data():
    rng = np.random.default_rng(21)
    return rng.normal(size=(20, 12))


@pytest.mark.parametrize("name", PAPER_ORDER)
class TestEncoderContract:
    """Behaviour every encoder must share."""

    def test_fit_then_encode_shapes(self, name, data):
        enc = make_encoder(name, dim=DIM, seed=1)
        enc.fit(data)
        single = enc.encode(data[0])
        batch = enc.encode_batch(data)
        assert single.shape == (DIM,)
        assert batch.shape == (len(data), DIM)
        assert batch.dtype == np.int32

    def test_encoding_is_deterministic(self, name, data):
        enc = make_encoder(name, dim=DIM, seed=1)
        enc.fit(data)
        assert np.array_equal(enc.encode_batch(data), enc.encode_batch(data))

    def test_single_equals_batch_row(self, name, data):
        enc = make_encoder(name, dim=DIM, seed=1)
        enc.fit(data)
        batch = enc.encode_batch(data)
        assert np.array_equal(enc.encode(data[3]), batch[3])

    def test_chunked_encoding_matches_unchunked(self, name, data):
        enc = make_encoder(name, dim=DIM, seed=1)
        enc.fit(data)
        assert np.array_equal(
            enc.encode_batch(data, chunk=3), enc.encode_batch(data, chunk=100)
        )

    def test_same_seed_same_tables(self, name, data):
        a = make_encoder(name, dim=DIM, seed=4)
        b = make_encoder(name, dim=DIM, seed=4)
        a.fit(data)
        b.fit(data)
        assert np.array_equal(a.encode(data[0]), b.encode(data[0]))

    def test_different_seed_different_encoding(self, name, data):
        a = make_encoder(name, dim=DIM, seed=4)
        b = make_encoder(name, dim=DIM, seed=5)
        a.fit(data)
        b.fit(data)
        assert not np.array_equal(a.encode(data[0]), b.encode(data[0]))

    def test_encode_before_fit_raises(self, name, data):
        enc = make_encoder(name, dim=DIM, seed=1)
        with pytest.raises(RuntimeError):
            enc.encode(data[0])

    def test_feature_count_mismatch_raises(self, name, data):
        enc = make_encoder(name, dim=DIM, seed=1)
        enc.fit(data)
        with pytest.raises(ValueError):
            enc.encode_batch(np.zeros((2, 5)))

    def test_similar_inputs_encode_similarly(self, name, data):
        enc = make_encoder(name, dim=2048, seed=1)
        enc.fit(data)
        x = data[0]
        near = x + 0.01 * np.abs(x).max()
        far = -x[::-1]
        h = enc.encode(x).astype(float)
        h_near = enc.encode(near).astype(float)
        h_far = enc.encode(far).astype(float)

        def cos(a, b):
            return a @ b / (np.linalg.norm(a) * np.linalg.norm(b) + 1e-12)

        assert cos(h, h_near) > cos(h, h_far)

    def test_op_profile_positive(self, name, data):
        enc = make_encoder(name, dim=DIM, seed=1)
        enc.fit(data)
        profile = enc.op_profile()
        assert profile.total_ops() > 0
        assert profile.mem_bytes > 0


class TestRegistry:
    def test_known_names(self):
        assert set(PAPER_ORDER) == set(ENCODERS)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown encoder"):
            make_encoder("fourier")

    def test_kwargs_forwarded(self):
        enc = make_encoder("generic", dim=128, window=4, seed=2)
        assert isinstance(enc, GenericEncoder)
        assert enc.window == 4


class TestGenericEncoder:
    def test_window_longer_than_input_rejected(self, data):
        enc = GenericEncoder(dim=DIM, window=20)
        with pytest.raises(ValueError):
            enc.fit(data)  # 12 features < window 20

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            GenericEncoder(dim=DIM, window=0)

    def test_n_windows(self, data):
        enc = GenericEncoder(dim=DIM, window=3).fit(data)
        assert enc.n_windows == 12 - 3 + 1

    def test_window_1_no_ids_equals_level_bundle(self, data):
        """With n=1 and ids off, GENERIC degenerates to bundling levels."""
        enc = GenericEncoder(dim=DIM, window=1, use_ids=False, seed=3).fit(data)
        bins = enc.quantizer.transform(data[:1])
        expected = enc.levels[bins[0]].sum(axis=0, dtype=np.int32)
        assert np.array_equal(enc.encode(data[0]), expected)

    def test_ids_change_encoding(self, data):
        with_ids = GenericEncoder(dim=DIM, seed=3, use_ids=True).fit(data)
        without = GenericEncoder(dim=DIM, seed=3, use_ids=False).fit(data)
        assert not np.array_equal(with_ids.encode(data[0]), without.encode(data[0]))

    def test_ngram_is_generic_without_ids(self, data):
        ngram = NgramEncoder(dim=DIM, seed=3).fit(data)
        generic = GenericEncoder(dim=DIM, seed=3, use_ids=False).fit(data)
        assert np.array_equal(
            ngram.encode_batch(data), generic.encode_batch(data)
        )

    def test_permutation_order_matters_inside_window(self):
        """'abc' and 'bca' windows must encode differently (Section 3.1)."""
        rng = np.random.default_rng(0)
        base = rng.normal(size=(4, 6))
        enc = GenericEncoder(dim=2048, window=3, use_ids=False, seed=1).fit(base)
        x1 = base[0].copy()
        x2 = np.roll(base[0], 1)  # same multiset of values, rotated order
        h1 = enc.encode(x1).astype(float)
        h2 = enc.encode(x2).astype(float)
        assert not np.array_equal(h1, h2)

    def test_encoding_magnitude_bounded_by_windows(self, data):
        enc = GenericEncoder(dim=DIM, seed=1).fit(data)
        h = enc.encode(data[0])
        assert np.abs(h).max() <= enc.n_windows

    def test_op_profile_xor_count_matches_construction(self, data):
        """Folding n permuted levels takes (n-1) XORs, +1 for the id bind."""
        for window in (1, 3, 5):
            enc = GenericEncoder(dim=DIM, window=window, use_ids=True).fit(data)
            w = enc.n_windows
            assert enc.op_profile().xor_ops == w * window * DIM  # (n-1)+1 = n

    def test_op_profile_no_id_xor_without_ids(self, data):
        """use_ids=False must not charge the id-binding XOR."""
        for window in (1, 3):
            enc = GenericEncoder(
                dim=DIM, window=window, use_ids=False
            ).fit(data)
            w = enc.n_windows
            assert enc.op_profile().xor_ops == w * (window - 1) * DIM
        # degenerate case: one-element windows without ids need no XOR at all
        enc1 = GenericEncoder(dim=DIM, window=1, use_ids=False).fit(data)
        assert enc1.op_profile().xor_ops == 0
        assert enc1.op_profile().add_ops > 0


class TestRandomProjection:
    def test_quantize_toggle(self, data):
        q = RandomProjectionEncoder(dim=DIM, seed=1, quantize=True).fit(data)
        r = RandomProjectionEncoder(dim=DIM, seed=1, quantize=False).fit(data)
        assert not np.array_equal(q.encode(data[0]), r.encode(data[0]))

    def test_projection_is_linear_in_bins(self, data):
        enc = RandomProjectionEncoder(dim=DIM, seed=1).fit(data)
        bins = enc.quantizer.transform(data[:1]).astype(np.float64)
        expected = np.rint(bins @ enc.ids.all().astype(np.float64)).astype(np.int32)
        assert np.array_equal(enc.encode_batch(data[:1]), expected)


class TestLevelIdAndPermutation:
    def test_level_id_uses_one_id_per_feature(self, data):
        enc = LevelIdEncoder(dim=DIM, seed=1).fit(data)
        assert enc.ids.all().shape == (12, DIM)

    def test_permutation_shift_structure(self, data):
        """Feature m contributes rho^m of its level."""
        enc = PermutationEncoder(dim=DIM, seed=1).fit(data)
        bins = enc.quantizer.transform(data[:1])[0]
        expected = np.zeros(DIM, dtype=np.int32)
        for m, b in enumerate(bins):
            expected += np.roll(enc.levels.vectors[b].astype(np.int32), m)
        assert np.array_equal(enc.encode(data[0]), expected)
