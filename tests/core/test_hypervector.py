"""Unit tests for the primitive hypervector operations."""

import numpy as np
import pytest

from repro.core import hypervector as hv


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestRandomBipolar:
    def test_values_are_bipolar(self, rng):
        v = hv.random_bipolar(rng, 1000)
        assert set(np.unique(v)) <= {-1, 1}
        assert v.dtype == np.int8

    def test_batch_shape(self, rng):
        batch = hv.random_bipolar(rng, 64, size=10)
        assert batch.shape == (10, 64)

    def test_roughly_balanced(self, rng):
        v = hv.random_bipolar(rng, 10000)
        assert abs(int(v.sum())) < 400  # ~4 sigma

    def test_rejects_bad_dim(self, rng):
        with pytest.raises(ValueError):
            hv.random_bipolar(rng, 0)


class TestBindPermute:
    def test_bind_is_self_inverse(self, rng):
        a = hv.random_bipolar(rng, 512)
        b = hv.random_bipolar(rng, 512)
        assert np.array_equal(hv.bind(hv.bind(a, b), b), a)

    def test_bind_preserves_bipolarity(self, rng):
        a = hv.random_bipolar(rng, 128)
        b = hv.random_bipolar(rng, 128)
        assert set(np.unique(hv.bind(a, b))) <= {-1, 1}

    def test_bound_vector_is_dissimilar_to_inputs(self, rng):
        a = hv.random_bipolar(rng, 4096)
        b = hv.random_bipolar(rng, 4096)
        assert abs(hv.cosine(hv.bind(a, b), a)) < 0.1

    def test_permute_by_zero_is_identity(self, rng):
        a = hv.random_bipolar(rng, 64)
        assert hv.permute(a, 0) is a

    def test_permute_roundtrip(self, rng):
        a = hv.random_bipolar(rng, 64)
        assert np.array_equal(hv.permute(hv.permute(a, 5), -5), a)

    def test_permute_decorrelates(self, rng):
        a = hv.random_bipolar(rng, 4096)
        assert abs(hv.cosine(hv.permute(a, 1), a)) < 0.1

    def test_permute_batch_last_axis(self, rng):
        batch = hv.random_bipolar(rng, 16, size=4)
        rolled = hv.permute(batch, 3)
        assert np.array_equal(rolled[2], np.roll(batch[2], 3))


class TestBundle:
    def test_bundle_sums_elementwise(self, rng):
        vs = [hv.random_bipolar(rng, 32) for _ in range(5)]
        out = hv.bundle(vs)
        assert out.dtype == np.int32
        assert np.array_equal(out, np.sum(vs, axis=0))

    def test_bundle_single_vector(self, rng):
        v = hv.random_bipolar(rng, 32)
        assert np.array_equal(hv.bundle([v]), v.astype(np.int32))

    def test_bundle_majority_is_similar_to_members(self, rng):
        vs = [hv.random_bipolar(rng, 4096) for _ in range(9)]
        out = hv.bundle(vs)
        assert hv.cosine(out, vs[0]) > 0.15


class TestSignQuantize:
    def test_deterministic_tie_break(self):
        out = hv.sign_quantize(np.array([3, -2, 0, 5]))
        assert np.array_equal(out, [1, -1, 1, 1])

    def test_random_tie_break_stays_bipolar(self, rng):
        out = hv.sign_quantize(np.zeros(1000, dtype=np.int32), rng=rng)
        assert set(np.unique(out)) <= {-1, 1}
        assert abs(int(out.sum())) < 200


class TestConversions:
    def test_binary_bipolar_roundtrip(self, rng):
        v = hv.random_bipolar(rng, 256)
        assert np.array_equal(hv.to_bipolar(hv.to_binary(v)), v)

    def test_mapping_convention(self):
        # +1 <-> 0, -1 <-> 1 (XOR identity is the all-zero binary vector)
        assert hv.to_binary(np.array([1, -1], dtype=np.int8)).tolist() == [0, 1]
        assert hv.to_bipolar(np.array([0, 1], dtype=np.uint8)).tolist() == [1, -1]

    def test_xor_equals_bipolar_product(self, rng):
        a = hv.random_bipolar(rng, 128)
        b = hv.random_bipolar(rng, 128)
        xor = hv.to_binary(a) ^ hv.to_binary(b)
        assert np.array_equal(hv.to_bipolar(xor), hv.bind(a, b))


class TestSimilarities:
    def test_cosine_of_identical(self, rng):
        a = hv.random_bipolar(rng, 512)
        assert hv.cosine(a, a) == pytest.approx(1.0)

    def test_cosine_of_negation(self, rng):
        a = hv.random_bipolar(rng, 512)
        assert hv.cosine(a, -a) == pytest.approx(-1.0)

    def test_cosine_zero_vector(self):
        assert hv.cosine(np.zeros(8), np.ones(8)) == 0.0

    def test_dot_uses_wide_accumulator(self):
        a = np.full(100000, 127, dtype=np.int8)
        assert hv.dot(a, a) == 100000 * 127 * 127

    def test_hamming_counts_disagreements(self):
        a = np.array([1, -1, 1, -1], dtype=np.int8)
        b = np.array([1, 1, 1, 1], dtype=np.int8)
        assert hv.hamming(a, b) == 2
        assert hv.normalized_hamming(a, b) == pytest.approx(0.5)
