"""Unit tests for config-image export/import and persistence."""

import numpy as np
import pytest

from repro.core import model_io
from repro.core.classifier import HDClassifier
from repro.core.encoders import GenericEncoder, LevelIdEncoder


class TestExportImport:
    def test_roundtrip_predictions_match(self, fitted_generic_classifier, toy_problem):
        _, _, X_test, _ = toy_problem
        clf = fitted_generic_classifier
        image = model_io.export_model(clf)
        restored = model_io.import_model(image)
        assert np.array_equal(restored.predict(X_test), clf.predict(X_test))

    def test_image_carries_geometry(self, fitted_generic_classifier):
        clf = fitted_generic_classifier
        image = model_io.export_model(clf)
        assert image.dim == clf.encoder.dim
        assert image.n_classes == clf.n_classes
        assert image.level_table.shape == (clf.encoder.num_levels, clf.encoder.dim)

    def test_unfitted_classifier_rejected(self):
        clf = HDClassifier(GenericEncoder(dim=256))
        with pytest.raises(RuntimeError):
            model_io.export_model(clf)

    def test_non_generic_encoder_rejected(self, toy_problem):
        X_train, y_train, _, _ = toy_problem
        clf = HDClassifier(LevelIdEncoder(dim=256, seed=1), epochs=1, seed=1)
        clf.fit(X_train, y_train)
        with pytest.raises(TypeError):
            model_io.export_model(clf)

    def test_no_ids_image(self, toy_problem):
        X_train, y_train, X_test, _ = toy_problem
        clf = HDClassifier(
            GenericEncoder(dim=256, seed=2, use_ids=False), epochs=1, seed=2
        )
        clf.fit(X_train, y_train)
        image = model_io.export_model(clf)
        assert image.seed_id is None
        restored = model_io.import_model(image)
        assert np.array_equal(restored.predict(X_test), clf.predict(X_test))


class TestSaveLoad:
    def test_file_roundtrip(self, fitted_generic_classifier, toy_problem, tmp_path):
        _, _, X_test, _ = toy_problem
        clf = fitted_generic_classifier
        image = model_io.export_model(clf)
        path = tmp_path / "model.npz"
        model_io.save_image(image, path)
        loaded = model_io.load_image(path)
        assert loaded.dim == image.dim
        assert np.array_equal(loaded.class_matrix, image.class_matrix)
        assert np.array_equal(loaded.level_table, image.level_table)
        restored = model_io.import_model(loaded)
        assert np.array_equal(restored.predict(X_test), clf.predict(X_test))

    def test_version_check(self, fitted_generic_classifier, tmp_path):
        image = model_io.export_model(fitted_generic_classifier)
        path = tmp_path / "model.npz"
        model_io.save_image(image, path)
        # corrupt the version
        import json

        import numpy as np_mod

        with np_mod.load(path, allow_pickle=False) as data:
            arrays = {k: data[k] for k in data.files}
        header = json.loads(bytes(arrays["header"].tobytes()).decode())
        header["format_version"] = 999
        arrays["header"] = np_mod.frombuffer(
            json.dumps(header).encode(), dtype=np_mod.uint8
        )
        np_mod.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="version"):
            model_io.load_image(path)
