"""Unit tests for the dataset container, generators and registry."""

import numpy as np
import pytest

from repro.datasets import (
    CLASSIFICATION_DATASETS,
    CLUSTER_DATASETS,
    Dataset,
    load_dataset,
    make_cluster_dataset,
)
from repro.datasets.registry import load_suite
from repro.datasets.synthetic import (
    make_markov_dataset,
    make_motif_dataset,
    make_prototype_dataset,
    make_tabular_dataset,
)


class TestDatasetContainer:
    def test_describe(self, tiny_dataset):
        text = tiny_dataset.describe()
        assert "CARDIO" in text
        assert "classes=3" in text

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Dataset("x", np.zeros((3, 2)), np.zeros(2), np.zeros((1, 2)), np.zeros(1))
        with pytest.raises(ValueError):
            Dataset("x", np.zeros((3, 2)), np.zeros(3), np.zeros((1, 3)), np.zeros(1))

    def test_counts(self, tiny_dataset):
        assert tiny_dataset.n_train == len(tiny_dataset.X_train)
        assert tiny_dataset.n_test == len(tiny_dataset.X_test)
        assert tiny_dataset.n_classes == 3


class TestGenerators:
    def test_prototype_shapes_and_determinism(self):
        X1, y1 = make_prototype_dataset(4, 64, 50, seed=1)
        X2, y2 = make_prototype_dataset(4, 64, 50, seed=1)
        assert X1.shape == (50, 64)
        assert np.array_equal(X1, X2)
        assert np.array_equal(y1, y2)

    def test_prototype_classes_cover_range(self):
        _, y = make_prototype_dataset(5, 64, 300, seed=2)
        assert set(np.unique(y)) == set(range(5))

    def test_motif_zero_mean_columns(self):
        """The anti-RP property: per-position means are ~equal across classes."""
        X, y = make_motif_dataset(2, 128, 3000, seed=3, motifs_per_sample=4)
        mean0 = X[y == 0].mean(axis=0)
        mean1 = X[y == 1].mean(axis=0)
        assert np.abs(mean0 - mean1).max() < 0.35

    def test_motif_anchored_reuses_positions(self):
        X, y = make_motif_dataset(
            3, 64, 60, seed=4, anchored=True, motifs_per_sample=3
        )
        assert X.shape == (60, 64)

    def test_markov_rows_are_centered(self):
        X, _ = make_markov_dataset(3, 50, 20, seed=5)
        assert np.abs(X.mean(axis=1)).max() < 1e-9

    def test_markov_alphabet_bounded(self):
        X, _ = make_markov_dataset(3, 50, 20, seed=5, alphabet_size=8)
        # each centered row spans at most the alphabet range
        row_span = X.max(axis=1) - X.min(axis=1)
        assert (row_span <= 8).all()

    def test_tabular_binary_mode(self):
        X, _ = make_tabular_dataset(2, 30, 40, seed=6, binary=True)
        assert set(np.unique(X)) <= {0.0, 1.0}

    def test_tabular_pair_interactions_are_mean_free(self):
        X, y = make_tabular_dataset(
            2, 20, 4000, seed=7, separation=0.0, pair_interaction=2.0,
            informative_fraction=0.0,
        )
        # marginal means carry no signal ...
        gap = np.abs(X[y == 0].mean(axis=0) - X[y == 1].mean(axis=0))
        assert gap.max() < 0.3
        # ... but adjacent-pair products do, for at least some pairs (the
        # per-class pair signs are random, so not every pair disagrees)
        diffs = []
        for p in range(10):
            prod = X[:, 2 * p] * X[:, 2 * p + 1]
            diffs.append(abs(prod[y == 0].mean() - prod[y == 1].mean()))
        assert max(diffs) > 1.0


class TestRegistry:
    def test_eleven_datasets(self):
        assert len(CLASSIFICATION_DATASETS) == 11

    @pytest.mark.parametrize("name", sorted(CLASSIFICATION_DATASETS))
    def test_tiny_profile_loads(self, name):
        ds = load_dataset(name, "tiny")
        assert ds.n_train > 0
        assert ds.n_test > 0
        assert ds.n_classes == CLASSIFICATION_DATASETS[name].n_classes

    def test_profiles_scale_sizes(self):
        tiny = load_dataset("MNIST", "tiny")
        bench = load_dataset("MNIST", "bench")
        assert bench.n_train > tiny.n_train
        assert bench.n_features >= tiny.n_features

    def test_deterministic(self):
        a = load_dataset("EEG", "tiny")
        b = load_dataset("EEG", "tiny")
        assert np.array_equal(a.X_train, b.X_train)

    def test_order_free_datasets_disable_ids(self):
        assert not load_dataset("LANG", "tiny").use_position_ids
        assert not load_dataset("EEG", "tiny").use_position_ids
        assert load_dataset("MNIST", "tiny").use_position_ids

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            load_dataset("CIFAR", "tiny")

    def test_unknown_profile(self):
        with pytest.raises(ValueError, match="unknown profile"):
            load_dataset("MNIST", "huge")

    def test_load_suite(self):
        suite = load_suite("tiny")
        assert set(suite) == set(CLASSIFICATION_DATASETS)


class TestClusterDatasets:
    def test_five_benchmarks(self):
        assert set(CLUSTER_DATASETS) == {
            "Hepta", "Tetra", "TwoDiamonds", "WingNut", "Iris"
        }

    @pytest.mark.parametrize("name", sorted(CLUSTER_DATASETS))
    def test_loads_and_k_matches_truth(self, name):
        X, y, k = make_cluster_dataset(name, seed=1, scale=0.2)
        assert len(X) == len(y)
        assert len(np.unique(y)) == k

    def test_arrival_order_is_mixed(self):
        """First k samples must not all share a label (HDC centroid seeding)."""
        for name in CLUSTER_DATASETS:
            _, y, k = make_cluster_dataset(name, seed=1, scale=0.3)
            assert len(set(y[: max(8, 2 * k)].tolist())) > 1

    def test_hepta_separable(self):
        X, y, k = make_cluster_dataset("Hepta", seed=2)
        from repro.baselines import KMeans
        from repro.eval.metrics import normalized_mutual_information

        km = KMeans(k=k, seed=2).fit(X)
        assert normalized_mutual_information(y, km.labels_) > 0.95

    def test_unknown_cluster_dataset(self):
        with pytest.raises(ValueError, match="unknown clustering dataset"):
            make_cluster_dataset("Moons")
