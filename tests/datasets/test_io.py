"""Unit tests for dataset persistence."""

import numpy as np
import pytest

from repro.datasets import io as dsio
from repro.datasets import load_dataset


class TestSaveLoad:
    def test_roundtrip(self, tmp_path, tiny_dataset):
        path = tmp_path / "cardio.npz"
        dsio.save(tiny_dataset, path)
        restored = dsio.load(path)
        assert restored.name == tiny_dataset.name
        assert restored.domain == tiny_dataset.domain
        assert restored.use_position_ids == tiny_dataset.use_position_ids
        assert np.array_equal(restored.X_train, tiny_dataset.X_train)
        assert np.array_equal(restored.y_test, tiny_dataset.y_test)

    def test_order_free_flag_survives(self, tmp_path):
        ds = load_dataset("LANG", "tiny")
        path = tmp_path / "lang.npz"
        dsio.save(ds, path)
        assert not dsio.load(path).use_position_ids

    def test_version_check(self, tmp_path, tiny_dataset):
        import json

        path = tmp_path / "x.npz"
        dsio.save(tiny_dataset, path)
        with np.load(path, allow_pickle=False) as data:
            arrays = {k: data[k] for k in data.files}
        header = json.loads(bytes(arrays["header"].tobytes()).decode())
        header["format_version"] = 99
        arrays["header"] = np.frombuffer(
            json.dumps(header).encode(), dtype=np.uint8
        )
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="version"):
            dsio.load(path)

    def test_export_suite(self, tmp_path):
        paths = dsio.export_suite(tmp_path, profile="tiny")
        assert len(paths) == 11
        sample = dsio.load(paths[0])
        assert sample.n_train > 0
