"""RTL training/clustering: cross-validation against the functional model."""

import numpy as np
import pytest

from repro.core.encoders import GenericEncoder
from repro.eval.metrics import normalized_mutual_information
from repro.hardware.accelerator import GenericAccelerator
from repro.hardware.spec import AppSpec, Mode
from repro.rtl.train_top import GenericRTLTrainer
from repro.rtl.trace import Trace

DIM = 128
LANES = 16


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(41)
    protos = rng.normal(scale=1.6, size=(3, 10))
    y = rng.integers(0, 3, size=60)
    X = protos[y] + rng.normal(scale=0.5, size=(60, 10))
    return X, y


@pytest.fixture(scope="module")
def tables(problem):
    X, _ = problem
    enc = GenericEncoder(dim=DIM, num_levels=8, seed=17)
    enc.fit(X)
    return enc


def make_trainer(tables, n_classes=3, with_copy=False, trace=None):
    trainer = GenericRTLTrainer(lanes=LANES, norm_block=64, trace=trace)
    trainer.configure(
        dim=DIM,
        n_features=tables.n_features,
        n_classes=n_classes,
        level_table=tables.levels.vectors,
        seed_id=tables.id_generator.seed,
        lo=tables.quantizer.lo,
        hi=tables.quantizer.hi,
        with_copy_set=with_copy,
    )
    return trainer


class TestRTLTraining:
    def test_matches_functional_accelerator_model(self, problem, tables):
        """Same order, same rule -> identical class matrices."""
        X, y = problem
        trainer = make_trainer(tables)
        trainer.train(X, y, epochs=3, seed=11)

        acc = GenericAccelerator()
        acc.configure(AppSpec(dim=DIM, n_features=X.shape[1], n_classes=3,
                              mode=Mode.TRAIN))
        acc.load_tables(tables.levels.vectors, tables.id_generator.seed,
                        tables.quantizer.lo, tables.quantizer.hi)
        acc.train(X, y, epochs=3, seed=11)

        for c in range(3):
            rtl_class = trainer.learn.read_class(c)
            assert np.array_equal(rtl_class, acc.search.classes[c].astype(np.int64))

    def test_predictions_match_functional(self, problem, tables):
        X, y = problem
        trainer = make_trainer(tables)
        trainer.train(X, y, epochs=3, seed=11)

        acc = GenericAccelerator()
        acc.configure(AppSpec(dim=DIM, n_features=X.shape[1], n_classes=3))
        acc.load_tables(tables.levels.vectors, tables.id_generator.seed,
                        tables.quantizer.lo, tables.quantizer.hi)
        acc.train(X, y, epochs=3, seed=11)

        rtl_preds = trainer.infer(X[:20])
        func_preds = acc.infer(X[:20]).predictions
        assert np.array_equal(rtl_preds, func_preds)

    def test_learns_the_problem(self, problem, tables):
        X, y = problem
        trainer = make_trainer(tables)
        report = trainer.train(X, y, epochs=4, seed=2)
        assert report.inputs == len(X)
        preds = trainer.infer(X)
        assert np.mean(preds == y) > 0.85

    def test_label_capacity_checked(self, problem, tables):
        X, _ = problem
        trainer = make_trainer(tables, n_classes=2)
        with pytest.raises(ValueError):
            trainer.train(X, np.arange(len(X)) % 3, epochs=1)

    def test_use_before_configure(self):
        with pytest.raises(RuntimeError):
            GenericRTLTrainer().train(np.zeros((2, 4)), [0, 1])

    def test_trace_records_learning_events(self, problem, tables):
        X, y = problem
        trace = Trace()
        trainer = make_trainer(tables, trace=trace)
        trainer.train(X[:20], y[:20], epochs=2, seed=3)
        assert trace.count("class_rmw") > 0
        assert trace.count("norm_refresh") >= 3
        rendered = trace.render(width=60)
        assert "class_rmw" in rendered


class TestRTLClustering:
    def test_clusters_blobs(self, tables):
        rng = np.random.default_rng(5)
        centers = np.array([[0.0] * 10, [5.0] * 10])
        y = rng.integers(0, 2, size=40)
        X = centers[y] + rng.normal(scale=0.4, size=(40, 10))
        # refit tables on this data's range
        enc = GenericEncoder(dim=DIM, num_levels=8, seed=17)
        enc.fit(X)
        trainer = make_trainer(enc, n_classes=2, with_copy=True)
        report = trainer.cluster(X, k=2, epochs=6)
        assert normalized_mutual_information(y, report.labels) > 0.7

    def test_requires_copy_set(self, problem, tables):
        X, _ = problem
        trainer = make_trainer(tables, with_copy=False)
        with pytest.raises(RuntimeError, match="copy"):
            trainer.cluster(X, k=2)

    def test_k_bounds_checked(self, problem, tables):
        X, _ = problem
        trainer = make_trainer(tables, n_classes=3, with_copy=True)
        with pytest.raises(ValueError):
            trainer.cluster(X, k=5)
        with pytest.raises(ValueError):
            trainer.cluster(X[:1], k=3)


class TestLearnUnitPrimitives:
    def test_row_budget_includes_temp_and_copy(self):
        from repro.rtl.learn import RTLLearnUnit

        unit = RTLLearnUnit(dim=64, lanes=16, n_classes=3, with_copy_set=True,
                            norm_block=64)
        # 3 active + 3 copy + 1 temp slots per pass, 4 passes
        assert unit.class_mems[0].rows == 4 * 7

    def test_update_from_temp_applies_sign(self):
        from repro.rtl.learn import RTLLearnUnit

        unit = RTLLearnUnit(dim=32, lanes=16, n_classes=2, norm_block=32)
        enc = np.arange(32, dtype=np.int64)
        for p in range(2):
            unit.store_temp(p, enc[p * 16 : (p + 1) * 16])
        unit.apply_update_from_temp(0, sign=-1)
        assert np.array_equal(unit.read_class(0), -enc)

    def test_norm_refresh_matches_numpy(self):
        from repro.rtl.learn import RTLLearnUnit

        unit = RTLLearnUnit(dim=64, lanes=16, n_classes=2, norm_block=32)
        enc = np.arange(64, dtype=np.int64) - 32
        for p in range(4):
            unit.store_temp(p, enc[p * 16 : (p + 1) * 16])
        unit.apply_update_from_temp(1, sign=+1)
        unit.refresh_norm(1)
        assert unit.norms()[1] == float((enc * enc).sum())

    def test_copy_slot_requires_copy_set(self):
        from repro.rtl.learn import RTLLearnUnit

        unit = RTLLearnUnit(dim=32, lanes=16, n_classes=2, norm_block=32)
        with pytest.raises(RuntimeError):
            unit.apply_update_from_temp(0, sign=1, copy_set=True)
