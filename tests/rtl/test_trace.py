"""Unit tests for the RTL trace recorder."""

from repro.rtl.trace import Trace, TraceEvent


class TestTrace:
    def test_record_and_query(self):
        t = Trace()
        t.record(0, "a")
        t.record(3, "b", value=7)
        t.record(5, "a")
        assert t.count("a") == 2
        assert t.count("b") == 1
        assert t.of("b")[0].value == 7
        assert t.last_cycle() == 5

    def test_signal_order_is_first_seen(self):
        t = Trace()
        t.record(1, "z")
        t.record(2, "a")
        assert t.signals() == ["z", "a"]

    def test_disabled_trace_records_nothing(self):
        t = Trace(enabled=False)
        t.record(0, "a")
        assert t.events == []

    def test_between_slices_by_cycle(self):
        t = Trace()
        for c in range(10):
            t.record(c, "s")
        sliced = t.between(3, 6)
        assert [e.cycle for e in sliced.events] == [3, 4, 5]

    def test_render_empty(self):
        assert Trace().render() == "(empty trace)"

    def test_render_shows_marks(self):
        t = Trace()
        t.record(0, "sig")
        t.record(9, "sig")
        out = t.render(width=10)
        row = next(l for l in out.splitlines() if l.startswith("sig"))
        assert row.count("#") == 2
        assert "cycles 0..9" in out

    def test_render_compresses_long_traces(self):
        t = Trace()
        for c in range(0, 1000, 10):
            t.record(c, "s")
        out = t.render(width=50)
        row = next(l for l in out.splitlines() if l.startswith("s "))
        assert len(row.split("|")[1]) == 50

    def test_events_are_immutable(self):
        e = TraceEvent(1, "x", 2)
        try:
            e.cycle = 5
            raised = False
        except Exception:
            raised = True
        assert raised
