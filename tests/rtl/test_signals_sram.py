"""Unit tests for the RTL primitives."""

import numpy as np
import pytest

from repro.rtl.signals import Register, RegisterFile, clock_edge
from repro.rtl.sram import SyncSRAM


class TestRegister:
    def test_two_phase_update(self):
        r = Register("r", 0)
        r.set_next(5)
        assert r.value == 0  # not visible before the edge
        r.tick()
        assert r.value == 5

    def test_tick_without_schedule_is_noop(self):
        r = Register("r", 3)
        r.tick()
        assert r.value == 3

    def test_reset(self):
        r = Register("r", 7)
        r.set_next(1)
        r.tick()
        r.reset()
        assert r.value == 7

    def test_array_values_are_copied(self):
        arr = np.array([1, 2, 3])
        r = Register("r", arr)
        arr[0] = 99
        assert r.value[0] == 1
        r.set_next(arr)
        arr[1] = 98
        r.tick()
        assert r.value[1] == 2

    def test_register_file_ticks_all(self):
        rf = RegisterFile()
        a = rf.new("a", 0)
        b = rf.new("b", 0)
        a.set_next(1)
        b.set_next(2)
        clock_edge(rf)
        assert (a.value, b.value) == (1, 2)


class TestSyncSRAM:
    def test_read_latency_one_cycle(self):
        mem = SyncSRAM("m", rows=4, width=2)
        mem.load(np.array([[1, 2], [3, 4], [5, 6], [7, 8]]))
        mem.issue_read(2)
        mem.tick()
        assert mem.read_data.tolist() == [5, 6]

    def test_write_commits_at_edge(self):
        mem = SyncSRAM("m", rows=2, width=1)
        mem.issue_write(1, np.array([9]))
        assert mem.data[1, 0] == 0
        mem.tick()
        assert mem.data[1, 0] == 9

    def test_single_port_conflict(self):
        mem = SyncSRAM("m", rows=2, width=1)
        mem.issue_read(0)
        with pytest.raises(RuntimeError):
            mem.issue_write(1, np.array([1]))
        mem.tick()
        mem.issue_write(1, np.array([1]))
        with pytest.raises(RuntimeError):
            mem.issue_read(0)

    def test_access_counters(self):
        mem = SyncSRAM("m", rows=2, width=1)
        mem.issue_write(0, np.array([1]))
        mem.tick()
        mem.issue_read(0)
        mem.tick()
        assert (mem.reads, mem.writes) == (1, 1)
        mem.reset_counters()
        assert (mem.reads, mem.writes) == (0, 0)

    def test_bounds_checked(self):
        mem = SyncSRAM("m", rows=2, width=1)
        with pytest.raises(IndexError):
            mem.issue_read(5)
        with pytest.raises(IndexError):
            mem.issue_write(-1, np.array([0]))

    def test_read_before_any_read_raises(self):
        mem = SyncSRAM("m", rows=2, width=1)
        with pytest.raises(RuntimeError):
            _ = mem.read_data

    def test_load_shape_checked(self):
        mem = SyncSRAM("m", rows=2, width=2)
        with pytest.raises(ValueError):
            mem.load(np.zeros((3, 2)))
        with pytest.raises(ValueError):
            mem.load(np.zeros((2, 3)))
