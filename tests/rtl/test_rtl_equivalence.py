"""Cross-validation: the RTL twin against the functional models.

These are the Modelsim-style checks of the paper's flow: the clocked
pipeline must compute exactly what the algorithm specifies.
"""

import numpy as np
import pytest

from repro.core import model_io
from repro.core.classifier import HDClassifier
from repro.core.encoders import GenericEncoder
from repro.hardware import controller
from repro.hardware.accelerator import GenericAccelerator
from repro.hardware.params import ArchParams
from repro.hardware.spec import AppSpec
from repro.rtl import GenericRTL

DIM = 128
LANES = 16


@pytest.fixture(scope="module")
def small_problem():
    rng = np.random.default_rng(31)
    protos = rng.normal(scale=1.5, size=(3, 12))
    y = rng.integers(0, 3, size=90)
    X = protos[y] + rng.normal(scale=0.5, size=(90, 12))
    return X, y


@pytest.fixture(scope="module", params=[True, False], ids=["ids", "no-ids"])
def rtl_and_reference(request, small_problem):
    X, y = small_problem
    enc = GenericEncoder(dim=DIM, num_levels=8, seed=13, window=3,
                         use_ids=request.param)
    clf = HDClassifier(enc, epochs=3, seed=13, norm_block=64)
    clf.fit(X, y)
    image = model_io.export_model(clf)
    rtl = GenericRTL(lanes=LANES, norm_block=64).load_image(image)
    return rtl, clf, image, X, y


class TestEncodingEquivalence:
    def test_bit_exact_with_software(self, rtl_and_reference):
        rtl, clf, _, X, _ = rtl_and_reference
        for x in X[:8]:
            result = rtl.infer_one(x)
            expected = clf.encoder.encode(x)
            assert np.array_equal(result.encoding, expected)

    def test_every_pass_contributes_m_dims(self, rtl_and_reference):
        rtl, _, _, X, _ = rtl_and_reference
        result = rtl.infer_one(X[0])
        assert len(result.pass_cycles) == DIM // LANES


class TestPredictionEquivalence:
    def test_matches_functional_accelerator(self, rtl_and_reference):
        rtl, clf, image, X, _ = rtl_and_reference
        acc = GenericAccelerator()
        acc.load_image(image)
        functional = acc.infer(X[:12]).predictions
        structural = [rtl.infer_one(x).prediction for x in X[:12]]
        assert np.array_equal(np.asarray(structural), functional)

    def test_scores_match_search_unit(self, rtl_and_reference):
        rtl, clf, image, X, _ = rtl_and_reference
        acc = GenericAccelerator()
        acc.load_image(image)
        x = X[0]
        rtl_result = rtl.infer_one(x)
        encoding = acc.encoder.encode(x).astype(np.float64)
        functional_scores = acc.search.scores(encoding)
        assert np.allclose(rtl_result.scores, functional_scores, rtol=1e-9)


class TestCycleAgreement:
    def test_cycles_track_analytical_model(self, rtl_and_reference):
        """The closed-form controller model predicts the RTL cycle count
        within a small factor (pipeline-fill bookkeeping differs)."""
        rtl, clf, image, X, _ = rtl_and_reference
        params = ArchParams(lanes=LANES, norm_block=64)
        spec = AppSpec(
            dim=DIM, n_features=X.shape[1], window=3,
            n_classes=3, use_ids=image.use_ids,
        )
        analytical, _ = controller.inference(spec, params)
        measured = rtl.infer_one(X[0]).cycles
        assert 0.5 < measured / analytical < 2.0

    def test_cycles_scale_with_dim(self, small_problem):
        X, y = small_problem
        cycles = {}
        for dim in (64, 128):
            enc = GenericEncoder(dim=dim, num_levels=8, seed=13)
            clf = HDClassifier(enc, epochs=1, seed=13, norm_block=64)
            clf.fit(X, y)
            rtl = GenericRTL(lanes=LANES, norm_block=64).load_image(
                model_io.export_model(clf)
            )
            cycles[dim] = rtl.infer_one(X[0]).cycles
        assert cycles[128] > cycles[64]


class TestSramTraffic:
    def test_class_memory_reads_match_structure(self, rtl_and_reference):
        """Every pass reads n_C rows from each of the m class memories."""
        rtl, _, _, X, _ = rtl_and_reference
        for mem in rtl.search.class_mems:
            mem.reset_counters()
        rtl.infer_one(X[0])
        passes = DIM // LANES
        for mem in rtl.search.class_mems:
            assert mem.reads == passes * 3  # n_C = 3 rows per pass

    def test_seed_reads_once_per_m_windows(self, small_problem):
        X, y = small_problem
        enc = GenericEncoder(dim=DIM, num_levels=8, seed=13, use_ids=True)
        clf = HDClassifier(enc, epochs=1, seed=13, norm_block=64)
        clf.fit(X, y)
        rtl = GenericRTL(lanes=LANES, norm_block=64).load_image(
            model_io.export_model(clf)
        )
        rtl.encoder.seed_reads = 0
        rtl.infer_one(X[0])
        n_windows = X.shape[1] - 3 + 1
        passes = DIM // LANES
        expected = passes * -(-n_windows // LANES)
        assert rtl.encoder.seed_reads == expected


class TestProgrammingErrors:
    def test_use_before_load(self):
        with pytest.raises(RuntimeError):
            GenericRTL().infer_one(np.zeros(4))

    def test_dim_lane_mismatch(self, rtl_and_reference):
        _, _, image, _, _ = rtl_and_reference
        with pytest.raises(ValueError):
            GenericRTL(lanes=48).load_image(image)
