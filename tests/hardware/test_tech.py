"""Unit tests for the technology-node scaling tables."""

import pytest

from repro.hardware.tech import known_nodes, scale_delay, scale_energy, scale_power


class TestScaling:
    def test_identity(self):
        assert scale_energy(5.0, 45, 45) == 5.0
        assert scale_delay(5.0, 14, 14) == 5.0

    def test_energy_shrinks_with_node(self):
        assert scale_energy(1.0, 45, 14) < 1.0
        assert scale_energy(1.0, 14, 45) > 1.0

    def test_delay_shrinks_with_node(self):
        assert scale_delay(1.0, 45, 14) < 1.0

    def test_roundtrip(self):
        down = scale_energy(1.0, 28, 14)
        up = scale_energy(down, 14, 28)
        assert up == pytest.approx(1.0)

    def test_monotone_across_nodes(self):
        nodes = known_nodes()
        energies = [scale_energy(1.0, 45, n) for n in nodes]
        # larger node -> larger energy
        assert energies == sorted(energies)

    def test_interpolated_node(self):
        # 20 nm is not in the table; must land between 22 and 14
        e22 = scale_energy(1.0, 45, 22)
        e14 = scale_energy(1.0, 45, 14)
        e20 = scale_energy(1.0, 45, 20)
        assert e14 < e20 < e22

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            scale_energy(1.0, 45, 3)

    def test_power_is_energy_over_delay(self):
        e = scale_energy(1.0, 28, 14)
        d = scale_delay(1.0, 28, 14)
        assert scale_power(1.0, 28, 14) == pytest.approx(e / d)

    def test_28nm_to_14nm_is_meaningful(self):
        # the paper's Datta scaling step: energy roughly halves or better
        assert scale_energy(1.0, 28, 14) < 0.7
