"""FaultSpec: the unified fault description over faults.py + voltage.py."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.hardware.faults import corrupt_model, inject_bitflips, quantize_to_bits
from repro.hardware.faultspec import FAULT_TARGETS, FaultSpec
from repro.hardware.voltage import (
    MAX_ERROR_RATE,
    error_rate_for_voltage,
    operating_point,
)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError, match="target"):
            FaultSpec(target="dram")
        with pytest.raises(ValueError, match="bit-width"):
            FaultSpec(bits=0)
        with pytest.raises(ValueError, match="error rate"):
            FaultSpec(error_rate=1.5)

    def test_frozen_and_hashable(self):
        spec = FaultSpec(error_rate=0.01)
        with pytest.raises(Exception):
            spec.error_rate = 0.5
        assert {spec: 1}[FaultSpec(error_rate=0.01)] == 1

    def test_targets_are_the_three_generic_memories(self):
        assert FAULT_TARGETS == ("class", "level", "id")

    def test_active(self):
        assert not FaultSpec().active
        assert FaultSpec(error_rate=1e-4).active


class TestVoltageSide:
    def test_from_voltage_inverts_the_voltage_model(self):
        spec = FaultSpec.from_voltage(0.85)
        assert spec.error_rate == pytest.approx(error_rate_for_voltage(0.85))
        assert spec.vdd == 0.85
        point = spec.voltage_point
        assert point is not None
        assert point.vdd == pytest.approx(0.85, abs=5e-3)

    def test_voltage_point_matches_operating_point(self):
        spec = FaultSpec(error_rate=1e-4)
        assert spec.voltage_point == operating_point(1e-4)

    def test_voltage_point_none_beyond_modeled_range(self):
        assert FaultSpec(error_rate=2 * MAX_ERROR_RATE).voltage_point is None

    def test_describe_is_json_serializable(self):
        for spec in (FaultSpec(error_rate=1e-3), FaultSpec(error_rate=0.5)):
            d = spec.describe()
            assert json.loads(json.dumps(d)) == d
            assert d["error_rate"] == spec.error_rate


class TestBitflipSide:
    def test_corrupt_matrix_matches_legacy_corrupt_model(self):
        rng = np.random.default_rng(0)
        matrix = rng.normal(size=(4, 256))
        spec = FaultSpec(error_rate=0.01, bits=8)
        got = spec.corrupt_matrix(matrix, np.random.default_rng(42))
        want = corrupt_model(matrix, 8, 0.01, np.random.default_rng(42))
        np.testing.assert_array_equal(got, want)

    def test_corrupt_quantized_matches_legacy_inject_bitflips(self):
        rng = np.random.default_rng(1)
        q = quantize_to_bits(rng.normal(size=(3, 128)), 8)
        spec = FaultSpec(error_rate=0.02, bits=8)
        got = spec.corrupt_quantized(q, np.random.default_rng(9))
        want = inject_bitflips(q, 8, 0.02, np.random.default_rng(9))
        np.testing.assert_array_equal(got, want)

    def test_corrupt_words_zero_rate_is_copy(self):
        words = np.arange(8, dtype=np.uint64)
        out = FaultSpec().corrupt_words(words, np.random.default_rng(0))
        np.testing.assert_array_equal(out, words)
        assert out is not words

    def test_corrupt_words_flip_fraction_tracks_rate(self):
        rng = np.random.default_rng(3)
        words = np.zeros(2048, dtype=np.uint64)
        spec = FaultSpec(error_rate=0.01)
        flipped = spec.corrupt_words(words, rng)
        n_bits = int(np.bitwise_count(flipped).sum())
        total = words.size * 64
        assert n_bits / total == pytest.approx(0.01, rel=0.2)

    def test_corrupt_words_deterministic_given_seed(self):
        words = np.arange(64, dtype=np.uint64)
        spec = FaultSpec(error_rate=0.05)
        a = spec.corrupt_words(words, np.random.default_rng(5))
        b = spec.corrupt_words(words, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_corrupt_classifier_clones(self, fitted_generic_classifier,
                                       toy_problem):
        clf = fitted_generic_classifier
        before = clf.model_.copy()
        spec = FaultSpec(error_rate=0.05, bits=8)
        faulty = spec.corrupt_classifier(clf, np.random.default_rng(2))
        np.testing.assert_array_equal(clf.model_, before)  # original pristine
        assert faulty is not clf
        assert not np.array_equal(faulty.model_, before)
        # at a mild rate the clone still mostly agrees (paper Fig. 6)
        _, _, X_test, _ = toy_problem
        agree = np.mean(faulty.predict(X_test) == clf.predict(X_test))
        assert agree >= 0.8


class TestReExports:
    """Both legacy modules expose FaultSpec so old imports keep working."""

    def test_faults_module(self):
        from repro.hardware import faults

        assert faults.FaultSpec is FaultSpec

    def test_voltage_module(self):
        from repro.hardware import voltage

        assert voltage.FaultSpec is FaultSpec

    def test_hardware_package(self):
        import repro.hardware as hw

        assert hw.FaultSpec is FaultSpec
