"""Unit tests for architecture parameters and the application spec."""

import pytest

from repro.hardware.params import DEFAULT_PARAMS, ArchParams
from repro.hardware.spec import AppSpec, Mode


class TestArchParams:
    def test_paper_geometry(self):
        p = DEFAULT_PARAMS
        assert p.lanes == 16
        assert p.max_dim == 4096
        assert p.max_classes == 32
        # class capacity: D_hv x n_C words = 4K x 32
        assert p.class_capacity_words == 4096 * 32
        # level memory: 64 levels x 4K bits = 32 KB
        assert p.level_mem_bits == 64 * 4096

    def test_id_compression_factor(self):
        p = DEFAULT_PARAMS
        assert p.uncompressed_id_mem_bits // p.id_mem_bits == 1024

    def test_validate_accepts_defaults(self):
        DEFAULT_PARAMS.validate()

    def test_validate_rejects_bad_lanes(self):
        with pytest.raises(ValueError):
            ArchParams(max_dim=100, lanes=16).validate()

    def test_validate_rejects_bad_banks(self):
        with pytest.raises(ValueError):
            ArchParams(class_mem_rows=100, class_banks=3).validate()

    def test_rows_per_bank(self):
        assert DEFAULT_PARAMS.rows_per_bank == 8192 // 4

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_PARAMS.lanes = 8  # type: ignore[misc]


class TestAppSpec:
    def good(self, **kw):
        base = dict(dim=2048, n_features=100, n_classes=10)
        base.update(kw)
        return AppSpec(**base)

    def test_valid_spec(self):
        self.good().validate()

    def test_dim_must_be_lane_multiple(self):
        with pytest.raises(ValueError):
            self.good(dim=1000).validate()

    def test_dim_must_be_block_multiple(self):
        with pytest.raises(ValueError):
            self.good(dim=64 * 3).validate()  # 192: lane-multiple, not 128

    def test_feature_limit(self):
        with pytest.raises(ValueError):
            self.good(n_features=2000).validate()

    def test_window_in_range(self):
        with pytest.raises(ValueError):
            self.good(window=0).validate()
        with pytest.raises(ValueError):
            self.good(window=101).validate()

    def test_class_limit(self):
        with pytest.raises(ValueError):
            self.good(n_classes=33).validate()

    def test_capacity_tradeoff(self):
        # 8K dims x 16 classes fits; 8K x 32 does not (Section 4.1)
        AppSpec(dim=8192, n_features=100, n_classes=16).validate()
        with pytest.raises(ValueError, match="capacity"):
            AppSpec(dim=8192, n_features=100, n_classes=32).validate()

    def test_bitwidth_whitelist(self):
        with pytest.raises(ValueError):
            self.good(bitwidth=3).validate()

    def test_n_windows(self):
        assert self.good(window=3).n_windows == 98

    def test_with_dim(self):
        reduced = self.good().with_dim(512)
        assert reduced.dim == 512
        assert reduced.n_features == 100

    def test_with_mode(self):
        assert self.good().with_mode(Mode.TRAIN).mode is Mode.TRAIN

    def test_class_rows_used(self):
        spec = self.good(dim=2048, n_classes=10)
        assert spec.class_rows_used() == (2048 // 16) * 10
