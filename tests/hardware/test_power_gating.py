"""Unit tests for application-opportunistic power gating."""

import pytest

from repro.hardware.power_gating import (
    GatingPlan,
    average_active_banks,
    gating_area_overhead,
    plan_for_spec,
)
from repro.hardware.spec import AppSpec


def spec(dim=4096, n_classes=2):
    return AppSpec(dim=dim, n_features=100, n_classes=n_classes).validate()


class TestGatingPlan:
    def test_small_app_keeps_one_bank(self):
        # 2 classes at 4K dims: 512 of 8192 rows = 6% (the EEG/FACE point)
        plan = plan_for_spec(spec(n_classes=2))
        assert plan.banks_active == 1
        assert plan.occupancy == pytest.approx(0.0625)
        assert plan.leakage_saving == pytest.approx(0.75)

    def test_isolet_app_uses_most_banks(self):
        # 26 classes at 4K dims: 81% occupancy -> 4 banks
        plan = plan_for_spec(spec(n_classes=26))
        assert plan.occupancy == pytest.approx(26 * 256 / 8192)
        assert plan.banks_active == 4

    def test_full_occupancy(self):
        plan = plan_for_spec(spec(n_classes=32))
        assert plan.occupancy == 1.0
        assert plan.banks_active == 4
        assert plan.leakage_saving == 0.0

    def test_reduced_dims_reduce_banks(self):
        low = plan_for_spec(spec(dim=1024, n_classes=8))
        high = plan_for_spec(spec(dim=4096, n_classes=8))
        assert low.banks_active <= high.banks_active

    def test_average_over_suite(self):
        specs = [spec(n_classes=c) for c in (2, 2, 26, 10, 5)]
        avg = average_active_banks(specs)
        assert 1.0 <= avg <= 4.0

    def test_average_requires_specs(self):
        with pytest.raises(ValueError):
            average_active_banks([])


class TestAreaOverhead:
    def test_paper_anchors(self):
        assert gating_area_overhead(4) == pytest.approx(0.20)
        assert gating_area_overhead(8) == pytest.approx(0.55)

    def test_single_bank_free(self):
        assert gating_area_overhead(1) == 0.0

    def test_monotone(self):
        values = [gating_area_overhead(b) for b in (1, 2, 4, 6, 8)]
        assert values == sorted(values)

    def test_invalid_banks(self):
        with pytest.raises(ValueError):
            gating_area_overhead(0)

    def test_four_banks_minimize_area_x_power(self):
        """The paper's conclusion: 4 banks beat 8 on area x leakage cost."""
        # leakage fraction remaining ~ avg active/total; with the paper's
        # 1.6/4 vs 2.7/8 averages:
        cost4 = (1 + gating_area_overhead(4)) * (1.6 / 4)
        cost8 = (1 + gating_area_overhead(8)) * (2.7 / 8)
        assert cost4 < cost8 * 1.2  # 4 banks competitive or better
