"""The architecture is parametric: non-default geometries must work.

The paper ships one configuration (m=16, 4 banks, 4K x 32); a flexible
generator would let an SoC team re-size it.  These tests run the whole
train/deploy/infer flow at alternative lane counts, bank counts and
capacities, and check the analytical models stay consistent.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import model_io
from repro.core.classifier import HDClassifier
from repro.core.encoders import GenericEncoder
from repro.hardware import controller
from repro.hardware.accelerator import GenericAccelerator
from repro.hardware.energy import EnergyModel
from repro.hardware.params import DEFAULT_PARAMS, ArchParams
from repro.hardware.power_gating import plan_for_spec
from repro.hardware.spec import AppSpec


def params_with(**kw) -> ArchParams:
    return dataclasses.replace(DEFAULT_PARAMS, **kw)


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(23)
    protos = rng.normal(scale=1.5, size=(3, 16))
    y = rng.integers(0, 3, size=90)
    X = protos[y] + rng.normal(scale=0.5, size=(90, 16))
    return X, y


@pytest.mark.parametrize("lanes", [8, 16, 32])
class TestLaneCounts:
    def test_end_to_end_at_lane_count(self, lanes, problem):
        X, y = problem
        params = params_with(lanes=lanes)
        params.validate()
        enc = GenericEncoder(dim=256, num_levels=16, seed=5)
        clf = HDClassifier(enc, epochs=3, seed=5).fit(X, y)
        acc = GenericAccelerator(params)
        acc.load_image(model_io.export_model(clf))
        preds = acc.infer(X[:15], exact_divider=True).predictions
        assert np.array_equal(preds, clf.predict(X[:15]))

    def test_cycles_scale_inversely_with_lanes(self, lanes, problem):
        spec = AppSpec(dim=256, n_features=16, n_classes=3)
        base_cycles, _ = controller.inference(spec, params_with(lanes=8))
        cycles, _ = controller.inference(spec, params_with(lanes=lanes))
        assert cycles <= base_cycles


@pytest.mark.parametrize("banks", [1, 2, 8])
class TestBankCounts:
    def test_gating_plan_valid(self, banks):
        params = params_with(class_banks=banks)
        params.validate()
        spec = AppSpec(dim=1024, n_features=64, n_classes=4).validate(params)
        plan = plan_for_spec(spec, params)
        assert 1 <= plan.banks_active <= banks
        assert 0.0 <= plan.leakage_saving < 1.0

    def test_energy_model_builds(self, banks):
        model = EnergyModel(params_with(class_banks=banks))
        assert model.total_static_w() > 0


class TestCapacityVariants:
    def test_larger_class_memory_accepts_more_classes(self):
        params = params_with(class_mem_rows=16384)
        params.validate()
        # 8K dims x 32 classes now fits
        AppSpec(dim=8192, n_features=64, n_classes=32).validate(params)

    def test_smaller_memory_rejects_default_spec(self):
        params = params_with(class_mem_rows=2048, class_banks=4)
        params.validate()
        with pytest.raises(ValueError, match="capacity"):
            AppSpec(dim=4096, n_features=64, n_classes=32).validate(params)

    def test_faster_clock_shortens_runs(self, problem):
        X, y = problem
        enc = GenericEncoder(dim=256, num_levels=16, seed=5)
        clf = HDClassifier(enc, epochs=2, seed=5).fit(X, y)
        image = model_io.export_model(clf)
        slow = GenericAccelerator(params_with(clock_hz=100e6))
        fast = GenericAccelerator(params_with(clock_hz=1e9))
        slow.load_image(image)
        fast.load_image(image)
        t_slow = slow.infer(X[:5]).time_s
        t_fast = fast.infer(X[:5]).time_s
        assert t_fast == pytest.approx(t_slow / 10)
