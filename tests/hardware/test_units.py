"""Unit tests for the encoder and search units."""

import numpy as np
import pytest

from repro.core.encoders import GenericEncoder
from repro.hardware.encoder_unit import EncoderUnit
from repro.hardware.search_unit import SearchUnit

DIM = 256


@pytest.fixture
def data():
    rng = np.random.default_rng(13)
    return rng.normal(size=(10, 20))


@pytest.fixture
def sw_encoder(data):
    enc = GenericEncoder(dim=DIM, num_levels=16, seed=2)
    enc.fit(data)
    return enc


def make_unit(sw_encoder, use_ids=True):
    seed = sw_encoder.id_generator.seed if use_ids else None
    return EncoderUnit(
        sw_encoder.levels.vectors,
        seed,
        sw_encoder.window,
        np.asarray(sw_encoder.quantizer.lo),
        np.asarray(sw_encoder.quantizer.hi),
    )


class TestEncoderUnit:
    def test_bit_exact_with_software_encoder(self, data, sw_encoder):
        unit = make_unit(sw_encoder)
        for x in data:
            assert np.array_equal(unit.encode(x), sw_encoder.encode(x))

    def test_quantizer_matches(self, data, sw_encoder):
        unit = make_unit(sw_encoder)
        assert np.array_equal(
            unit.quantize(data[0]), sw_encoder.quantizer.transform(data[:1])[0]
        )

    def test_dim_reduction_is_prefix(self, data, sw_encoder):
        unit = make_unit(sw_encoder)
        full = unit.encode(data[0])
        reduced = unit.encode(data[0], dim=128)
        assert np.array_equal(reduced, full[:128])

    def test_identity_ids_when_disabled(self, data, sw_encoder):
        unit = make_unit(sw_encoder, use_ids=False)
        ids = unit.ids_for(5)
        assert (ids == 1).all()

    def test_rejects_batch_input(self, data, sw_encoder):
        unit = make_unit(sw_encoder)
        with pytest.raises(ValueError):
            unit.encode(data)

    def test_rejects_short_input(self, sw_encoder):
        unit = make_unit(sw_encoder)
        with pytest.raises(ValueError):
            unit.encode(np.zeros(2))

    def test_rejects_bad_reduction(self, data, sw_encoder):
        unit = make_unit(sw_encoder)
        with pytest.raises(ValueError):
            unit.encode(data[0], dim=DIM + 1)

    def test_seed_length_checked(self, sw_encoder):
        with pytest.raises(ValueError):
            EncoderUnit(
                sw_encoder.levels.vectors,
                np.ones(8, dtype=np.int8),
                3,
                np.asarray(0.0),
                np.asarray(1.0),
            )


class TestSearchUnit:
    @pytest.fixture
    def loaded(self):
        rng = np.random.default_rng(17)
        unit = SearchUnit(n_classes=4, dim=DIM, norm_block=128)
        matrix = rng.integers(-40, 41, size=(4, DIM)).astype(np.float64)
        unit.load_classes(matrix)
        return unit, matrix

    def test_predict_matches_exact_cosine_ranking(self, loaded):
        unit, matrix = loaded
        rng = np.random.default_rng(18)
        for _ in range(20):
            q = rng.integers(-20, 21, size=DIM).astype(np.float64)
            dots = matrix @ q
            norms = np.linalg.norm(matrix, axis=1)
            expected = int(np.argmax(dots / norms))
            got = unit.predict(q, exact_divider=True)
            assert got == expected

    def test_mitchell_divider_mostly_agrees(self, loaded):
        unit, _ = loaded
        rng = np.random.default_rng(19)
        agree = 0
        for _ in range(50):
            q = rng.integers(-20, 21, size=DIM).astype(np.float64)
            agree += unit.predict(q) == unit.predict(q, exact_divider=True)
        assert agree >= 45

    def test_accumulate_updates_norms(self, loaded):
        unit, matrix = loaded
        enc = np.ones(DIM)
        unit.accumulate(1, enc)
        assert np.allclose(
            unit.norms.full_norm2()[1], ((matrix[1] + 1.0) ** 2).sum()
        )

    def test_accumulate_negative(self, loaded):
        unit, matrix = loaded
        enc = np.ones(DIM)
        unit.accumulate(2, enc, sign=-1)
        assert np.allclose(unit.classes[2], matrix[2] - 1.0)

    def test_bitwidth_requantizes(self):
        rng = np.random.default_rng(20)
        unit = SearchUnit(n_classes=2, dim=DIM)
        matrix = rng.normal(scale=100, size=(2, DIM))
        unit.load_classes(matrix, bitwidth=4)
        assert np.abs(unit.classes).max() <= 7

    def test_dim_reduced_scores(self, loaded):
        unit, matrix = loaded
        q = np.ones(DIM)
        scores = unit.scores(q, dim=128)
        dots = matrix[:, :128] @ q[:128]
        assert np.array_equal(np.argsort(np.sign(dots) * dots * dots /
                                         (matrix[:, :128] ** 2).sum(axis=1)),
                              np.argsort(unit.scores(q, dim=128,
                                                     exact_divider=True)))

    def test_overwrite_for_fault_injection(self, loaded):
        unit, _ = loaded
        unit.overwrite(np.zeros((4, DIM)))
        assert (unit.norms.full_norm2() == 0).all()

    def test_shape_checks(self):
        unit = SearchUnit(n_classes=2, dim=DIM)
        with pytest.raises(ValueError):
            unit.load_classes(np.zeros((3, DIM)))
        with pytest.raises(IndexError):
            unit.accumulate(5, np.zeros(DIM))
        with pytest.raises(ValueError):
            unit.scores(np.zeros(64))
