"""Unit tests for the config-port bitstream driver."""

import numpy as np
import pytest

from repro.core import model_io
from repro.core.classifier import HDClassifier
from repro.core.encoders import GenericEncoder
from repro.hardware import driver
from repro.hardware.accelerator import GenericAccelerator


@pytest.fixture(scope="module")
def image(fitted_generic_classifier):
    return model_io.export_model(fitted_generic_classifier)


class TestRoundTrip:
    def test_serialize_deserialize_identity(self, image):
        stream = driver.serialize(image)
        restored = driver.deserialize(stream)
        assert restored.dim == image.dim
        assert restored.window == image.window
        assert restored.use_ids == image.use_ids
        assert np.array_equal(restored.level_table, image.level_table)
        assert np.array_equal(restored.seed_id, image.seed_id)
        assert np.array_equal(restored.class_matrix, image.class_matrix)
        assert np.array_equal(restored.class_labels, image.class_labels)

    def test_restored_image_programs_accelerator(self, image, toy_problem):
        _, _, X_test, _ = toy_problem
        stream = driver.serialize(image)
        restored = driver.deserialize(stream)
        a = GenericAccelerator()
        b = GenericAccelerator()
        a.load_image(image)
        b.load_image(restored)
        pa = a.infer(X_test[:10], exact_divider=True).predictions
        pb = b.infer(X_test[:10], exact_divider=True).predictions
        assert np.array_equal(pa, pb)

    def test_no_ids_roundtrip(self, toy_problem):
        X_train, y_train, _, _ = toy_problem
        clf = HDClassifier(
            GenericEncoder(dim=256, num_levels=16, seed=9, use_ids=False),
            epochs=1, seed=9,
        ).fit(X_train, y_train)
        image = model_io.export_model(clf)
        restored = driver.deserialize(driver.serialize(image))
        assert restored.seed_id is None
        assert not restored.use_ids

    def test_string_labels_roundtrip(self, toy_problem):
        X_train, y_train, _, _ = toy_problem
        names = np.array(["ant", "bee", "cat"])
        clf = HDClassifier(
            GenericEncoder(dim=256, num_levels=16, seed=9), epochs=1, seed=9
        ).fit(X_train, names[y_train])
        restored = driver.deserialize(
            driver.serialize(model_io.export_model(clf))
        )
        assert set(restored.class_labels) == {"ant", "bee", "cat"}


class TestValidation:
    def test_crc_detects_corruption(self, image):
        stream = bytearray(driver.serialize(image))
        stream[100] ^= 0xFF
        with pytest.raises(driver.BitstreamError, match="CRC"):
            driver.deserialize(bytes(stream))

    def test_truncated_stream(self):
        with pytest.raises(driver.BitstreamError, match="truncated"):
            driver.deserialize(b"GNRC\x01")

    def test_bad_magic(self, image):
        stream = bytearray(driver.serialize(image))
        stream[0:4] = b"XXXX"
        # re-CRC so the magic check (not the CRC) fires
        import struct
        import zlib

        payload = bytes(stream[:-4])
        stream[-4:] = struct.pack("<I", zlib.crc32(payload) & 0xFFFFFFFF)
        with pytest.raises(driver.BitstreamError, match="magic"):
            driver.deserialize(bytes(stream))

    def test_oversized_class_words_rejected(self, image):
        from dataclasses import replace

        bad = replace(image, class_matrix=image.class_matrix * 1e6)
        with pytest.raises(driver.BitstreamError, match="16-bit"):
            driver.serialize(bad)


class TestSizing:
    def test_stream_size_matches(self, image):
        assert driver.stream_size_bytes(image) == len(driver.serialize(image))

    def test_size_dominated_by_memories(self, image):
        # level table bits + class words are the bulk of the stream
        expected_min = (
            image.num_levels * image.dim // 8 + image.n_classes * image.dim * 2
        )
        assert driver.stream_size_bytes(image) >= expected_min

    def test_programming_time(self, image):
        t = driver.programming_time_s(image, baud_bits_per_s=1e6)
        assert t == pytest.approx(driver.stream_size_bytes(image) * 8 / 1e6)
        with pytest.raises(ValueError):
            driver.programming_time_s(image, baud_bits_per_s=0)
