"""Unit tests for voltage over-scaling and bit-flip fault injection."""

import numpy as np
import pytest

from repro.hardware.faults import corrupt_model, inject_bitflips, quantize_to_bits
from repro.hardware.voltage import (
    MAX_ERROR_RATE,
    NOMINAL_VDD,
    error_rate_for_voltage,
    operating_point,
)


class TestVoltageModel:
    def test_zero_error_is_nominal(self):
        p = operating_point(0.0)
        assert p.vdd == NOMINAL_VDD
        assert p.static_saving == 1.0
        assert p.dynamic_saving == 1.0

    def test_savings_monotone_in_error(self):
        rates = np.linspace(0, MAX_ERROR_RATE, 20)
        statics = [operating_point(r).static_saving for r in rates]
        dyns = [operating_point(r).dynamic_saving for r in rates]
        assert statics == sorted(statics)
        assert dyns == sorted(dyns)

    def test_voltage_decreases_with_error(self):
        assert operating_point(0.08).vdd < operating_point(0.01).vdd

    def test_max_error_reaches_7x_static(self):
        assert operating_point(MAX_ERROR_RATE).static_saving == pytest.approx(7.0)

    def test_factors_are_reciprocals(self):
        p = operating_point(0.05)
        assert p.static_factor == pytest.approx(1.0 / p.static_saving)
        assert p.dynamic_factor == pytest.approx(1.0 / p.dynamic_saving)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            operating_point(0.5)
        with pytest.raises(ValueError):
            operating_point(-0.01)

    def test_inverse_map_roundtrip(self):
        for rate in (0.0, 0.01, 0.05, 0.10):
            vdd = operating_point(rate).vdd
            assert error_rate_for_voltage(vdd) == pytest.approx(rate, abs=1e-9)

    def test_inverse_map_range_checked(self):
        with pytest.raises(ValueError):
            error_rate_for_voltage(1.2)


class TestQuantization:
    def test_range_respected(self):
        rng = np.random.default_rng(0)
        model = rng.normal(scale=100, size=(4, 256))
        for bits in (2, 4, 8, 16):
            q = quantize_to_bits(model, bits)
            qmax = 2 ** (bits - 1) - 1
            assert np.abs(q).max() <= qmax

    def test_one_bit_is_sign(self):
        model = np.array([[3.0, -0.5, 0.0]])
        assert quantize_to_bits(model, 1).tolist() == [[1, -1, 1]]

    def test_outliers_saturate_not_collapse(self):
        """A single huge outlier must not zero out the rest (robust scale)."""
        model = np.concatenate([np.full(999, 10.0), [1e6]])[None, :]
        q = quantize_to_bits(model, 4)
        # the bulk keeps resolution
        assert np.abs(q[0][:999]).min() > 0

    def test_zero_model(self):
        assert (quantize_to_bits(np.zeros((2, 8)), 8) == 0).all()

    def test_bad_bits(self):
        with pytest.raises(ValueError):
            quantize_to_bits(np.zeros((1, 4)), 0)


class TestFaultInjection:
    def test_zero_rate_is_identity(self):
        rng = np.random.default_rng(1)
        q = quantize_to_bits(rng.normal(size=(4, 64)), 8)
        assert np.array_equal(inject_bitflips(q, 8, 0.0, rng), q)

    def test_flip_rate_statistics(self):
        rng = np.random.default_rng(2)
        q = np.zeros((100, 100), dtype=np.int64)
        corrupted = inject_bitflips(q, 8, 0.05, rng)
        # expected fraction of changed words: 1 - (1-p)^8 ~ 0.337
        changed = np.mean(corrupted != 0)
        assert 0.25 < changed < 0.42

    def test_values_stay_in_twos_complement_range(self):
        rng = np.random.default_rng(3)
        q = quantize_to_bits(rng.normal(size=(8, 128)), 4)
        corrupted = inject_bitflips(q, 4, 0.2, rng)
        assert corrupted.min() >= -8
        assert corrupted.max() <= 7

    def test_one_bit_flip_is_sign_flip(self):
        rng = np.random.default_rng(4)
        q = np.ones((10, 100), dtype=np.int64)
        corrupted = inject_bitflips(q, 1, 0.5, rng)
        assert set(np.unique(corrupted)) <= {-1, 1}
        assert 0.3 < np.mean(corrupted == -1) < 0.7

    def test_rate_range_checked(self):
        with pytest.raises(ValueError):
            inject_bitflips(np.zeros((1, 4), dtype=np.int64), 8, 1.5,
                            np.random.default_rng(0))

    def test_corrupt_model_pipeline(self):
        rng = np.random.default_rng(5)
        model = rng.normal(scale=50, size=(3, 256))
        out = corrupt_model(model, 8, 0.02, rng)
        assert out.shape == model.shape
        assert out.dtype == np.float64

    def test_flips_are_deterministic_per_seed(self):
        q = quantize_to_bits(np.random.default_rng(6).normal(size=(4, 64)), 8)
        a = inject_bitflips(q, 8, 0.1, np.random.default_rng(42))
        b = inject_bitflips(q, 8, 0.1, np.random.default_rng(42))
        assert np.array_equal(a, b)


class TestEndToEndFaultInjection:
    """Failure injection beyond the class memory: the encoder's level
    table is also SRAM; flipping its bits should degrade gracefully
    because each level contributes one of thousands of bundled bits."""

    def test_level_table_bitflips_degrade_gracefully(self, toy_problem=None):
        import numpy as np

        from repro.core.classifier import HDClassifier
        from repro.core.encoders import GenericEncoder
        from repro.core.hypervector import to_binary, to_bipolar

        rng = np.random.default_rng(3)
        protos = rng.normal(scale=1.5, size=(3, 20))
        y = rng.integers(0, 3, size=150)
        X = protos[y] + rng.normal(scale=0.5, size=(150, 20))
        enc = GenericEncoder(dim=512, num_levels=16, seed=4)
        clf = HDClassifier(enc, epochs=3, seed=4).fit(X[:100], y[:100])
        clean = clf.score(X[100:], y[100:])

        # flip 2% of the level-table bits and re-encode the queries
        bits = to_binary(enc.levels.vectors)
        flips = rng.random(bits.shape) < 0.02
        enc.levels.vectors = to_bipolar(bits ^ flips)
        faulty = clf.score(X[100:], y[100:])
        assert faulty > clean - 0.2
        assert clean > 0.8

    def test_massive_level_corruption_destroys_accuracy(self):
        import numpy as np

        from repro.core.classifier import HDClassifier
        from repro.core.encoders import GenericEncoder
        from repro.core.hypervector import to_binary, to_bipolar

        rng = np.random.default_rng(5)
        protos = rng.normal(scale=1.5, size=(3, 20))
        y = rng.integers(0, 3, size=150)
        X = protos[y] + rng.normal(scale=0.5, size=(150, 20))
        enc = GenericEncoder(dim=512, num_levels=16, seed=4)
        clf = HDClassifier(enc, epochs=3, seed=4).fit(X[:100], y[:100])

        bits = to_binary(enc.levels.vectors)
        flips = rng.random(bits.shape) < 0.5  # total scramble
        enc.levels.vectors = to_bipolar(bits ^ flips)
        assert clf.score(X[100:], y[100:]) < 0.7  # sanity: faults do matter
