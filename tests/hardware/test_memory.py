"""Unit tests for the SRAM models."""

import pytest

from repro.hardware.memory import Sram, build_memories
from repro.hardware.params import DEFAULT_PARAMS


class TestSram:
    def test_geometry(self):
        s = Sram("x", rows=1024, width_bits=16, banks=4)
        assert s.bits == 1024 * 16
        assert s.bytes == 2048
        assert s.rows_per_bank == 256

    def test_counters(self):
        s = Sram("x", rows=8, width_bits=8)
        s.count_reads(3)
        s.count_writes()
        assert (s.reads, s.writes) == (3, 1)
        s.reset_counters()
        assert (s.reads, s.writes) == (0, 0)

    def test_banks_for_rows_prefix(self):
        s = Sram("x", rows=100, width_bits=8, banks=4)
        assert s.banks_for_rows(0) == 0
        assert s.banks_for_rows(1) == 1
        assert s.banks_for_rows(25) == 1
        assert s.banks_for_rows(26) == 2
        assert s.banks_for_rows(100) == 4

    def test_banks_for_rows_overflow(self):
        s = Sram("x", rows=100, width_bits=8, banks=4)
        with pytest.raises(ValueError):
            s.banks_for_rows(101)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            Sram("x", rows=0, width_bits=8)
        with pytest.raises(ValueError):
            Sram("x", rows=10, width_bits=8, banks=3)


class TestMemorySet:
    def test_paper_sizes(self):
        mems = build_memories(DEFAULT_PARAMS)
        # level memory 32 KB
        assert mems.level.bytes == 32 * 1024
        # class memories: 16 x 16 KB = 256 KB
        assert mems.classes.bytes == 256 * 1024
        # feature memory 1024 x 8b = 1 KB
        assert mems.feature.bytes == 1024
        # seed id: one 4 Kbit row
        assert mems.seed_id.bits == 4096

    def test_reset_all(self):
        mems = build_memories(DEFAULT_PARAMS)
        mems.level.count_reads(5)
        mems.reset_counters()
        assert mems.level.reads == 0

    def test_all_keys(self):
        mems = build_memories(DEFAULT_PARAMS)
        assert set(mems.all()) == {
            "level", "feature", "seed_id", "classes", "norm2", "score"
        }

    def test_total_bits_positive(self):
        assert build_memories(DEFAULT_PARAMS).total_bits() > 0
