"""Unit tests for the Mitchell approximate divider."""

import numpy as np

from repro.hardware.mitchell import (
    MAX_RELATIVE_ERROR,
    mitchell_divide,
    mitchell_exp2,
    mitchell_log2,
)


class TestLog2:
    def test_exact_at_powers_of_two(self):
        x = np.array([1.0, 2.0, 4.0, 1024.0])
        assert np.allclose(mitchell_log2(x), [0, 1, 2, 10])

    def test_error_bounded(self):
        x = np.linspace(1.0, 1e6, 10000)
        approx = mitchell_log2(x)
        exact = np.log2(x)
        assert np.abs(approx - exact).max() < 0.09  # known bound ~0.086

    def test_zero_maps_to_minus_inf(self):
        assert mitchell_log2(np.array([0.0]))[0] == -np.inf

    def test_monotone(self):
        x = np.linspace(0.5, 100, 5000)
        approx = mitchell_log2(x)
        assert (np.diff(approx) >= -1e-12).all()


class TestExp2:
    def test_exact_at_integers(self):
        y = np.array([0.0, 1.0, 3.0, -2.0])
        assert np.allclose(mitchell_exp2(y), [1, 2, 8, 0.25])

    def test_roundtrip_near_identity(self):
        x = np.linspace(1.0, 1e4, 2000)
        roundtrip = mitchell_exp2(mitchell_log2(x))
        rel = np.abs(roundtrip - x) / x
        assert rel.max() < 2 * MAX_RELATIVE_ERROR


class TestCorrectedVariant:
    def test_corrected_log_error_under_1_percent(self):
        x = np.linspace(1.0, 1e6, 10000)
        err = np.abs(mitchell_log2(x, correct=True) - np.log2(x))
        assert err.max() < 0.01

    def test_corrected_divide_error_shrinks(self):
        rng = np.random.default_rng(3)
        num = rng.uniform(1.0, 1e8, size=5000)
        den = rng.uniform(1.0, 1e8, size=5000)
        plain = np.abs(mitchell_divide(num, den) - num / den) / (num / den)
        corrected = np.abs(
            mitchell_divide(num, den, correct=True) - num / den
        ) / (num / den)
        assert corrected.max() < 0.03
        assert corrected.max() < plain.max()

    def test_corrected_exact_at_powers_of_two(self):
        x = np.array([1.0, 2.0, 8.0, 4096.0])
        assert np.allclose(mitchell_log2(x, correct=True), [0, 1, 3, 12])

    def test_corrected_exp_roundtrip(self):
        x = np.linspace(1.0, 1e4, 2000)
        roundtrip = mitchell_exp2(mitchell_log2(x, correct=True), correct=True)
        rel = np.abs(roundtrip - x) / x
        assert rel.max() < 0.03


class TestDivide:
    def test_relative_error_within_bound(self):
        rng = np.random.default_rng(0)
        num = rng.uniform(1.0, 1e8, size=5000)
        den = rng.uniform(1.0, 1e8, size=5000)
        approx = mitchell_divide(num, den)
        rel = np.abs(approx - num / den) / (num / den)
        assert rel.max() < 2 * MAX_RELATIVE_ERROR

    def test_zero_numerator(self):
        assert mitchell_divide(np.array([0.0]), np.array([5.0]))[0] == 0.0

    def test_infinite_denominator(self):
        assert mitchell_divide(np.array([5.0]), np.array([np.inf]))[0] == 0.0

    def test_broadcasting(self):
        num = np.ones((3, 4))
        den = np.full(4, 2.0)
        out = mitchell_divide(num, den)
        assert out.shape == (3, 4)
        assert np.allclose(out, 0.5)

    def test_preserves_ranking_with_margin(self):
        """Scores whose ratio exceeds the error bound keep their order."""
        rng = np.random.default_rng(1)
        a = rng.uniform(1.0, 1e6, size=1000)
        b = a * 1.5  # 50% apart >> 11% error
        den = rng.uniform(1.0, 1e3, size=1000)
        qa = mitchell_divide(a, den)
        qb = mitchell_divide(b, den)
        assert (qb > qa).all()
