"""Unit tests for the calibrated energy/area model."""

import pytest

from repro.hardware import controller
from repro.hardware.counters import Counters
from repro.hardware.energy import (
    AREA_FRACTIONS,
    DYNAMIC_FRACTIONS,
    STATIC_FRACTIONS,
    TOTAL_AREA_MM2,
    TYPICAL_DYNAMIC_W,
    WORST_STATIC_W,
    EnergyModel,
)
from repro.hardware.params import DEFAULT_PARAMS
from repro.hardware.power_gating import plan_for_spec
from repro.hardware.spec import AppSpec
from repro.hardware.voltage import operating_point


@pytest.fixture(scope="module")
def model():
    return EnergyModel(DEFAULT_PARAMS)


@pytest.fixture(scope="module")
def reference_counters():
    spec = AppSpec(**EnergyModel.REFERENCE_SPEC).validate()
    total = Counters()
    for _ in range(10):
        _, c = controller.inference(spec, DEFAULT_PARAMS)
        total.add(c)
    return total


class TestFractions:
    def test_fractions_sum_to_one(self):
        for fr in (AREA_FRACTIONS, STATIC_FRACTIONS, DYNAMIC_FRACTIONS):
            assert sum(fr.values()) == pytest.approx(1.0)

    def test_class_memory_dominates(self):
        assert AREA_FRACTIONS["class_mem"] > 0.8
        assert STATIC_FRACTIONS["class_mem"] > 0.8
        assert DYNAMIC_FRACTIONS["class_mem"] > 0.7


class TestArea:
    def test_total_area_anchor(self, model):
        assert sum(model.area_mm2().values()) == pytest.approx(TOTAL_AREA_MM2)

    def test_component_keys(self, model):
        assert set(model.area_mm2()) == set(AREA_FRACTIONS)


class TestStaticPower:
    def test_worst_case_anchor(self, model):
        assert model.total_static_w() == pytest.approx(WORST_STATIC_W)

    def test_gating_reduces_class_leakage(self, model):
        spec = AppSpec(dim=1024, n_features=100, n_classes=4).validate()
        plan = plan_for_spec(spec, DEFAULT_PARAMS)
        gated = model.total_static_w(gating=plan)
        assert gated < model.total_static_w()

    def test_vos_reduces_class_leakage(self, model):
        vos = operating_point(0.05)
        assert model.total_static_w(vos=vos) < model.total_static_w()

    def test_gating_and_vos_compose(self, model):
        spec = AppSpec(dim=1024, n_features=100, n_classes=4).validate()
        plan = plan_for_spec(spec, DEFAULT_PARAMS)
        vos = operating_point(0.05)
        both = model.total_static_w(gating=plan, vos=vos)
        assert both < model.total_static_w(gating=plan)
        assert both < model.total_static_w(vos=vos)


class TestDynamicEnergy:
    def test_reference_hits_dynamic_anchor(self, model, reference_counters):
        report = model.report(reference_counters)
        assert report.dynamic_w == pytest.approx(TYPICAL_DYNAMIC_W, rel=0.05)

    def test_reference_breakdown_matches_fig7(self, model, reference_counters):
        dyn = model.dynamic_energy_j(reference_counters)
        total = sum(dyn.values())
        for comp, frac in DYNAMIC_FRACTIONS.items():
            assert dyn[comp] / total == pytest.approx(frac, abs=0.02)

    def test_reduced_bitwidth_cuts_class_energy(self, model, reference_counters):
        full = model.dynamic_energy_j(reference_counters, bitwidth=16)
        quarter = model.dynamic_energy_j(reference_counters, bitwidth=4)
        assert quarter["class_mem"] < full["class_mem"]
        assert quarter["level_mem"] == full["level_mem"]

    def test_vos_cuts_class_energy(self, model, reference_counters):
        vos = operating_point(0.05)
        scaled = model.dynamic_energy_j(reference_counters, vos=vos)
        plain = model.dynamic_energy_j(reference_counters)
        assert scaled["class_mem"] < plain["class_mem"]

    def test_report_totals(self, model, reference_counters):
        report = model.report(reference_counters)
        assert report.total_j == pytest.approx(
            report.static_j + report.dynamic_j
        )
        assert report.time_s > 0
