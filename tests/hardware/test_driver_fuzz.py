"""Property-based robustness tests for the config bitstream parser.

A parser facing a flash chip must never crash on garbage: every
malformed input should surface as a clean :class:`BitstreamError`.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import model_io
from repro.core.classifier import HDClassifier
from repro.core.encoders import GenericEncoder
from repro.hardware import driver


@pytest.fixture(scope="module")
def reference_stream(toy_problem):
    X_train, y_train, _, _ = toy_problem
    enc = GenericEncoder(dim=256, num_levels=16, seed=2)
    clf = HDClassifier(enc, epochs=1, seed=2).fit(X_train, y_train)
    return driver.serialize(model_io.export_model(clf))


@given(data=st.binary(min_size=0, max_size=200))
@settings(max_examples=60, deadline=None)
def test_random_bytes_never_crash(data):
    with pytest.raises(driver.BitstreamError):
        driver.deserialize(data)


@given(
    position=st.integers(min_value=0, max_value=10_000),
    flip=st.integers(min_value=1, max_value=255),
)
@settings(max_examples=60, deadline=None)
def test_single_byte_corruption_always_detected(reference_stream, position, flip):
    stream = bytearray(reference_stream)
    position %= len(stream)
    stream[position] ^= flip
    # either the CRC rejects it, or (if the flip hit the CRC field in a
    # way that still mismatches) some other validation fires -- a clean
    # exception either way, never garbage output
    with pytest.raises(driver.BitstreamError):
        driver.deserialize(bytes(stream))


@given(cut=st.integers(min_value=1, max_value=400))
@settings(max_examples=40, deadline=None)
def test_truncation_always_detected(reference_stream, cut):
    cut = min(cut, len(reference_stream) - 1)
    with pytest.raises(driver.BitstreamError):
        driver.deserialize(reference_stream[:-cut])


def test_appended_garbage_detected(reference_stream):
    with pytest.raises(driver.BitstreamError):
        driver.deserialize(reference_stream + b"\x00\x01\x02\x03")
