"""Unit tests for the multi-application manager."""

import numpy as np
import pytest

from repro.core import model_io
from repro.core.classifier import HDClassifier
from repro.core.encoders import GenericEncoder
from repro.datasets import load_dataset
from repro.hardware.multiplex import AppManager


@pytest.fixture(scope="module")
def two_apps():
    apps = {}
    for name in ("PAGE", "CARDIO"):
        ds = load_dataset(name, "tiny")
        enc = GenericEncoder(dim=256, num_levels=16, seed=7)
        clf = HDClassifier(enc, epochs=3, seed=7).fit(ds.X_train, ds.y_train)
        apps[name] = (model_io.export_model(clf), ds)
    return apps


@pytest.fixture
def manager(two_apps):
    mgr = AppManager()
    for name, (image, _) in two_apps.items():
        mgr.register(name, image)
    return mgr


class TestRegistration:
    def test_register_builds_bitstream(self, manager):
        assert manager.apps["PAGE"].stream_bytes > 1000

    def test_duplicate_rejected(self, manager, two_apps):
        image, _ = two_apps["PAGE"]
        with pytest.raises(ValueError, match="already"):
            manager.register("PAGE", image)

    def test_unregister(self, manager):
        manager.unregister("PAGE")
        assert "PAGE" not in manager.apps
        with pytest.raises(KeyError):
            manager.unregister("PAGE")

    def test_bad_baud_rejected(self):
        with pytest.raises(ValueError):
            AppManager(config_baud_bits_per_s=0)


class TestSwapping:
    def test_first_activation_costs_a_swap(self, manager):
        record = manager.activate("PAGE")
        assert record is not None
        assert record.time_s > 0
        assert record.energy_j > 0

    def test_reactivation_is_free(self, manager):
        manager.activate("PAGE")
        assert manager.activate("PAGE") is None
        assert len(manager.swap_log) == 1

    def test_alternating_apps_swap_each_time(self, manager):
        manager.activate("PAGE")
        manager.activate("CARDIO")
        manager.activate("PAGE")
        assert len(manager.swap_log) == 3
        assert manager.total_swap_time_s() > 0

    def test_unknown_app(self, manager):
        with pytest.raises(KeyError):
            manager.activate("MNIST")


class TestServing:
    def test_inference_routing_matches_direct(self, manager, two_apps):
        from repro.hardware.accelerator import GenericAccelerator

        image, ds = two_apps["CARDIO"]
        direct = GenericAccelerator()
        direct.load_image(image)
        expected = direct.infer(ds.X_test[:10]).predictions

        report = manager.infer("CARDIO", ds.X_test[:10])
        assert np.array_equal(report.predictions, expected)

    def test_statistics_accumulate(self, manager, two_apps):
        _, page = two_apps["PAGE"]
        _, cardio = two_apps["CARDIO"]
        manager.infer("PAGE", page.X_test[:5])
        manager.infer("CARDIO", cardio.X_test[:7])
        manager.infer("PAGE", page.X_test[:5])
        summary = manager.summary()
        assert summary["PAGE"]["inferences"] == 10
        assert summary["CARDIO"]["inferences"] == 7
        assert summary["PAGE"]["swaps"] == 2
        assert summary["PAGE"]["energy_j"] > 0

    def test_swap_energy_is_small_vs_serving_bursts(self, manager, two_apps):
        """Reprogramming costs less than a sizeable inference burst."""
        _, ds = two_apps["PAGE"]
        report = manager.infer("PAGE", ds.X_test)
        swap = manager.swap_log[0]
        assert swap.energy_j < report.energy_j
