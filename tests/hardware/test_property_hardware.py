"""Property-based tests on hardware-model invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import controller
from repro.hardware.faults import inject_bitflips, quantize_to_bits
from repro.hardware.mitchell import mitchell_divide
from repro.hardware.params import DEFAULT_PARAMS
from repro.hardware.spec import AppSpec

SEEDS = st.integers(min_value=0, max_value=2**31 - 1)


@given(
    num=st.floats(min_value=1e-3, max_value=1e12),
    den=st.floats(min_value=1e-3, max_value=1e12),
)
@settings(max_examples=100, deadline=None)
def test_mitchell_division_relative_error_property(num, den):
    approx = float(mitchell_divide(np.array([num]), np.array([den]))[0])
    exact = num / den
    assert abs(approx - exact) / exact < 0.25


@given(
    dim_units=st.integers(min_value=1, max_value=32),
    d=st.integers(min_value=4, max_value=512),
    n_c=st.integers(min_value=1, max_value=32),
)
@settings(max_examples=60, deadline=None)
def test_cycle_model_positive_and_monotone_in_dim(dim_units, d, n_c):
    dim = dim_units * 128
    spec = AppSpec(dim=dim, n_features=d, n_classes=n_c,
                   window=min(3, d)).validate(DEFAULT_PARAMS)
    cycles, counters = controller.inference(spec, DEFAULT_PARAMS)
    assert cycles > 0
    assert counters.class_reads > 0
    if dim + 128 <= DEFAULT_PARAMS.max_dim * 2 and (dim + 128) * n_c <= DEFAULT_PARAMS.class_capacity_words:
        bigger = spec.with_dim(dim + 128)
        more_cycles, _ = controller.inference(bigger, DEFAULT_PARAMS)
        assert more_cycles >= cycles


@given(seed=SEEDS, bits=st.sampled_from([2, 4, 8]), rate=st.floats(0, 0.3))
@settings(max_examples=50, deadline=None)
def test_bitflip_range_invariant(seed, bits, rate):
    rng = np.random.default_rng(seed)
    model = rng.normal(scale=30, size=(3, 64))
    q = quantize_to_bits(model, bits)
    corrupted = inject_bitflips(q, bits, rate, rng)
    qmax = 2 ** (bits - 1)
    assert corrupted.min() >= -qmax
    assert corrupted.max() <= qmax - 1


@given(seed=SEEDS, bits=st.sampled_from([1, 2, 4, 8, 16]))
@settings(max_examples=40, deadline=None)
def test_quantization_preserves_sign_of_large_entries(seed, bits):
    rng = np.random.default_rng(seed)
    model = rng.normal(scale=10, size=(2, 128))
    q = quantize_to_bits(model, bits)
    scale = np.percentile(np.abs(model), 99.0)
    big = np.abs(model) > 0.6 * scale
    if big.any():
        assert (np.sign(q[big]) == np.sign(model[big])).all()
