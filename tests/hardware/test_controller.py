"""Unit tests for the controller cycle model."""

import pytest

from repro.hardware import controller
from repro.hardware.params import DEFAULT_PARAMS
from repro.hardware.spec import AppSpec


@pytest.fixture
def spec():
    return AppSpec(dim=1024, n_features=100, n_classes=8).validate()


class TestCycleFormulas:
    def test_load_input_is_serial(self, spec):
        cycles, c = controller.load_input(spec, DEFAULT_PARAMS)
        assert cycles == spec.n_features
        assert c.feature_writes == spec.n_features

    def test_pass_dominated_by_features(self, spec):
        cycles, c = controller.encode_pass(spec, DEFAULT_PARAMS, with_search=True)
        assert cycles == spec.n_features + DEFAULT_PARAMS.pass_overhead_cycles
        assert c.level_reads == spec.n_features
        assert c.class_reads == spec.n_classes * DEFAULT_PARAMS.lanes

    def test_pass_without_search_touches_no_classes(self, spec):
        _, c = controller.encode_pass(spec, DEFAULT_PARAMS, with_search=False)
        assert c.class_reads == 0
        assert c.score_reads == 0

    def test_search_bound_pass_when_many_classes(self):
        spec = AppSpec(dim=1024, n_features=10, n_classes=32).validate()
        cycles, _ = controller.encode_pass(spec, DEFAULT_PARAMS, with_search=True)
        assert cycles == 32 + DEFAULT_PARAMS.pass_overhead_cycles

    def test_inference_scales_with_dim(self, spec):
        c1, _ = controller.inference(spec, DEFAULT_PARAMS)
        c2, _ = controller.inference(spec.with_dim(2048), DEFAULT_PARAMS)
        assert c2 > c1
        # doubling dims roughly doubles the pass count
        assert c2 / c1 == pytest.approx(2.0, rel=0.2)

    def test_inference_counts_one_input(self, spec):
        _, c = controller.inference(spec, DEFAULT_PARAMS)
        assert c.inputs_processed == 1

    def test_no_seed_reads_when_ids_disabled(self):
        spec = AppSpec(dim=1024, n_features=100, n_classes=8, use_ids=False).validate()
        _, c = controller.encode_pass(spec, DEFAULT_PARAMS, with_search=True)
        assert c.seed_reads == 0

    def test_train_init_writes_classes(self, spec):
        _, c = controller.train_init(spec, DEFAULT_PARAMS)
        passes = spec.dim // DEFAULT_PARAMS.lanes
        assert c.class_writes == passes * DEFAULT_PARAMS.lanes  # one row per pass

    def test_retrain_miss_costs_more_than_hit(self, spec):
        hit_cycles, hit = controller.retrain_sample(spec, DEFAULT_PARAMS, False)
        miss_cycles, miss = controller.retrain_sample(spec, DEFAULT_PARAMS, True)
        assert miss_cycles > hit_cycles
        assert miss.model_updates == 1
        assert hit.model_updates == 0
        # the paper: each class update costs 3 x D_hv / m extra cycles
        passes = spec.dim // DEFAULT_PARAMS.lanes
        assert miss_cycles - hit_cycles == 2 * 3 * passes

    def test_cluster_sample_updates_copy(self, spec):
        cycles, c = controller.cluster_sample(spec, DEFAULT_PARAMS)
        infer_cycles, _ = controller.inference(spec, DEFAULT_PARAMS)
        assert cycles > infer_cycles
        assert c.model_updates == 1

    def test_finalize_reads_blocked_norms(self, spec):
        _, c = controller.finalize_scores(spec, DEFAULT_PARAMS)
        blocks = spec.dim // DEFAULT_PARAMS.norm_block
        assert c.norm2_reads == spec.n_classes * blocks


class TestCounters:
    def test_add_accumulates(self):
        from repro.hardware.counters import Counters

        a = Counters(cycles=5, class_reads=2)
        b = Counters(cycles=3, level_reads=7)
        a.add(b)
        assert a.cycles == 8
        assert a.class_reads == 2
        assert a.level_reads == 7

    def test_copy_is_independent(self):
        from repro.hardware.counters import Counters

        a = Counters(cycles=5)
        b = a.copy()
        b.cycles = 99
        assert a.cycles == 5

    def test_as_dict_roundtrip(self):
        from repro.hardware.counters import Counters

        a = Counters(cycles=4, norm2_reads=2)
        d = a.as_dict()
        assert d["cycles"] == 4
        assert Counters(**d).norm2_reads == 2
