"""Unit tests for the serial input port and burst analysis."""

import pytest

from repro.hardware.serial import (
    BurstReport,
    InputPort,
    burst_analysis,
    required_baud_for_engine,
)
from repro.hardware.spec import AppSpec


@pytest.fixture
def spec():
    return AppSpec(dim=2048, n_features=200, n_classes=10).validate()


class TestInputPort:
    def test_load_time(self):
        port = InputPort(baud_bits_per_s=1e6, bits_per_element=8)
        assert port.load_time_s(125) == pytest.approx(1e-3)

    def test_element_rate(self):
        port = InputPort(baud_bits_per_s=8e6, bits_per_element=8)
        assert port.element_rate_per_s() == pytest.approx(1e6)

    def test_rejects_empty_input(self):
        with pytest.raises(ValueError):
            InputPort().load_time_s(0)


class TestBurstAnalysis:
    def test_fast_link_is_compute_bound(self, spec):
        report = burst_analysis(spec, InputPort(baud_bits_per_s=1e9))
        assert report.bound == "compute"
        assert report.engine_utilization == pytest.approx(1.0)
        assert report.inputs_per_s > 0

    def test_slow_link_is_link_bound(self, spec):
        report = burst_analysis(spec, InputPort(baud_bits_per_s=1e4))
        assert report.bound == "link"
        assert report.link_utilization == pytest.approx(1.0)
        assert report.engine_utilization < 1.0

    def test_throughput_monotone_in_baud(self, spec):
        slow = burst_analysis(spec, InputPort(baud_bits_per_s=1e5))
        fast = burst_analysis(spec, InputPort(baud_bits_per_s=1e7))
        assert fast.inputs_per_s >= slow.inputs_per_s

    def test_required_baud_balances_pipeline(self, spec):
        baud = required_baud_for_engine(spec)
        report = burst_analysis(spec, InputPort(baud_bits_per_s=baud))
        assert report.t_load_s == pytest.approx(report.t_compute_s, rel=1e-6)

    def test_report_type(self, spec):
        assert isinstance(burst_analysis(spec), BurstReport)

    def test_smaller_dim_runs_faster(self, spec):
        fast_spec = spec.with_dim(512)
        port = InputPort(baud_bits_per_s=1e9)
        big = burst_analysis(spec, port)
        small = burst_analysis(fast_spec, port)
        assert small.inputs_per_s > big.inputs_per_s
