"""Unit tests for the top-level accelerator model."""

import numpy as np
import pytest

from repro.core import model_io
from repro.core.classifier import HDClassifier
from repro.core.encoders import GenericEncoder
from repro.hardware.accelerator import GenericAccelerator
from repro.hardware.spec import AppSpec, Mode

DIM = 256


@pytest.fixture
def loaded_accelerator(fitted_generic_classifier):
    acc = GenericAccelerator()
    image = model_io.export_model(fitted_generic_classifier)
    acc.load_image(image)
    return acc


class TestProgramming:
    def test_configure_validates(self):
        acc = GenericAccelerator()
        with pytest.raises(ValueError):
            acc.configure(AppSpec(dim=100, n_features=10))

    def test_use_before_configure(self):
        acc = GenericAccelerator()
        with pytest.raises(RuntimeError):
            acc.infer(np.zeros((1, 4)))

    def test_use_before_tables(self):
        acc = GenericAccelerator()
        acc.configure(AppSpec(dim=DIM, n_features=10, n_classes=2))
        with pytest.raises(RuntimeError):
            acc.infer(np.zeros((1, 10)))

    def test_load_image_sets_spec(self, fitted_generic_classifier):
        acc = GenericAccelerator()
        spec = acc.load_image(model_io.export_model(fitted_generic_classifier))
        assert spec.dim == fitted_generic_classifier.encoder.dim
        assert spec.n_classes == fitted_generic_classifier.n_classes

    def test_too_many_levels_rejected(self, fitted_generic_classifier):
        acc = GenericAccelerator()
        clf = fitted_generic_classifier
        acc.configure(AppSpec(dim=DIM, n_features=24, n_classes=3))
        big_table = np.ones((200, DIM), dtype=np.int8)
        with pytest.raises(ValueError, match="levels"):
            acc.load_tables(big_table, None, np.asarray(0.0), np.asarray(1.0))


class TestInference:
    def test_matches_software_with_exact_divider(
        self, loaded_accelerator, fitted_generic_classifier, toy_problem
    ):
        _, _, X_test, _ = toy_problem
        report = loaded_accelerator.infer(X_test, exact_divider=True)
        sw = fitted_generic_classifier.predict(X_test)
        assert np.array_equal(report.predictions, sw)

    def test_mitchell_agrees_mostly(
        self, loaded_accelerator, fitted_generic_classifier, toy_problem
    ):
        _, _, X_test, _ = toy_problem
        hw = loaded_accelerator.infer(X_test).predictions
        sw = fitted_generic_classifier.predict(X_test)
        assert np.mean(hw == sw) > 0.9

    def test_report_counts(self, loaded_accelerator, toy_problem):
        _, _, X_test, _ = toy_problem
        report = loaded_accelerator.infer(X_test[:5])
        assert report.n_inputs == 5
        assert report.counters.inputs_processed == 5
        assert report.cycles > 0
        assert report.energy_j > 0
        assert report.time_s == report.cycles / loaded_accelerator.params.clock_hz

    def test_energy_scales_with_inputs(self, loaded_accelerator, toy_problem):
        _, _, X_test, _ = toy_problem
        one = loaded_accelerator.infer(X_test[:1])
        ten = loaded_accelerator.infer(X_test[:10])
        assert ten.energy_j == pytest.approx(10 * one.energy_j, rel=0.01)
        assert ten.energy_per_input_j == pytest.approx(one.energy_per_input_j, rel=0.01)


class TestDimensionReductionAndVos:
    def test_reduce_dimensions_cuts_energy(self, loaded_accelerator, toy_problem):
        _, _, X_test, _ = toy_problem
        full = loaded_accelerator.infer(X_test[:8])
        loaded_accelerator.reduce_dimensions(128)
        reduced = loaded_accelerator.infer(X_test[:8])
        assert reduced.energy_per_input_j < full.energy_per_input_j

    def test_reduce_dimensions_validated(self, loaded_accelerator):
        with pytest.raises(ValueError):
            loaded_accelerator.reduce_dimensions(100)
        with pytest.raises(ValueError):
            loaded_accelerator.reduce_dimensions(DIM * 2)

    def test_vos_cuts_energy(self, loaded_accelerator, toy_problem):
        _, _, X_test, _ = toy_problem
        plain = loaded_accelerator.infer(X_test[:8])
        loaded_accelerator.set_voltage_overscaling(0.05)
        scaled = loaded_accelerator.infer(X_test[:8])
        assert scaled.energy_per_input_j < plain.energy_per_input_j

    def test_vos_off_at_zero(self, loaded_accelerator):
        point = loaded_accelerator.set_voltage_overscaling(0.0)
        assert loaded_accelerator.vos is None
        assert point.static_saving == 1.0


class TestOnDeviceTraining:
    def test_trains_to_usable_accuracy(self, toy_problem):
        X_train, y_train, X_test, y_test = toy_problem
        enc = GenericEncoder(dim=DIM, num_levels=16, seed=3)
        enc.fit(X_train)
        acc = GenericAccelerator()
        acc.configure(AppSpec(dim=DIM, n_features=X_train.shape[1], n_classes=3,
                              mode=Mode.TRAIN))
        acc.load_tables(enc.levels.vectors, enc.id_generator.seed,
                        enc.quantizer.lo, enc.quantizer.hi)
        train_report = acc.train(X_train, y_train, epochs=5)
        # every input is initialized + retrained at least once
        assert train_report.counters.inputs_processed >= len(X_train)
        infer = acc.infer(X_test, exact_divider=True)
        assert np.mean(infer.predictions == y_test) > 0.75

    def test_matches_software_training(self, toy_problem):
        """On-device training equals HDClassifier given the same order."""
        X_train, y_train, X_test, _ = toy_problem
        enc = GenericEncoder(dim=DIM, num_levels=16, seed=3)
        clf = HDClassifier(enc, epochs=3, seed=11, shuffle=True,
                           metric="hardware")
        clf.fit(X_train, y_train)

        enc2 = GenericEncoder(dim=DIM, num_levels=16, seed=3)
        enc2.fit(X_train)
        acc = GenericAccelerator()
        acc.configure(AppSpec(dim=DIM, n_features=X_train.shape[1], n_classes=3))
        acc.load_tables(enc2.levels.vectors, enc2.id_generator.seed,
                        enc2.quantizer.lo, enc2.quantizer.hi)
        acc.train(X_train, y_train, epochs=3, seed=11)
        # same shuffling seed, same per-sample rule -> same class matrix up
        # to the divider used during retraining predictions
        agree = np.mean(
            acc.infer(X_test, exact_divider=True).predictions
            == clf.predict(X_test)
        )
        assert agree > 0.9

    def test_too_many_labels_rejected(self, toy_problem):
        X_train, _, _, _ = toy_problem
        acc = GenericAccelerator()
        acc.configure(AppSpec(dim=DIM, n_features=X_train.shape[1], n_classes=2))
        enc = GenericEncoder(dim=DIM, num_levels=16, seed=3).fit(X_train)
        acc.load_tables(enc.levels.vectors, enc.id_generator.seed,
                        enc.quantizer.lo, enc.quantizer.hi)
        with pytest.raises(ValueError):
            acc.train(X_train, np.arange(len(X_train)) % 3, epochs=1)


class TestClustering:
    def test_clusters_blobs(self):
        rng = np.random.default_rng(6)
        centers = np.array([[0.0] * 8, [5.0] * 8])
        y = rng.integers(0, 2, size=60)
        X = centers[y] + rng.normal(scale=0.4, size=(60, 8))
        acc = GenericAccelerator()
        acc.configure(AppSpec(dim=DIM, n_features=8, n_classes=2,
                              mode=Mode.CLUSTER))
        enc = GenericEncoder(dim=DIM, num_levels=16, seed=3).fit(X)
        acc.load_tables(enc.levels.vectors, enc.id_generator.seed,
                        enc.quantizer.lo, enc.quantizer.hi)
        report = acc.cluster(X, k=2, epochs=8)
        from repro.eval.metrics import normalized_mutual_information

        assert normalized_mutual_information(y, report.predictions) > 0.7
        assert report.counters.model_updates > 0

    def test_k_exceeding_classes_rejected(self, loaded_accelerator, toy_problem):
        X_train, _, _, _ = toy_problem
        with pytest.raises(ValueError):
            loaded_accelerator.cluster(X_train, k=10)


class TestCapacityTrade:
    """Section 4.1: trade D_hv against n_C -- 8K dims for <= 16 classes."""

    def test_8k_dimensions_with_few_classes(self):
        rng = np.random.default_rng(51)
        protos = rng.normal(scale=1.5, size=(4, 12))
        y = rng.integers(0, 4, size=80)
        X = protos[y] + rng.normal(scale=0.5, size=(80, 12))

        enc = GenericEncoder(dim=8192, num_levels=16, seed=8)
        clf = HDClassifier(enc, epochs=2, seed=8).fit(X, y)
        acc = GenericAccelerator()
        spec = acc.load_image(model_io.export_model(clf))
        assert spec.dim == 8192
        report = acc.infer(X[:10], exact_divider=True)
        assert np.array_equal(report.predictions, clf.predict(X[:10]))

    def test_8k_dimensions_with_32_classes_rejected(self):
        from repro.hardware.spec import AppSpec

        acc = GenericAccelerator()
        with pytest.raises(ValueError, match="capacity"):
            acc.configure(AppSpec(dim=8192, n_features=12, n_classes=32))
