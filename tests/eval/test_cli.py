"""Unit tests for the experiment CLI."""

import json

import pytest

from repro.eval import cli


class TestParser:
    def test_known_experiments(self):
        parser = cli.build_parser()
        args = parser.parse_args(["table2"])
        assert args.experiment == "table2"
        assert args.profile == "bench"

    def test_all_keyword(self):
        args = cli.build_parser().parse_args(["all", "--profile", "tiny"])
        assert args.experiment == "all"
        assert args.profile == "tiny"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["fig99"])

    def test_runner_names_match_choices(self):
        runners = cli._runners()
        assert "table1" in runners
        assert "fig9" in runners
        assert "ablation-gating" in runners


class TestRunOne:
    def test_runs_and_writes_json(self, tmp_path, capsys):
        result = cli.run_one("ablation-gating", "tiny", json_dir=tmp_path)
        out = capsys.readouterr().out
        assert "Ablation A2" in out
        payload = json.loads((tmp_path / "ablation-gating.json").read_text())
        assert payload["experiment"] == "Ablation A2"
        assert result.all_claims_hold

    def test_main_exit_codes(self, capsys):
        assert cli.main(["ablation-gating", "--profile", "tiny"]) == 0
        capsys.readouterr()

    def test_strict_mode_passes_when_claims_hold(self, capsys):
        assert cli.main(["ablation-gating", "--profile", "tiny", "--strict"]) == 0
        capsys.readouterr()


class TestTraceFlag:
    def test_trace_writes_jsonl_and_prints_hint(self, tmp_path, capsys):
        from repro.obs import trace as obs_trace
        from repro.obs.export import load_trace

        out = tmp_path / "run.jsonl"
        try:
            assert cli.main(["ablation-gating", "--profile", "tiny",
                             "--trace", str(out)]) == 0
        finally:
            obs_trace.reset()
        stdout = capsys.readouterr().out
        assert "repro.obs report" in stdout
        spans = load_trace(out)
        names = {s["name"] for s in spans}
        assert "experiment" in names
        exp = next(s for s in spans if s["name"] == "experiment")
        assert exp["attrs"] == {"experiment": "ablation-gating",
                                "profile": "tiny"}
        # tracing is torn down after the run
        assert not obs_trace.tracing_enabled()

    def test_untraced_run_writes_nothing(self, tmp_path, capsys):
        from repro.obs import trace as obs_trace

        assert cli.main(["ablation-gating", "--profile", "tiny"]) == 0
        assert not obs_trace.tracing_enabled()
        assert "repro.obs report" not in capsys.readouterr().out
