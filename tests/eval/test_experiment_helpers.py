"""Unit tests for the experiment modules' helper functions (tiny scale)."""

from repro.eval.experiments import fig5, fig6, table1, table2


class TestTable1Helpers:
    def test_evaluate_dataset_columns(self):
        row = table1.evaluate_dataset(
            "PAGE", profile="tiny", dim=256, epochs=2, include_ml=False
        )
        assert set(row) == set(table1.HDC_COLUMNS)
        assert all(0.0 <= v <= 1.0 for v in row.values())

    def test_run_without_ml_skips_ml_columns(self):
        result = table1.run(
            profile="tiny", dim=256, epochs=1, datasets=["PAGE"],
            include_ml=False,
        )
        assert "mlp" not in result.data["means"]
        assert "GENERIC mean beats the best classic-ML mean" not in result.claims

    def test_run_headers_match_columns(self):
        result = table1.run(
            profile="tiny", dim=256, epochs=1, datasets=["PAGE"],
            include_ml=False,
        )
        assert result.headers[0] == "dataset"
        assert list(result.headers[1:]) == list(table1.HDC_COLUMNS)


class TestFig5Helpers:
    def test_sweep_returns_both_policies(self):
        curves = fig5.sweep_dataset(
            "EEG", profile="tiny", dim=512, dims=[128, 512], epochs=1
        )
        assert set(curves) == {"constant", "updated"}
        assert set(curves["updated"]) == {128, 512}

    def test_default_dims_are_sane(self):
        curves = fig5.sweep_dataset("EEG", profile="tiny", dim=512, epochs=1)
        assert all(d >= 128 for d in curves["updated"])
        assert max(curves["updated"]) == 512


class TestFig6Helpers:
    def test_sweep_shape(self):
        out = fig6.sweep_dataset(
            "FACE", profile="tiny", dim=256, bitwidths=(8, 1),
            error_rates=(0.0, 0.05), epochs=1, trials=1,
        )
        assert set(out) == {8, 1}
        assert set(out[8]) == {0.0, 0.05}

    def test_trials_average_is_deterministic(self):
        kwargs = dict(profile="tiny", dim=256, bitwidths=(4,),
                      error_rates=(0.02,), epochs=1, trials=2)
        a = fig6.sweep_dataset("FACE", **kwargs)
        b = fig6.sweep_dataset("FACE", **kwargs)
        assert a == b


class TestTable2Helpers:
    def test_evaluate_dataset_keys(self):
        row = table2.evaluate_dataset("Hepta", dim=256, epochs=3, scale=0.2)
        assert set(row) == {"kmeans", "hdc"}
        assert 0.0 <= row["hdc"] <= 1.0


class TestSummary:
    def test_headline_claims_hold(self):
        from repro.eval.experiments import summary

        result = summary.run()
        result.assert_claims()
        assert result.data["area_mm2"] == 0.30
