"""Unit tests for the text figure renderers."""

import pytest

from repro.eval.figures import bar_chart, line_series


class TestBarChart:
    def test_contains_all_entries(self):
        text = bar_chart({"a": 1.0, "b": 100.0}, title="T")
        assert text.startswith("T")
        assert "a" in text and "b" in text

    def test_log_scaling_orders_bars(self):
        text = bar_chart({"small": 1.0, "big": 1e6})
        small_bar = next(l for l in text.splitlines() if l.startswith("small"))
        big_bar = next(l for l in text.splitlines() if l.startswith("big"))
        assert big_bar.count("#") > small_bar.count("#")

    def test_baseline_ratios(self):
        text = bar_chart({"x": 2.0, "base": 1.0}, baseline="base", log=False)
        assert "(2x)" in text

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            bar_chart({})

    def test_rejects_nonpositive_log(self):
        with pytest.raises(ValueError):
            bar_chart({"a": 0.0})

    def test_linear_mode_allows_zero(self):
        text = bar_chart({"a": 0.0, "b": 5.0}, log=False)
        assert "a" in text

    def test_unit_annotation(self):
        text = bar_chart({"a": 3.0}, log=False, unit=" uJ")
        assert "uJ" in text


class TestLineSeries:
    def test_renders_each_series(self):
        text = line_series(
            {"up": {0: 0.0, 1: 1.0}, "down": {0: 1.0, 1: 0.0}}, title="S"
        )
        assert text.startswith("S")
        assert "up" in text and "down" in text

    def test_axis_summary_line(self):
        text = line_series({"s": {0: 0.2, 2: 0.8}})
        assert "x: 0" in text
        assert "y: 0.2" in text

    def test_explicit_y_range(self):
        text = line_series({"s": {0: 0.5}}, y_range=(0.0, 1.0))
        assert "y: 0 .. 1" in text

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            line_series({})

    def test_monotone_series_monotone_glyphs(self):
        text = line_series({"s": {0: 0.0, 1: 0.25, 2: 0.5, 3: 0.75, 4: 1.0}},
                           width=10)
        row = next(l for l in text.splitlines() if l.startswith("s"))
        glyphs = row.split("|")[1]
        order = " .:-=+*#%@"
        levels = [order.index(g) for g in glyphs]
        assert levels == sorted(levels)
