"""Unit tests for the markdown report generator."""

import pytest

from repro.eval import reporting


class TestGenerateReport:
    def test_single_section(self):
        text = reporting.generate_report(
            profile="tiny", sections=["ablation-gating"]
        )
        assert "# GENERIC reproduction" in text
        assert "Ablation A2" in text
        assert "Shape-claim summary" in text
        assert "- [x] Ablation A2 — power gating" in text

    def test_unknown_selection_rejected(self):
        with pytest.raises(ValueError):
            reporting.generate_report(profile="tiny", sections=["nope"])

    def test_plan_keys_exist_in_cli(self):
        from repro.eval.cli import _runners

        runners = _runners()
        for _, key in reporting.REPORT_PLAN:
            assert key in runners

    def test_main_writes_file(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        code = reporting.main([
            "--profile", "tiny", "--out", str(out),
            "--sections", "ablation-banks",
        ])
        assert code == 0
        assert out.exists()
        assert "Ablation A6" in out.read_text()
        capsys.readouterr()
