"""Unit tests for metrics, tables and the result container."""

import numpy as np
import pytest

from repro.eval.harness import ExperimentResult
from repro.eval.metrics import accuracy, geometric_mean, normalized_mutual_information
from repro.eval.tables import dict_table, format_table


class TestAccuracy:
    def test_basic(self):
        assert accuracy([1, 2, 3], np.array([1, 2, 0])) == pytest.approx(2 / 3)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros(3), np.zeros(4))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))


class TestNMI:
    def test_identical_partitions(self):
        y = np.array([0, 0, 1, 1, 2, 2])
        assert normalized_mutual_information(y, y) == pytest.approx(1.0)

    def test_relabeled_partitions(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([5, 5, 2, 2])
        assert normalized_mutual_information(a, b) == pytest.approx(1.0)

    def test_independent_partitions_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 4, 5000)
        b = rng.integers(0, 4, 5000)
        assert normalized_mutual_information(a, b) < 0.02

    def test_string_labels(self):
        a = ["x", "x", "y", "y"]
        b = [1, 1, 2, 2]
        assert normalized_mutual_information(np.array(a), np.array(b)) == pytest.approx(1.0)

    def test_single_cluster_each(self):
        assert normalized_mutual_information(np.zeros(5), np.zeros(5)) == 1.0

    def test_partial_agreement_in_range(self):
        a = np.array([0, 0, 0, 1, 1, 1])
        b = np.array([0, 0, 1, 1, 1, 1])
        nmi = normalized_mutual_information(a, b)
        assert 0.0 < nmi < 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            normalized_mutual_information(np.zeros(3), np.zeros(4))


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)

    def test_requires_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_requires_values(self):
        with pytest.raises(ValueError):
            geometric_mean([])


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1.0, 2.0], [3.0, 4.0]])
        lines = text.splitlines()
        assert "a" in lines[0] and "bb" in lines[0]
        assert len(lines) == 4

    def test_title_rendered(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.startswith("My Table")

    def test_dict_table(self):
        text = dict_table({"row1": {"c": 0.5}}, title="T")
        assert "row1" in text
        assert "0.500" in text

    def test_dict_table_empty_rejected(self):
        with pytest.raises(ValueError):
            dict_table({})


class TestExperimentResult:
    def make(self, claims):
        return ExperimentResult(
            experiment="X", description="d", headers=["a"], rows=[[1.0]],
            claims=claims,
        )

    def test_render_contains_claims(self):
        text = self.make({"it works": True}).render()
        assert "[ok] it works" in text

    def test_assert_claims_passes(self):
        self.make({"fine": True}).assert_claims()

    def test_assert_claims_raises(self):
        with pytest.raises(AssertionError, match="broken"):
            self.make({"broken": False}).assert_claims()

    def test_all_claims_hold(self):
        assert self.make({"a": True}).all_claims_hold
        assert not self.make({"a": True, "b": False}).all_claims_hold

    def test_to_json_roundtrip(self):
        import json

        result = self.make({"a": True})
        data = json.loads(result.to_json())
        assert data["experiment"] == "X"
        assert data["claims"]["a"] is True
