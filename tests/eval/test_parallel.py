"""Tests for the evaluation harness's parallel fan-out helpers.

The contract is that ``n_jobs`` only changes wall-clock, never results:
every experiment cell is independently seeded, so a parallel run must
be indistinguishable from the serial one.
"""

import os

import pytest

from repro.eval.experiments import ablations, fig5, table1
from repro.eval.harness import parallel_map, resolve_jobs


def _square(x):
    return x * x


class TestResolveJobs:
    def test_none_and_zero_mean_serial(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(0) == 1

    def test_minus_one_means_all_cores(self):
        assert resolve_jobs(-1) == max(1, os.cpu_count() or 1)

    def test_positive_passthrough(self):
        assert resolve_jobs(3) == 3


class TestParallelMap:
    def test_serial_default(self):
        assert parallel_map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_empty(self):
        assert parallel_map(_square, [], n_jobs=4) == []

    @pytest.mark.parametrize("mode", ["process", "thread"])
    def test_parallel_matches_serial_in_order(self, mode):
        items = list(range(17))
        serial = parallel_map(_square, items)
        fanned = parallel_map(_square, items, n_jobs=2, mode=mode)
        assert fanned == serial  # same values, same order

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="parallel mode"):
            parallel_map(_square, [1], n_jobs=2, mode="fiber")


class TestExperimentParallelEquivalence:
    """n_jobs=2 reproduces the serial tables bit-for-bit (tiny profile)."""

    def test_table1_cell_task_is_picklable_and_seeded(self):
        task = ("ISOLET", "generic", "tiny", 512, 2, 0)
        a = table1._evaluate_cell(task)
        b = table1._evaluate_cell(task)
        assert a == b

    def test_table1_parallel_equals_serial(self):
        serial = table1.run(profile="tiny", dim=512, epochs=2,
                            datasets=("ISOLET",))
        fanned = table1.run(profile="tiny", dim=512, epochs=2,
                            datasets=("ISOLET",), n_jobs=2)
        assert serial.rows == fanned.rows
        assert serial.data["table"] == fanned.data["table"]

    def test_fig5_parallel_equals_serial(self):
        serial = fig5.run(profile="tiny", dim=512, epochs=2,
                          datasets=("EEG",))
        fanned = fig5.run(profile="tiny", dim=512, epochs=2,
                          datasets=("EEG",), n_jobs=2)
        assert serial.data["curves"] == fanned.data["curves"]

    def test_window_sweep_parallel_equals_serial(self):
        serial = ablations.run_window_sweep(profile="tiny", dim=512)
        fanned = ablations.run_window_sweep(profile="tiny", dim=512, n_jobs=2)
        assert serial.rows == fanned.rows
