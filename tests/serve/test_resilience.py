"""Resilience layer: breakers, deadlines/retries, chaos, degradation."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.faultspec import FaultSpec
from repro.serve import (
    Backpressure,
    BreakerConfig,
    ChaosPolicy,
    CircuitBreaker,
    DeadlineExceeded,
    DegradationLadder,
    DegradeConfig,
    InferenceServer,
    LoadShedPolicy,
    ModelRegistry,
    Request,
    RetryPolicy,
    ServeConfig,
    ServeError,
    WorkerError,
)
from repro.serve.resilience import CLOSED, HALF_OPEN, OPEN


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


# ---------------------------------------------------------------------------
# circuit breaker
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def make(self, **kw):
        clock = FakeClock()
        cfg = BreakerConfig(**{"window": 8, "min_samples": 4,
                               "error_threshold": 0.5, "open_duration": 1.0,
                               "half_open_probes": 2, **kw})
        return CircuitBreaker(cfg, name="t", time_fn=clock), clock

    def test_stays_closed_under_min_samples(self):
        breaker, _ = self.make()
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_opens_on_error_rate(self):
        breaker, _ = self.make()
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.opened == 1

    def test_opens_on_latency(self):
        breaker, _ = self.make(latency_threshold=0.1, error_threshold=1.0)
        for _ in range(6):
            breaker.record_success(latency=0.5)
        assert breaker.state == OPEN

    def test_full_cycle_open_half_open_closed(self):
        breaker, clock = self.make()
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(1.01)
        assert breaker.state == HALF_OPEN
        assert breaker.half_opened == 1
        # two probe permits, then the gate shuts
        assert breaker.allow() and breaker.allow()
        assert not breaker.allow()
        breaker.record_success(0.001)
        breaker.record_success(0.001)
        assert breaker.state == CLOSED
        assert breaker.closed_from_half_open == 1
        assert breaker.error_rate() is None  # window cleared

    def test_failed_probe_reopens(self):
        breaker, clock = self.make()
        for _ in range(4):
            breaker.record_failure()
        clock.advance(1.01)
        assert breaker.allow()
        breaker.record_failure(0.001)
        assert breaker.state == OPEN
        assert breaker.reopened == 1
        # and the open timer restarted
        clock.advance(0.5)
        assert breaker.state == OPEN
        clock.advance(0.6)
        assert breaker.state == HALF_OPEN

    def test_force_open(self):
        breaker, _ = self.make()
        breaker.force_open()
        assert breaker.state == OPEN and not breaker.allow()

    def test_state_codes(self):
        breaker, clock = self.make()
        assert breaker.state_code == 0
        breaker.force_open()
        assert breaker.state_code == 2
        clock.advance(1.01)
        assert breaker.state_code == 1

    def test_stats_schema(self):
        breaker, _ = self.make()
        assert set(breaker.stats()) == {
            "state", "error_rate", "recent_p95_s", "opened", "half_opened",
            "closed_from_half_open", "reopened",
        }

    def test_eight_thread_hammer(self):
        """8 threads of mixed traffic: no crash, sane counters, legal state."""
        breaker = CircuitBreaker(BreakerConfig(
            window=16, min_samples=4, error_threshold=0.5,
            open_duration=0.002, half_open_probes=2,
        ), name="hammer")
        stop = time.monotonic() + 0.5
        errors = []

        def worker(seed):
            rng = np.random.default_rng(seed)
            try:
                while time.monotonic() < stop:
                    if breaker.allow():
                        if rng.random() < 0.5:
                            breaker.record_failure(rng.random() * 1e-3)
                        else:
                            breaker.record_success(rng.random() * 1e-3)
                    _ = breaker.state, breaker.error_rate(), breaker.stats()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert breaker.state in (CLOSED, OPEN, HALF_OPEN)
        # 50% failures against a 0.5 threshold must have tripped it
        assert breaker.opened >= 1
        rate = breaker.error_rate()
        assert rate is None or 0.0 <= rate <= 1.0


# ---------------------------------------------------------------------------
# retry policy (property-based)
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    @given(
        backoff=st.floats(1e-4, 0.1),
        factor=st.floats(1.0, 4.0),
        cap=st.floats(0.01, 1.0),
        attempts=st.integers(1, 20),
    )
    @settings(max_examples=100, deadline=None)
    def test_delays_non_decreasing_and_capped(self, backoff, factor, cap,
                                              attempts):
        policy = RetryPolicy(max_retries=attempts, backoff=backoff,
                             backoff_factor=factor, max_backoff=cap)
        delays = [policy.delay_for(a) for a in range(1, attempts + 1)]
        assert all(d <= cap + 1e-12 for d in delays)
        assert all(b >= a for a, b in zip(delays, delays[1:]))

    @given(
        max_retries=st.integers(0, 5),
        attempts=st.integers(0, 8),
        budget=st.floats(-0.1, 0.5),
    )
    @settings(max_examples=200, deadline=None)
    def test_never_schedules_past_the_deadline(self, max_retries, attempts,
                                               budget):
        """A retry is only allowed when its backoff fits in the budget."""
        policy = RetryPolicy(max_retries=max_retries, backoff=0.01,
                             backoff_factor=2.0, max_backoff=0.2)
        now = 100.0
        req = Request(x=np.zeros(4), model="m", deadline=now + budget,
                      attempts=attempts)
        err = ServeError("boom", retryable=True)
        if policy.should_retry(req, err, now):
            assert attempts < max_retries
            assert policy.delay_for(attempts + 1) <= budget + 1e-9

    def test_non_retryable_never_retries(self):
        policy = RetryPolicy(max_retries=5)
        req = Request(x=np.zeros(2), model="m")
        assert not policy.should_retry(req, ValueError("plain"), 0.0)
        assert not policy.should_retry(
            req, DeadlineExceeded("late"), 0.0)

    def test_retry_count_respected(self):
        policy = RetryPolicy(max_retries=2)
        err = ServeError("x", retryable=True)
        req = Request(x=np.zeros(2), model="m")  # no deadline: inf budget
        req.attempts = 1
        assert policy.should_retry(req, err, 0.0)
        req.attempts = 2
        assert not policy.should_retry(req, err, 0.0)


# ---------------------------------------------------------------------------
# end-to-end: server + chaos
# ---------------------------------------------------------------------------


def _drain(futures, timeout=15.0):
    ok, failures = [], []
    for f in futures:
        try:
            ok.append(f.result(timeout=timeout))
        except Exception as exc:
            failures.append(exc)
    return ok, failures


class TestChaosEndToEnd:
    def test_injected_faults_are_retried_to_success(self, serve_classifier,
                                                    serve_queries):
        chaos = ChaosPolicy(fault_rate=0.25, seed=11)
        server = InferenceServer(
            ServeConfig(n_workers=2, max_batch=8, max_retries=4,
                        default_deadline=5.0),
            chaos=chaos,
        )
        server.register("m", serve_classifier)
        with server:
            futures = [server.submit("m", x) for x in serve_queries[:48]]
            ok, failures = _drain(futures)
            stats = server.stats()
        assert not failures
        assert len(ok) == 48
        assert chaos.injected_faults > 0
        assert stats["counters"]["retries"] >= chaos.injected_faults
        # retried requests report their attempt count
        assert any(p.attempts > 0 for p in ok)

    def test_memory_bitflips_leave_accuracy_usable(self, serve_classifier,
                                                   serve_queries,
                                                   toy_problem):
        _, _, X_test, y_test = toy_problem
        chaos = ChaosPolicy(
            fault=FaultSpec(error_rate=1e-4, bits=8), seed=5,
        )
        server = InferenceServer(ServeConfig(n_workers=2, max_batch=8),
                                 chaos=chaos)
        server.register("m", serve_classifier)
        with server:
            preds = server.predict_many("m", X_test, timeout=15.0)
        assert chaos.bitflip_injections > 0
        acc = np.mean([p.label for p in preds] == np.asarray(y_test))
        clean = serve_classifier.score(X_test, y_test)
        assert acc >= clean - 0.02  # paper's Fig. 6 resilience claim

    def test_worker_kills_are_respawned_and_requests_survive(
            self, serve_classifier, serve_queries):
        chaos = ChaosPolicy(kill_rate=0.5, max_kills=4, seed=3)
        server = InferenceServer(
            ServeConfig(n_workers=2, max_batch=4, max_retries=5,
                        default_deadline=10.0),
            chaos=chaos,
        )
        server.register("m", serve_classifier)
        with server:
            futures = [server.submit("m", x) for x in serve_queries[:40]]
            ok, failures = _drain(futures)
            deadline = time.monotonic() + 5.0
            while (server.workers.worker_restarts < chaos.injected_kills
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            restarts = server.workers.worker_restarts
        assert not failures
        assert len(ok) == 40
        assert chaos.injected_kills == 4
        assert restarts >= chaos.injected_kills
        assert not server.workers.running  # clean shutdown afterwards

    def test_no_hung_futures_after_stop(self, serve_classifier,
                                        serve_queries):
        """Every submitted future resolves, even through a chaotic stop."""
        chaos = ChaosPolicy(fault_rate=0.3, kill_rate=0.1, max_kills=2,
                            seed=9)
        server = InferenceServer(
            ServeConfig(n_workers=2, max_batch=4, max_retries=3,
                        default_deadline=5.0),
            chaos=chaos,
        )
        server.register("m", serve_classifier)
        server.start()
        futures = [server.submit("m", x) for x in serve_queries[:64]]
        time.sleep(0.05)
        server.stop()
        unresolved = [f for f in futures if not f.done()]
        assert unresolved == []


class TestDeadlines:
    def test_expired_requests_are_shed(self, serve_classifier,
                                       serve_queries):
        chaos = ChaosPolicy(latency_rate=1.0, latency=0.05, seed=2)
        server = InferenceServer(ServeConfig(n_workers=1, max_batch=4),
                                 chaos=chaos)
        server.register("m", serve_classifier)
        with server:
            futures = [server.submit("m", x, deadline=0.03)
                       for x in serve_queries[:24]]
            ok, failures = _drain(futures)
            stats = server.stats()
        assert ok or failures
        assert all(isinstance(e, DeadlineExceeded) for e in failures)
        assert len(failures) >= 1
        assert stats["counters"]["deadline_expired"] == len(failures)
        # shed-on-expiry bounds tail latency: whatever completed was fast
        assert all(p.latency < 0.5 for p in ok)

    def test_default_deadline_from_config(self, serve_classifier):
        server = InferenceServer(
            ServeConfig(n_workers=1, default_deadline=3.0))
        server.register("m", serve_classifier)
        with server:
            fut = server.submit("m", np.zeros(24))
            fut.result(timeout=5.0)
        # reach into the request path: deadline was stamped
        req = Request(x=np.zeros(2), model="m", deadline=None)
        assert not req.expired()
        assert req.remaining() == float("inf")


class TestWorkerErrorStructure:
    """The PR's bugfix: worker exceptions become structured, counted errors."""

    def test_model_exception_resolves_future_with_worker_error(
            self, serve_classifier):
        server = InferenceServer(ServeConfig(n_workers=1, max_retries=2))
        server.register("m", serve_classifier)
        with server:
            # a query with the wrong feature count blows up encode()
            fut = server.submit("m", np.zeros(3))
            with pytest.raises(WorkerError) as excinfo:
                fut.result(timeout=10.0)
            stats = server.stats()
        err = excinfo.value
        assert err.model == "m"
        assert err.worker is not None
        assert err.retryable is False  # deterministic: retrying is useless
        assert err.cause is not None
        assert stats["counters"]["errors"] >= 1
        d = err.to_dict()
        assert d["kind"] == "worker_error" and d["model"] == "m"


# ---------------------------------------------------------------------------
# degradation ladder
# ---------------------------------------------------------------------------


class TestDegradationLadder:
    def make(self, n_breakers=4, **cfg):
        clock = FakeClock()
        registry = ModelRegistry()
        policy = LoadShedPolicy(max_level=8)
        ladder = DegradationLadder(
            registry, policy,
            config=DegradeConfig(**{"cooldown": 0.0, "recover_after": 1.0,
                                    **cfg}),
            time_fn=clock,
        )
        breakers = [CircuitBreaker(BreakerConfig(), time_fn=clock)
                    for _ in range(n_breakers)]
        return ladder, breakers, policy, registry, clock

    def test_escalates_tier_by_tier(self):
        ladder, breakers, policy, _, clock = self.make()
        for b in breakers[:2]:
            b.force_open()
        assert ladder.observe(breakers) == 1
        clock.advance(0.1)
        assert ladder.observe(breakers) == 2  # approx encoding tier
        clock.advance(0.1)
        assert ladder.observe(breakers) == 3
        assert policy.level >= 4  # dim_shed forced the shed floor
        clock.advance(0.1)
        assert ladder.observe(breakers) == 4
        assert ladder.rejecting
        clock.advance(0.1)
        assert ladder.observe(breakers) == 4  # ceiling

    def test_recovers_after_quiet_period(self):
        ladder, breakers, _, _, clock = self.make(recover_after=0.5)
        breakers[0].force_open()
        breakers[1].force_open()
        ladder.observe(breakers)
        assert ladder.tier == 1
        # after open_duration the breakers go half-open (no longer open),
        # which starts the ladder's all-closed recovery timer
        clock.advance(1.01)
        ladder.observe(breakers)
        clock.advance(0.6)
        assert ladder.observe(breakers) == 0
        assert ladder.stats()["recoveries"] == 1

    def test_engine_fallback_and_restore(self, serve_classifier):
        ladder, breakers, _, registry, clock = self.make(n_breakers=2)
        registry.register("m", serve_classifier)
        dep = registry.get("m")
        original = dep.model.encoder.engine
        ladder.force_tier(1)
        assert dep.degraded
        assert dep.model.encoder.engine == "reference"
        ladder.force_tier(0)
        assert not dep.degraded
        assert dep.model.encoder.engine == original

    def test_approx_fallback_and_restore(self, serve_classifier):
        ladder, breakers, _, registry, clock = self.make(n_breakers=2)
        registry.register("m", serve_classifier)
        dep = registry.get("m")
        encoder = dep.model.encoder
        original = encoder.approx_folds
        assert original is None
        ladder.force_tier(2)
        assert dep.approx_degraded
        expected = max(1, round(0.5 * encoder.n_windows))
        assert encoder.approx_folds == expected
        # the plan carries the error bound for the sampled fold
        plan = encoder.encode_plan()
        assert plan.error_bound is not None
        assert plan.error_bound["max_abs_count_error"] == (
            encoder.n_windows - expected
        )
        ladder.force_tier(0)
        assert not dep.approx_degraded
        assert encoder.approx_folds is None

    def test_backpressure_raised_at_top_tier(self, serve_classifier):
        server = InferenceServer(ServeConfig(n_workers=1))
        server.register("m", serve_classifier)
        with server:
            server.ladder.force_tier(4)
            with pytest.raises(Backpressure):
                server.submit("m", np.zeros(24))
            stats = server.stats()
            server.ladder.force_tier(0)
            fut = server.submit("m", np.zeros(24))
            fut.result(timeout=10.0)
        assert stats["counters"]["degraded_rejections"] == 1
        # Backpressure is catchable as QueueFull (admission-control family)
        from repro.serve import QueueFull

        assert issubclass(Backpressure, QueueFull)

    def test_open_breakers_drive_server_ladder(self, serve_classifier,
                                               serve_queries):
        """Forcing every breaker open escalates the live server's ladder."""
        server = InferenceServer(ServeConfig(
            n_workers=2,
            degrade=DegradeConfig(cooldown=0.0, recover_after=30.0),
        ))
        server.register("m", serve_classifier)
        with server:
            for b in server.workers.breakers:
                b.force_open()
            deadline = time.monotonic() + 5.0
            while server.ladder.tier == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert server.ladder.tier >= 1
            stats = server.stats()
            # undo the tier-1 engine fallback on the session fixture
            server.ladder.force_tier(0)
        assert stats["resilience"]["ladder"]["escalations"] >= 1


# ---------------------------------------------------------------------------
# chaos policy unit behavior
# ---------------------------------------------------------------------------


class TestChaosPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="fault_rate"):
            ChaosPolicy(fault_rate=1.5)
        with pytest.raises(ValueError, match="latency"):
            ChaosPolicy(latency=-1.0)

    def test_target_workers_scope_injection(self):
        chaos = ChaosPolicy(fault_rate=1.0, target_workers=[1], seed=0)
        chaos.on_group(0, "m")  # out of scope: no raise
        from repro.serve import InjectedFault

        with pytest.raises(InjectedFault):
            chaos.on_group(1, "m")

    def test_max_kills_cap(self):
        from repro.serve import WorkerKilled

        chaos = ChaosPolicy(kill_rate=1.0, max_kills=2, seed=0)
        for _ in range(2):
            with pytest.raises(WorkerKilled):
                chaos.on_group(0, "m")
        chaos.on_group(0, "m")  # cap reached: no more kills
        assert chaos.injected_kills == 2

    def test_memory_fault_draws_are_independent_but_seeded(self):
        spec = FaultSpec(error_rate=0.01)
        a = ChaosPolicy(fault=spec, seed=4)
        b = ChaosPolicy(fault=spec, seed=4)
        spec_a, rng_a = a.memory_fault(0)
        spec_b, rng_b = b.memory_fault(0)
        assert spec_a is spec
        words = np.zeros(32, dtype=np.uint64)
        first_a = spec_a.corrupt_words(words, rng_a)
        first_b = spec_b.corrupt_words(words, rng_b)
        np.testing.assert_array_equal(first_a, first_b)
        # and the next draw differs from the first
        _, rng_a2 = a.memory_fault(0)
        assert not np.array_equal(spec_a.corrupt_words(words, rng_a2),
                                  first_a)
