"""ShardRouter: hashing, partitioning, and the exact top-k merge.

The load-bearing property (the class-partitioned serving mode depends
on it): merging per-shard ``topk_to_classes`` results by the
``(distance, row)`` key is **bit-identical** to a single-process
``predict_packed`` over the full class matrix, for every D / class
count / shard count / tie pattern.  Hypothesis drives that across
random packed models.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.packed import PackedModel
from repro.serve.sharded.router import (
    ShardRouter,
    merge_topk,
    partition_classes,
    stable_hash,
)


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash(("m", 17)) == stable_hash(("m", 17))

    def test_spreads(self):
        vals = {stable_hash(("m", i)) % 64 for i in range(512)}
        assert len(vals) > 32  # not collapsing onto a few buckets


class TestPartitionClasses:
    @given(n_classes=st.integers(1, 200), n_shards=st.integers(1, 16))
    @settings(max_examples=60, deadline=None)
    def test_partition_covers_exactly(self, n_classes, n_shards):
        spans = [partition_classes(n_classes, n_shards)[s]
                 for s in range(n_shards)]
        covered = []
        for span in spans:
            covered.extend(range(span.start, span.stop))
            assert span.stop - span.start >= 0
        assert covered == list(range(n_classes))
        sizes = [s.stop - s.start for s in spans]
        assert max(sizes) - min(sizes) <= 1


def _random_packed(rng, n_classes, n_words):
    words = rng.integers(0, 2 ** 64, size=(n_classes, n_words),
                         dtype=np.uint64)
    model = PackedModel.__new__(PackedModel)
    model.encoder = None
    model.class_words = words
    model.class_labels = np.arange(n_classes)
    model.dim = n_words * 64
    model.shared_segment = None
    return model


class TestMergeExactness:
    @given(
        seed=st.integers(0, 2 ** 32 - 1),
        n_classes=st.integers(1, 40),
        n_words=st.integers(1, 8),
        n_shards=st.integers(1, 6),
        n_queries=st.integers(1, 12),
        prefix_words=st.integers(0, 8),
        k=st.integers(1, 4),
        low_entropy=st.booleans(),
    )
    @settings(max_examples=80, deadline=None)
    def test_partitioned_topk_merge_is_bit_identical(
        self, seed, n_classes, n_words, n_shards, n_queries,
        prefix_words, k, low_entropy,
    ):
        rng = np.random.default_rng(seed)
        model = _random_packed(rng, n_classes, n_words)
        if low_entropy:
            # force Hamming-distance ties so the (distance, row)
            # tie-break is actually exercised
            model.class_words = model.class_words & np.uint64(0x3)
        queries = rng.integers(0, 2 ** 64, size=(n_queries, n_words),
                               dtype=np.uint64)
        if low_entropy:
            queries = queries & np.uint64(0x3)
        dim = None
        if 0 < prefix_words < n_words:
            dim = prefix_words * 64

        ref = model.predict_packed(queries, dim=dim)

        partials = {}
        for shard in range(n_shards):
            span = partition_classes(n_classes, n_shards)[shard]
            if span.start >= span.stop:
                partials[shard] = (np.empty((n_queries, 0)),
                                   np.empty((n_queries, 0), dtype=np.int64))
                continue
            partials[shard] = model.topk_to_classes(
                queries, k=k, dim=dim, rows=span
            )
        dists, rows = merge_topk(
            [partials[s][0] for s in range(n_shards)],
            [partials[s][1] for s in range(n_shards)], k=k,
        )
        np.testing.assert_array_equal(model.class_labels[rows[:, 0]], ref)
        # and the winning distance equals the true minimum
        nw = n_words if dim is None else dim // 64
        from repro.core.kernels import packed_hamming
        full = packed_hamming(queries[:, None, :nw],
                              model.class_words[None, :, :nw])
        np.testing.assert_array_equal(dists[:, 0], full.min(axis=1))


class TestRouterPick:
    def test_replica_pick_is_sticky_per_key(self):
        router = ShardRouter(4, mode="replica")
        eligible = [0, 1, 2, 3]
        picks = {router.pick(("m", 9), eligible) for _ in range(10)}
        assert len(picks) == 1

    def test_pick_avoids_ineligible(self):
        router = ShardRouter(4, mode="replica")
        for seq in range(50):
            assert router.pick(("m", seq), eligible=[2]) == 2

    def test_least_loaded_override(self):
        router = ShardRouter(2, mode="replica", imbalance=1)
        # pile synthetic load onto shard 0
        for _ in range(10):
            router.dispatched(0)
        counts = {0: 0, 1: 0}
        for seq in range(40):
            counts[router.pick(("m", seq), eligible=[0, 1])] += 1
        assert counts[1] > counts[0]

    def test_partition_rows(self):
        router = ShardRouter(3, mode="partition", n_classes=8)
        spans = [router.shard_rows(s) for s in range(3)]
        assert [s.stop - s.start for s in spans] == [3, 3, 2]

    def test_no_eligible_falls_back_to_ring(self):
        # the caller's breaker path owns total outage; pick still
        # returns a valid shard index rather than raising mid-dispatch
        router = ShardRouter(2, mode="replica")
        assert router.pick(("m", 1), eligible=[]) in (0, 1)
