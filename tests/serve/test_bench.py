"""Tests for the open-loop Poisson traffic harness."""

import json

import numpy as np
import pytest

from repro.serve.bench import main, make_workload, run_bench, train_model
from repro.serve.server import InferenceServer, ServeConfig


class TestWorkload:
    def test_workload_is_deterministic(self):
        a = make_workload(seed=3)
        b = make_workload(seed=3)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_trained_model_is_usable(self):
        model = train_model(dim=256, seed=3)
        _, _, queries = make_workload(seed=3)
        assert len(model.predict(queries[:8])) == 8

    def test_packed_variant(self):
        model = train_model(dim=256, packed=True, seed=3)
        assert model.class_words.shape[1] == 256 // 64


class TestRunBench:
    @pytest.fixture(scope="class")
    def report(self):
        return run_bench(
            rates=[400.0, 2000.0],
            n_requests=60,
            dim=256,
            config=ServeConfig(max_batch=8, n_workers=1),
            seed=3,
        )

    def test_one_point_per_rate(self, report):
        assert [p["offered_rate_rps"] for p in report["load_points"]] == [
            400.0, 2000.0
        ]

    def test_accounting_adds_up(self, report):
        for p in report["load_points"]:
            assert p["completed"] + p["rejected"] + p["errors"] == 60
            assert p["errors"] == 0

    def test_latency_percentiles_present_and_ordered(self, report):
        for p in report["load_points"]:
            lat = p["latency_ms"]
            assert lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]
            assert lat["p50"] > 0

    def test_report_is_json_serializable(self, report):
        parsed = json.loads(json.dumps(report))
        assert parsed["harness"] == "repro.serve.bench"
        assert parsed["model"] == {"kind": "classifier", "dim": 256}

    def test_throughput_positive(self, report):
        for p in report["load_points"]:
            assert p["achieved_throughput_rps"] > 0


class TestCli:
    def test_main_writes_json(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        rc = main([
            "--rates", "500", "--requests", "40", "--dim", "256",
            "--workers", "1", "--out", str(out),
        ])
        assert rc == 0
        report = json.loads(out.read_text())
        assert len(report["load_points"]) == 1
        assert report["load_points"][0]["n_requests"] == 40
        assert "p95" in capsys.readouterr().out

    def test_bad_rate_rejected(self):
        model = train_model(dim=256, seed=3)
        server = InferenceServer()
        server.register("default", model)
        _, _, queries = make_workload(seed=3)
        from repro.serve.bench import run_load_point
        with server:
            with pytest.raises(ValueError):
                run_load_point(server, queries, rate=0, n_requests=1)
