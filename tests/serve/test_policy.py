"""Unit tests for the load-shedding policy (fake clock throughout)."""

import pytest

from repro.serve.policy import LoadShedPolicy


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def make_policy(**kw):
    clock = FakeClock()
    defaults = dict(max_level=4, queue_high=8, queue_low=1,
                    cooldown=1.0, time_fn=clock)
    defaults.update(kw)
    return LoadShedPolicy(**defaults), clock


class TestShedding:
    def test_starts_at_zero(self):
        policy, _ = make_policy()
        assert policy.level == 0

    def test_deep_queue_sheds_one_step(self):
        policy, clock = make_policy()
        clock.advance(10)
        assert policy.observe(queue_depth=20) == 1
        assert policy.shed_events == 1
        assert policy.max_level_seen == 1

    def test_cooldown_limits_rate(self):
        policy, clock = make_policy(cooldown=1.0)
        clock.advance(10)
        policy.observe(queue_depth=20)
        # still overloaded, but inside the cooldown window
        assert policy.observe(queue_depth=20) == 1
        clock.advance(1.5)
        assert policy.observe(queue_depth=20) == 2

    def test_clamps_at_max_level(self):
        policy, clock = make_policy(max_level=2)
        for _ in range(5):
            clock.advance(2)
            policy.observe(queue_depth=20)
        assert policy.level == 2

    def test_p95_target_triggers_shed(self):
        policy, clock = make_policy(p95_target=0.010)
        for _ in range(20):
            policy.record_latency(0.050)
        clock.advance(10)
        assert policy.observe(queue_depth=0) == 1


class TestRecovery:
    def test_calm_queue_recovers(self):
        policy, clock = make_policy()
        clock.advance(2)
        policy.observe(queue_depth=20)
        clock.advance(2)
        assert policy.observe(queue_depth=0) == 0
        assert policy.recover_events == 1

    def test_hysteresis_between_thresholds_holds_level(self):
        policy, clock = make_policy(queue_high=8, queue_low=1)
        clock.advance(2)
        policy.observe(queue_depth=20)
        clock.advance(2)
        # depth 4 is neither overloaded (>=8) nor calm (<=1): hold
        assert policy.observe(queue_depth=4) == 1

    def test_latency_blocks_recovery_until_comfortable(self):
        policy, clock = make_policy(p95_target=0.010, recover_fraction=0.5,
                                    window=32)
        clock.advance(2)
        policy.observe(queue_depth=20)
        for _ in range(32):
            policy.record_latency(0.008)  # under target, above 0.5*target
        clock.advance(2)
        assert policy.observe(queue_depth=0) == 1
        for _ in range(32):  # fills the window with comfortable samples
            policy.record_latency(0.001)
        clock.advance(2)
        assert policy.observe(queue_depth=0) == 0

    def test_never_below_zero(self):
        policy, clock = make_policy()
        clock.advance(2)
        assert policy.observe(queue_depth=0) == 0


class TestForceAndValidation:
    def test_force_level(self):
        policy, _ = make_policy()
        policy.force_level(3)
        assert policy.level == 3
        assert policy.max_level_seen == 3
        with pytest.raises(ValueError):
            policy.force_level(99)

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            LoadShedPolicy(max_level=-1)
        with pytest.raises(ValueError):
            LoadShedPolicy(queue_high=1, queue_low=5)
        with pytest.raises(ValueError):
            LoadShedPolicy(recover_fraction=0.0)
