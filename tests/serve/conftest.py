"""Fixtures for the serving-layer tests: small trained deployments."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.classifier import HDClassifier
from repro.core.encoders import GenericEncoder
from repro.core.packed import PackedModel

SERVE_DIM = 512  # 4 x 128-dim blocks -> three shed levels before the floor


@pytest.fixture(scope="session")
def serve_classifier(toy_problem):
    """A 512-dim classifier so shedding has room: levels 0..3 -> 512..128."""
    X_train, y_train, _, _ = toy_problem
    enc = GenericEncoder(dim=SERVE_DIM, num_levels=16, seed=11)
    return HDClassifier(enc, epochs=4, seed=11).fit(X_train, y_train)


@pytest.fixture(scope="session")
def serve_packed(serve_classifier):
    return PackedModel.from_classifier(serve_classifier)


@pytest.fixture(scope="session")
def serve_queries(toy_problem):
    _, _, X_test, _ = toy_problem
    return np.asarray(X_test, dtype=np.float64)
