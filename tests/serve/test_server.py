"""Integration tests for the inference server.

These pin the subsystem's acceptance criteria:

- at full dimensionality, served predictions are identical to calling
  the underlying model directly;
- under induced overload the shed-level gauge rises, latency stays
  bounded, every request still completes, and shed predictions equal
  the model's own reduced-dimension output -- which uses the exact
  :class:`~repro.core.norms.SubNormTable` prefix norms of Section
  4.3.3, not the stale full-length norms.
"""

import json

import numpy as np
import pytest

from repro.core.classifier import HDClassifier
from repro.core.encoders import GenericEncoder
from repro.core.norms import SubNormTable
from repro.serve import (
    Deployment,
    InferenceServer,
    QueueClosed,
    QueueFull,
    ServeConfig,
)


@pytest.fixture
def server(serve_classifier, serve_packed):
    s = InferenceServer(ServeConfig(max_batch=16, n_workers=2))
    s.register("full", serve_classifier)
    s.register("packed", serve_packed)
    with s:
        yield s


class TestFullDimEquivalence:
    def test_classifier_outputs_identical(
        self, server, serve_classifier, serve_queries
    ):
        got = [p.label for p in server.predict_many("full", serve_queries)]
        assert np.array_equal(got, serve_classifier.predict(serve_queries))

    def test_packed_outputs_identical(self, server, serve_packed, serve_queries):
        got = [p.label for p in server.predict_many("packed", serve_queries)]
        assert np.array_equal(got, serve_packed.predict(serve_queries))

    def test_predictions_report_full_dim(self, server, serve_queries):
        pred = server.submit("full", serve_queries[0]).result(timeout=10)
        assert pred.dim == 512
        assert pred.shed_level == 0
        assert pred.model == "full"
        assert pred.latency > 0

    def test_sync_predict(self, server, serve_classifier, serve_queries):
        assert (server.predict("full", serve_queries[0])
                == serve_classifier.predict(serve_queries[:1])[0])


class TestShedding:
    def test_forced_shed_matches_subnorm_reduced_predict(
        self, serve_classifier, serve_queries
    ):
        """Shed level 2 on a 512-dim model -> 256 dims via SubNormTable."""
        # huge cooldown: the pinned level cannot drift during the run
        s = InferenceServer(ServeConfig(max_batch=16, shed_cooldown=1e6))
        s.register("full", serve_classifier)
        with s:
            s.policy.force_level(2)
            preds = s.predict_many("full", serve_queries)
        assert all(p.dim == 256 for p in preds)
        expected = serve_classifier.predict(serve_queries, dim=256)
        assert np.array_equal([p.label for p in preds], expected)

    def test_shed_uses_exact_prefix_norms_not_constant(self):
        """A crafted model where exact and stale norms disagree at dim=128."""
        dim, block = 256, 128
        clf = HDClassifier(GenericEncoder(dim=dim), norm_block=block)
        clf.classes_ = np.array([0, 1])
        # class 0: aligned prefix, huge tail norm; class 1: weak prefix only
        model = np.zeros((2, dim))
        model[0, :block] = 1.0
        model[0, block:] = 100.0
        model[1, :96] = 1.0
        model[1, 96:block] = -1.0
        clf.model_ = model
        clf.norms_ = SubNormTable(2, dim, block=block)
        clf.norms_.recompute(model)

        q = np.ones((1, dim))
        exact = clf.predict_encoded(q, dim=block)
        stale = clf.predict_encoded(q, dim=block, constant_norms=True)
        assert exact[0] == 0 and stale[0] == 1  # the paper's Fig. 5 failure

        dep = Deployment("crafted", clf)
        assert dep.search(q, dim=block)[0] == exact[0]

    def test_overload_sheds_and_stays_bounded(self, serve_classifier, serve_queries):
        config = ServeConfig(
            max_batch=4,
            max_wait=0.0,
            n_workers=1,
            queue_high=4,
            queue_low=0,
            shed_cooldown=0.0,
        )
        s = InferenceServer(config)
        s.register("m", serve_classifier)
        with s:
            futures = [
                s.submit("m", serve_queries[i % len(serve_queries)])
                for i in range(300)
            ]
            preds = [f.result(timeout=30) for f in futures]
            # the gauge rose under load
            assert s.policy.max_level_seen >= 1
            assert s.metrics.gauge("shed_level").max >= 1
            shed = [p for p in preds if p.dim < 512]
            assert shed, "overload never produced a reduced-dim prediction"
            assert s.metrics.counter("shed_predictions").value >= len(shed)
            # p95 stays bounded (loose sanity bound; the point is it completes)
            assert s.metrics.histogram("total").percentile(95) < 10.0

        # every shed prediction equals the exact SubNormTable-reduced output
        for i, p in enumerate(preds):
            if p.dim < 512:
                x = serve_queries[i % len(serve_queries)][None, :]
                assert p.label == serve_classifier.predict(x, dim=p.dim)[0]


class TestHotSwap:
    def test_swap_serves_new_version(
        self, server, serve_classifier, serve_packed, serve_queries
    ):
        v1 = server.submit("full", serve_queries[0]).result(timeout=10)
        assert v1.version == 1
        server.register("full", serve_packed)  # retrained/repacked model
        v2 = server.submit("full", serve_queries[0]).result(timeout=10)
        assert v2.version == 2
        assert v2.label == serve_packed.predict(serve_queries[:1])[0]


class TestAdmissionAndLifecycle:
    def test_submit_before_start_raises(self, serve_classifier):
        s = InferenceServer()
        s.register("m", serve_classifier)
        with pytest.raises(RuntimeError):
            s.submit("m", np.zeros(24))

    def test_unknown_model_raises(self, server):
        with pytest.raises(KeyError):
            server.submit("nope", np.zeros(24))

    def test_full_queue_rejects_and_counts(self, serve_classifier):
        s = InferenceServer(ServeConfig(queue_size=2))
        s.register("m", serve_classifier)
        s._started = True  # no workers: the queue can only fill
        s.submit("m", np.zeros(24))
        s.submit("m", np.zeros(24))
        with pytest.raises(QueueFull):
            s.submit("m", np.zeros(24))
        assert s.metrics.counter("rejected").value == 1
        s.stop()

    def test_stop_fails_pending_futures(self, serve_classifier):
        s = InferenceServer(ServeConfig(queue_size=8))
        s.register("m", serve_classifier)
        s._started = True  # no workers: submitted requests stay queued
        fut = s.submit("m", np.zeros(24))
        s.stop()
        with pytest.raises(QueueClosed):
            fut.result(timeout=1)

    def test_double_start_raises(self, server):
        with pytest.raises(RuntimeError):
            server.start()

    def test_stats_json_serializable(self, server, serve_queries):
        server.predict_many("full", serve_queries[:4])
        stats = json.loads(json.dumps(server.stats()))
        assert stats["counters"]["served"] >= 4
        assert stats["deployments"]["full"]["dim"] == 512
        assert "queue_wait" in stats["histograms"]
        assert "encode" in stats["histograms"]
        assert "search" in stats["histograms"]


class TestStatsSchema:
    """The stats() snapshot is a public contract (dashboards parse it)."""

    TOP_KEYS = {"counters", "gauges", "histograms", "queue", "policy",
                "deployments", "resilience", "slo", "recorder"}

    def test_schema_after_quick_bench_run(self, serve_classifier,
                                          serve_queries):
        """A bench-quick-style burst populates every snapshot section."""
        server = InferenceServer(ServeConfig(max_batch=8, n_workers=2))
        server.register("m", serve_classifier)
        with server:
            for x in serve_queries[:24]:
                server.predict("m", x)
            server.wait_idle(timeout=10.0)
            stats = server.stats()
        assert set(stats) == self.TOP_KEYS
        # stable sub-schemas
        assert set(stats["queue"]) == {"depth", "maxsize"}
        assert set(stats["policy"]) == {
            "level", "max_level_seen", "shed_events", "recover_events",
            "recent_p95_s",
        }
        assert set(stats["deployments"]["m"]) == {
            "kind", "dim", "min_dim", "version", "serving_dim", "degraded",
        }
        assert set(stats["resilience"]) == {
            "breakers", "ladder", "retry", "worker_restarts", "chaos",
        }
        assert [b["state"] for b in stats["resilience"]["breakers"]] == [
            "closed", "closed",
        ]
        assert stats["resilience"]["chaos"] is None
        # the workers maintain these gauges on every batch
        assert stats["gauges"]["shed_level"] == {"value": 0.0, "max": 0.0}
        assert stats["gauges"]["queue_depth"]["value"] >= 0.0
        assert stats["counters"]["served"] == 24
        for hist in ("batch_size", "queue_wait", "encode", "search", "total"):
            snap = stats["histograms"][hist]
            assert set(snap) == {
                "count", "mean_s", "p50_s", "p95_s", "p99_s", "min_s",
                "max_s",
            }
            assert snap["count"] > 0
        # round-trips to JSON without a custom encoder
        assert json.loads(json.dumps(stats)) == stats

    def test_prometheus_exposition(self, server, serve_queries):
        server.predict_many("full", serve_queries[:4])
        text = server.render_prometheus()
        assert "# TYPE serve_served counter" in text
        assert "serve_queue_depth" in text
        assert 'serve_total_bucket{le="+Inf"}' in text
        assert "serve_total_sum" in text

    def test_metrics_endpoint_lifecycle(self, serve_classifier,
                                        serve_queries):
        import urllib.error
        import urllib.request

        server = InferenceServer(ServeConfig(n_workers=1))
        server.register("m", serve_classifier)
        with server:
            endpoint = server.start_metrics_endpoint(port=0)
            with pytest.raises(RuntimeError):
                server.start_metrics_endpoint()
            server.predict("m", serve_queries[0])
            with urllib.request.urlopen(endpoint.url, timeout=5) as resp:
                body = resp.read().decode()
            assert "serve_served 1" in body
        # stop() closed the endpoint; the port no longer accepts requests
        with pytest.raises((ConnectionError, urllib.error.URLError, OSError)):
            urllib.request.urlopen(endpoint.url, timeout=1)
