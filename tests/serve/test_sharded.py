"""End-to-end ShardedServer: exactness, swap, crash recovery, zero-copy."""

from __future__ import annotations

import asyncio
import os
import threading
import time

import numpy as np
import pytest

from repro.serve.resilience import ChaosPolicy
from repro.serve.sharded import ShardedServeConfig, ShardedServer
from repro.stream import StreamConfig, StreamLoop

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"),
    reason="POSIX shared memory not available",
)


def _config(**kw):
    base = dict(n_shards=2, max_batch=8, max_wait=0.002,
                max_shed_level=0, default_deadline=None)
    base.update(kw)
    return ShardedServeConfig(**base)


def _no_leaked_segments(server):
    prefix = server.arena.prefix
    return not [f for f in os.listdir("/dev/shm") if f.startswith(prefix)]


@pytest.fixture(scope="module")
def replica_server(serve_classifier):
    server = ShardedServer(_config(mode="replica"))
    server.register("m", serve_classifier)
    with server:
        yield server
    assert _no_leaked_segments(server)


class TestReplicaMode:
    def test_bit_exact_vs_single_process(self, replica_server, serve_packed,
                                         serve_queries):
        q = serve_queries[:32]
        ref = serve_packed.predict_packed(serve_packed.encode_packed(q))
        preds = replica_server.predict_many("m", q, timeout=60.0)
        np.testing.assert_array_equal([p.label for p in preds], ref)
        assert {p.shard for p in preds} <= {0, 1}

    def test_asubmit_from_event_loop(self, replica_server, serve_queries):
        async def go():
            preds = await asyncio.gather(*[
                replica_server.asubmit("m", x) for x in serve_queries[:6]
            ])
            return [p.label for p in preds]

        labels = asyncio.run(go())
        assert len(labels) == 6

    def test_shard_stats_and_zero_copy(self, replica_server, serve_queries):
        replica_server.predict_many("m", serve_queries[:8], timeout=60.0)
        stats = replica_server.shard_stats(timeout=10.0)
        assert set(stats) == {0, 1}
        for payload in stats.values():
            assert payload["served"] > 0
            mapping = payload["shm"]["m"]
            # the model mapping carries no private dirty pages: the
            # worker reads the one shared physical copy, it never wrote
            # or duplicated it
            assert mapping.get("private_dirty_kb", 0) == 0
        # absorbed worker series are queryable from the parent
        prom = replica_server.render_prometheus()
        assert "shard_served" in prom

    def test_stats_snapshot_shape(self, replica_server):
        snap = replica_server.stats()
        assert snap["router"]["mode"] == "replica"
        dep = snap["deployments"]["m"]
        assert dep["segment"] is not None and dep["epoch"] >= 1


class TestPartitionMode:
    def test_bit_exact_vs_single_process(self, serve_classifier,
                                         serve_packed, serve_queries):
        server = ShardedServer(_config(mode="partition"))
        server.register("m", serve_classifier)
        q = serve_queries[:24]
        ref = serve_packed.predict_packed(serve_packed.encode_packed(q))
        with server:
            preds = server.predict_many("m", q, timeout=60.0)
            np.testing.assert_array_equal([p.label for p in preds], ref)
        assert _no_leaked_segments(server)

    def test_partition_requires_registered_model(self):
        server = ShardedServer(_config(mode="partition"))
        with pytest.raises(RuntimeError, match="partition mode"):
            server.start()


class TestHotSwap:
    def test_swap_under_load_drops_nothing(self, serve_classifier,
                                           serve_queries):
        server = ShardedServer(_config())
        server.register("m", serve_classifier)
        futures, submit_errors = [], []
        stop = threading.Event()

        def pump():
            i = 0
            while not stop.is_set():
                try:
                    futures.append(
                        server.submit("m", serve_queries[i % len(serve_queries)])
                    )
                except Exception as exc:  # noqa: BLE001
                    submit_errors.append(exc)
                i += 1
                time.sleep(0.001)

        with server:
            t = threading.Thread(target=pump)
            t.start()
            while not futures or not futures[0].done():
                time.sleep(0.01)
            dep = server.swap("m", serve_classifier, drain=True)
            time.sleep(0.1)
            stop.set()
            t.join()
            assert server.wait_idle(30.0)
            preds = [f.result(timeout=30.0) for f in futures]
            assert not submit_errors
            assert dep.version == 2
            versions = {p.version for p in preds}
            assert versions == {1, 2}
            stats = server.stats()
            assert stats["counters"].get("errors", 0) == 0
            assert stats["counters"].get("swap_ack_timeouts", 0) == 0
            # the old epoch's segment was unlinked after the all-shard ack
            assert stats["deployments"]["m"]["epoch"] == 2
        assert _no_leaked_segments(server)

    def test_swap_rejects_dim_order(self, serve_classifier):
        server = ShardedServer(_config())
        server.register("m", serve_classifier)
        with pytest.raises(ValueError, match="dim_order"):
            server.swap("m", serve_classifier, dim_order=np.arange(4))
        server.stop()


class TestCrashRecovery:
    def test_killed_shard_respawns_and_requests_retry(
            self, serve_classifier, serve_packed, serve_queries):
        chaos = ChaosPolicy(kill_rate=0.08, max_kills=2, seed=13)
        server = ShardedServer(
            _config(max_retries=6, retry_backoff=0.02), chaos=chaos,
        )
        server.register("m", serve_classifier)
        q = serve_queries[:40]
        ref = serve_packed.predict_packed(serve_packed.encode_packed(q))
        with server:
            preds = server.predict_many("m", q, timeout=120.0)
            np.testing.assert_array_equal([p.label for p in preds], ref)
            stats = server.stats()
            assert stats["counters"].get("worker_kills", 0) >= 1
            assert stats["resilience"]["worker_restarts"] >= 1
        assert _no_leaked_segments(server)


class TestStreamLoopIntegration:
    def test_stream_loop_drives_sharded_server(self, serve_classifier,
                                               serve_queries, toy_problem):
        X_train, y_train, _, _ = toy_problem
        server = ShardedServer(_config())
        loop = StreamLoop(server, serve_classifier,
                          StreamConfig(model_name="m", chunk_size=32))
        assert server.registry.get("m").kind == "packed"
        with server, loop:
            report = loop.process(X_train[:32], y_train[:32])
            assert report.model_version == 1
            # a retrain-style swap rides the sharded epoch protocol
            loop._install(serve_classifier, reason="test")
            assert server.registry.get("m").version == 2
            preds = server.predict_many("m", serve_queries[:4], timeout=60.0)
            assert all(p.version == 2 for p in preds)
        assert _no_leaked_segments(server)
