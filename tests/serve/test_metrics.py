"""Unit tests for the serving metrics primitives."""

import json
import threading

import pytest

from repro.serve.metrics import (
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsHub,
    SlidingWindow,
)


class TestCounterGauge:
    def test_counter_increments(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_thread_safety(self):
        c = Counter()
        threads = [threading.Thread(target=lambda: [c.inc() for _ in range(1000)])
                   for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000

    def test_gauge_tracks_max(self):
        g = Gauge()
        g.set(3)
        g.set(7)
        g.set(2)
        assert g.value == 2
        assert g.max == 7


class TestLatencyHistogram:
    def test_empty(self):
        h = LatencyHistogram()
        assert h.count == 0
        assert h.percentile(95) == 0.0
        assert h.mean == 0.0

    def test_percentiles_bracket_samples(self):
        h = LatencyHistogram()
        for ms in (1, 2, 3, 4, 100):
            h.record(ms / 1e3)
        # log buckets are approximate: p50 within one growth factor of 3 ms
        assert 2e-3 <= h.percentile(50) <= 3e-3 * 1.35
        # the max lands exactly (overflow tracked as max)
        assert h.percentile(100) == pytest.approx(0.1)
        assert h.count == 5
        assert h.mean == pytest.approx(0.022)

    def test_negative_clamped(self):
        h = LatencyHistogram()
        h.record(-1.0)
        assert h.percentile(50) >= 0.0

    def test_bad_percentile_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(101)

    def test_snapshot_keys(self):
        h = LatencyHistogram()
        h.record(0.01)
        snap = h.snapshot()
        assert set(snap) == {"count", "mean_s", "p50_s", "p95_s", "p99_s",
                             "min_s", "max_s"}


class TestSlidingWindow:
    def test_empty_is_none(self):
        assert SlidingWindow(4).percentile(95) is None

    def test_exact_percentile(self):
        w = SlidingWindow(100)
        for v in range(1, 101):
            w.record(v)
        assert w.percentile(95) == 95
        assert w.percentile(50) == 50

    def test_window_evicts_old(self):
        w = SlidingWindow(4)
        for v in (100, 100, 1, 1, 1, 1):
            w.record(v)
        assert w.percentile(95) == 1

    def test_bad_size(self):
        with pytest.raises(ValueError):
            SlidingWindow(0)


class TestMetricsHub:
    def test_get_or_create_is_stable(self):
        hub = MetricsHub()
        assert hub.counter("a") is hub.counter("a")
        assert hub.gauge("g") is hub.gauge("g")
        assert hub.histogram("h") is hub.histogram("h")

    def test_snapshot_is_json_serializable(self):
        hub = MetricsHub()
        hub.counter("served").inc(3)
        hub.gauge("depth").set(2)
        hub.histogram("total").record(0.004)
        snap = hub.snapshot()
        parsed = json.loads(json.dumps(snap))
        assert parsed["counters"]["served"] == 3
        assert parsed["gauges"]["depth"]["max"] == 2
        assert parsed["histograms"]["total"]["count"] == 1


class TestThreadHammerRegression:
    """8 writers hammering inc/record must lose nothing.

    ``Counter.inc``/``Histogram.record`` are read-modify-writes; before
    the locked fast path, concurrent workers could drop counts.  Mirrors
    the obs-layer hammer (the serve instruments ARE the obs instruments
    since the registry unification) from the serving-facade side.
    """

    N_THREADS = 8
    N_OPS = 2500

    def _run(self, work):
        barrier = threading.Barrier(self.N_THREADS)

        def target():
            barrier.wait()
            work()

        threads = [threading.Thread(target=target)
                   for _ in range(self.N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def test_counter_hammer(self):
        c = Counter()
        self._run(lambda: [c.inc() for _ in range(self.N_OPS)])
        assert c.value == self.N_THREADS * self.N_OPS

    def test_histogram_hammer(self):
        h = LatencyHistogram()
        self._run(lambda: [h.record(0.002) for _ in range(self.N_OPS)])
        assert h.count == self.N_THREADS * self.N_OPS
        assert h.sum == pytest.approx(self.N_THREADS * self.N_OPS * 0.002)

    def test_hub_instruments_hammer(self):
        hub = MetricsHub()

        def work():
            for _ in range(self.N_OPS):
                hub.counter("served").inc()
                hub.histogram("total").record(0.001)

        self._run(work)
        snap = hub.snapshot()
        assert snap["counters"]["served"] == self.N_THREADS * self.N_OPS
        assert snap["histograms"]["total"]["count"] == (
            self.N_THREADS * self.N_OPS)


class TestHubRegistryIntegration:
    def test_private_registries_do_not_mix(self):
        a, b = MetricsHub(), MetricsHub()
        a.counter("served").inc(5)
        assert b.snapshot()["counters"].get("served") is None

    def test_injected_registry_is_used(self):
        from repro.obs.registry import Registry

        reg = Registry(namespace="serve")
        hub = MetricsHub(registry=reg)
        hub.counter("served").inc(2)
        assert reg.snapshot()["counters"]["served"] == 2

    def test_render_prometheus_namespaced(self):
        hub = MetricsHub()
        hub.counter("served").inc()
        assert "serve_served 1" in hub.render_prometheus()
