"""Unit tests for deployments and the hot-swappable model registry."""

import threading
import time

import numpy as np
import pytest

from repro.core.classifier import HDClassifier
from repro.core.encoders import GenericEncoder
from repro.serve.registry import Deployment, ModelRegistry


class TestDeployment:
    def test_classifier_metadata(self, serve_classifier):
        dep = Deployment("m", serve_classifier)
        assert dep.kind == "classifier"
        assert dep.dim == 512
        assert dep.block == 128
        assert dep.min_dim == 128
        assert dep.max_level == 3

    def test_packed_metadata(self, serve_packed):
        dep = Deployment("m", serve_packed)
        assert dep.kind == "packed"
        assert dep.dim == 512
        assert dep.block == 128

    def test_dim_for_level_steps_and_clamps(self, serve_classifier):
        dep = Deployment("m", serve_classifier)
        assert [dep.dim_for_level(k) for k in range(6)] == [
            512, 384, 256, 128, 128, 128
        ]
        assert dep.dim_for_level(-3) == 512

    def test_predict_matches_model_both_kinds(
        self, serve_classifier, serve_packed, serve_queries
    ):
        for model in (serve_classifier, serve_packed):
            dep = Deployment("m", model)
            assert np.array_equal(
                dep.predict(serve_queries), model.predict(serve_queries)
            )

    def test_reduced_dim_matches_model(self, serve_classifier, serve_queries):
        dep = Deployment("m", serve_classifier)
        assert np.array_equal(
            dep.predict(serve_queries, dim=256),
            serve_classifier.predict(serve_queries, dim=256),
        )

    def test_search_treats_full_dim_as_none(self, serve_packed, serve_queries):
        dep = Deployment("m", serve_packed)
        words = dep.encode(serve_queries)
        assert np.array_equal(
            dep.search(words, dim=512), dep.search(words, dim=None)
        )

    def test_unfitted_classifier_rejected(self):
        with pytest.raises(ValueError):
            Deployment("m", HDClassifier(GenericEncoder(dim=256)))

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError):
            Deployment("m", object())

    def test_bad_min_dim_rejected(self, serve_classifier):
        with pytest.raises(ValueError):
            Deployment("m", serve_classifier, min_dim=100)  # not a block multiple
        with pytest.raises(ValueError):
            Deployment("m", serve_classifier, min_dim=1024)  # > dim

    @pytest.fixture
    def restore_engine(self, serve_classifier):
        yield
        serve_classifier.encoder.engine = "auto"  # session-scoped fixture

    def test_engine_flag_applied_to_encoder(self, serve_classifier, restore_engine):
        Deployment("m", serve_classifier, engine="reference")
        assert serve_classifier.encoder.engine == "reference"
        Deployment("m", serve_classifier, engine="packed")
        assert serve_classifier.encoder.engine == "packed"

    def test_engine_choice_never_changes_predictions(
        self, serve_classifier, serve_queries, restore_engine
    ):
        ref = Deployment("m", serve_classifier, engine="reference")
        ref_out = ref.predict(serve_queries)
        packed = Deployment("m", serve_classifier, engine="packed")
        assert np.array_equal(packed.predict(serve_queries), ref_out)

    def test_encode_jobs_never_changes_predictions(
        self, serve_classifier, serve_queries
    ):
        serial = Deployment("m", serve_classifier).predict(serve_queries)
        fanned = Deployment(
            "m", serve_classifier, encode_jobs=3
        ).predict(serve_queries)
        assert np.array_equal(serial, fanned)

    def test_engine_on_unsupported_encoder_rejected(self, toy_problem):
        from repro.core.encoders import RandomProjectionEncoder

        X_train, y_train, _, _ = toy_problem
        clf = HDClassifier(
            RandomProjectionEncoder(dim=256, seed=1), epochs=1
        ).fit(X_train, y_train)
        with pytest.raises(ValueError, match="no selectable engine"):
            Deployment("m", clf, engine="packed")


class TestModelRegistry:
    def test_register_and_get(self, serve_classifier):
        reg = ModelRegistry()
        dep = reg.register("a", serve_classifier)
        assert reg.get("a") is dep
        assert dep.version == 1
        assert "a" in reg
        assert reg.names() == ["a"]

    def test_hot_swap_bumps_version(self, serve_classifier, serve_packed):
        reg = ModelRegistry()
        reg.register("a", serve_classifier)
        dep2 = reg.register("a", serve_packed)
        assert dep2.version == 2
        assert reg.get("a").kind == "packed"
        assert len(reg) == 1

    def test_unknown_name_lists_registered(self, serve_classifier):
        reg = ModelRegistry()
        reg.register("a", serve_classifier)
        with pytest.raises(KeyError, match="'a'"):
            reg.get("missing")

    def test_unregister(self, serve_classifier):
        reg = ModelRegistry()
        reg.register("a", serve_classifier)
        reg.unregister("a")
        assert "a" not in reg
        reg.unregister("a")  # idempotent


class TestSwap:
    def test_swap_bumps_version_and_preserves_limits(self, serve_classifier):
        reg = ModelRegistry()
        reg.register("a", serve_classifier, min_dim=256)
        clone = serve_classifier.with_model(serve_classifier.model_.copy())
        dep = reg.swap("a", clone)
        assert dep.version == 2
        assert dep.min_dim == 256
        assert reg.get("a") is dep
        assert reg.swaps == 1

    def test_swap_unknown_name_rejected(self, serve_classifier):
        reg = ModelRegistry()
        with pytest.raises(KeyError, match="register it first"):
            reg.swap("missing", serve_classifier)

    def test_swap_with_dim_order_permutes_queries(self, serve_classifier,
                                                  serve_queries):
        reg = ModelRegistry()
        reg.register("a", serve_classifier)
        before = reg.get("a").predict(serve_queries)
        order = np.random.default_rng(0).permutation(512)
        permuted = serve_classifier.with_model(
            serve_classifier.model_[:, order])
        dep = reg.swap("a", permuted, dim_order=order)
        assert np.array_equal(dep.predict(serve_queries), before)

    def test_bad_dim_order_rejected(self, serve_classifier):
        with pytest.raises(ValueError, match="permutation"):
            Deployment("a", serve_classifier, dim_order=np.zeros(512, int))
        with pytest.raises(ValueError, match="permutation"):
            Deployment("a", serve_classifier, dim_order=np.arange(100))

    def test_dim_order_on_packed_rejected(self, serve_packed):
        with pytest.raises(ValueError):
            Deployment("a", serve_packed, dim_order=np.arange(512))

    def test_engine_fallback_state_survives_swap(self, serve_classifier):
        reg = ModelRegistry()
        dep = reg.register("a", serve_classifier)
        dep.fallback_engine("reference")
        clone = serve_classifier.with_model(serve_classifier.model_.copy())
        try:
            new = reg.swap("a", clone)
            # still degraded, and restore undoes it on the new deployment
            assert new.degraded
            assert clone.encoder.engine == "reference"
            new.restore_engine()
            assert not new.degraded
        finally:
            serve_classifier.encoder.engine = "auto"

    def test_serving_tracks_inflight_and_drain(self, serve_classifier):
        dep = Deployment("a", serve_classifier)
        assert dep.inflight == 0
        assert dep.wait_drained(timeout=0.1)
        with dep.serving():
            assert dep.inflight == 1
            assert not dep.wait_drained(timeout=0.01)
        assert dep.inflight == 0
        assert dep.wait_drained(timeout=0.1)

    def test_swap_with_drain_waits_for_old_version(self, serve_classifier):
        reg = ModelRegistry()
        old = reg.register("a", serve_classifier)
        clone = serve_classifier.with_model(serve_classifier.model_.copy())
        entered = threading.Event()
        release = threading.Event()

        def worker():
            with old.serving():
                entered.set()
                release.wait(5.0)

        t = threading.Thread(target=worker)
        t.start()
        assert entered.wait(5.0)
        done = []
        swapper = threading.Thread(
            target=lambda: done.append(
                reg.swap("a", clone, drain=True, drain_timeout=10.0))
        )
        swapper.start()
        # the new version is visible immediately, drain only blocks return
        deadline = time.monotonic() + 5.0
        while reg.get("a").version != 2 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert reg.get("a").version == 2
        assert swapper.is_alive()  # still draining the old version
        release.set()
        swapper.join(5.0)
        t.join(5.0)
        assert not swapper.is_alive()
        assert done and done[0].version == 2

    def test_concurrent_get_and_swap_no_torn_reads(self, serve_classifier):
        """Hammer: readers always see an internally consistent deployment."""
        reg = ModelRegistry()
        reg.register("a", serve_classifier)
        stop = threading.Event()
        failures = []
        versions_seen = []

        def swapper():
            marker = 0
            while not stop.is_set():
                marker += 1
                clone = serve_classifier.with_model(
                    serve_classifier.model_.copy())
                clone._marker = marker
                dep = reg.swap("a", clone)
                dep._expected_marker = marker

        def reader():
            last = 0
            while not stop.is_set():
                dep = reg.get("a")
                with dep.serving():
                    # consistency: the deployment's model matches the
                    # marker stamped when that exact version was swapped
                    marker = getattr(dep.model, "_marker", None)
                    expected = getattr(dep, "_expected_marker", None)
                    if marker is not None and expected is not None \
                            and marker != expected:
                        failures.append((marker, expected))
                    if dep.version < last:
                        failures.append(("version went backwards",
                                         dep.version, last))
                    last = dep.version
            versions_seen.append(last)

        threads = [threading.Thread(target=swapper)] + [
            threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        time.sleep(0.5)
        stop.set()
        for t in threads:
            t.join(5.0)
        assert failures == []
        assert reg.swaps > 0
        assert max(versions_seen) <= reg.get("a").version
