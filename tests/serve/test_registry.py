"""Unit tests for deployments and the hot-swappable model registry."""

import numpy as np
import pytest

from repro.core.classifier import HDClassifier
from repro.core.encoders import GenericEncoder
from repro.serve.registry import Deployment, ModelRegistry


class TestDeployment:
    def test_classifier_metadata(self, serve_classifier):
        dep = Deployment("m", serve_classifier)
        assert dep.kind == "classifier"
        assert dep.dim == 512
        assert dep.block == 128
        assert dep.min_dim == 128
        assert dep.max_level == 3

    def test_packed_metadata(self, serve_packed):
        dep = Deployment("m", serve_packed)
        assert dep.kind == "packed"
        assert dep.dim == 512
        assert dep.block == 128

    def test_dim_for_level_steps_and_clamps(self, serve_classifier):
        dep = Deployment("m", serve_classifier)
        assert [dep.dim_for_level(k) for k in range(6)] == [
            512, 384, 256, 128, 128, 128
        ]
        assert dep.dim_for_level(-3) == 512

    def test_predict_matches_model_both_kinds(
        self, serve_classifier, serve_packed, serve_queries
    ):
        for model in (serve_classifier, serve_packed):
            dep = Deployment("m", model)
            assert np.array_equal(
                dep.predict(serve_queries), model.predict(serve_queries)
            )

    def test_reduced_dim_matches_model(self, serve_classifier, serve_queries):
        dep = Deployment("m", serve_classifier)
        assert np.array_equal(
            dep.predict(serve_queries, dim=256),
            serve_classifier.predict(serve_queries, dim=256),
        )

    def test_search_treats_full_dim_as_none(self, serve_packed, serve_queries):
        dep = Deployment("m", serve_packed)
        words = dep.encode(serve_queries)
        assert np.array_equal(
            dep.search(words, dim=512), dep.search(words, dim=None)
        )

    def test_unfitted_classifier_rejected(self):
        with pytest.raises(ValueError):
            Deployment("m", HDClassifier(GenericEncoder(dim=256)))

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError):
            Deployment("m", object())

    def test_bad_min_dim_rejected(self, serve_classifier):
        with pytest.raises(ValueError):
            Deployment("m", serve_classifier, min_dim=100)  # not a block multiple
        with pytest.raises(ValueError):
            Deployment("m", serve_classifier, min_dim=1024)  # > dim

    @pytest.fixture
    def restore_engine(self, serve_classifier):
        yield
        serve_classifier.encoder.engine = "auto"  # session-scoped fixture

    def test_engine_flag_applied_to_encoder(self, serve_classifier, restore_engine):
        Deployment("m", serve_classifier, engine="reference")
        assert serve_classifier.encoder.engine == "reference"
        Deployment("m", serve_classifier, engine="packed")
        assert serve_classifier.encoder.engine == "packed"

    def test_engine_choice_never_changes_predictions(
        self, serve_classifier, serve_queries, restore_engine
    ):
        ref = Deployment("m", serve_classifier, engine="reference")
        ref_out = ref.predict(serve_queries)
        packed = Deployment("m", serve_classifier, engine="packed")
        assert np.array_equal(packed.predict(serve_queries), ref_out)

    def test_encode_jobs_never_changes_predictions(
        self, serve_classifier, serve_queries
    ):
        serial = Deployment("m", serve_classifier).predict(serve_queries)
        fanned = Deployment(
            "m", serve_classifier, encode_jobs=3
        ).predict(serve_queries)
        assert np.array_equal(serial, fanned)

    def test_engine_on_unsupported_encoder_rejected(self, toy_problem):
        from repro.core.encoders import RandomProjectionEncoder

        X_train, y_train, _, _ = toy_problem
        clf = HDClassifier(
            RandomProjectionEncoder(dim=256, seed=1), epochs=1
        ).fit(X_train, y_train)
        with pytest.raises(ValueError, match="no selectable engine"):
            Deployment("m", clf, engine="packed")


class TestModelRegistry:
    def test_register_and_get(self, serve_classifier):
        reg = ModelRegistry()
        dep = reg.register("a", serve_classifier)
        assert reg.get("a") is dep
        assert dep.version == 1
        assert "a" in reg
        assert reg.names() == ["a"]

    def test_hot_swap_bumps_version(self, serve_classifier, serve_packed):
        reg = ModelRegistry()
        reg.register("a", serve_classifier)
        dep2 = reg.register("a", serve_packed)
        assert dep2.version == 2
        assert reg.get("a").kind == "packed"
        assert len(reg) == 1

    def test_unknown_name_lists_registered(self, serve_classifier):
        reg = ModelRegistry()
        reg.register("a", serve_classifier)
        with pytest.raises(KeyError, match="'a'"):
            reg.get("missing")

    def test_unregister(self, serve_classifier):
        reg = ModelRegistry()
        reg.register("a", serve_classifier)
        reg.unregister("a")
        assert "a" not in reg
        reg.unregister("a")  # idempotent
