"""ServingSurface conformance: both backends, one contract.

The shared schema test the ISSUE asked for: the threaded
:class:`InferenceServer` and the process-sharded :class:`ShardedServer`
must satisfy the :class:`~repro.serve.surface.ServingSurface` protocol
structurally *and* emit :func:`~repro.serve.surface.validate_stats`-clean
``stats()`` snapshots with identical required top-level keys, so
consumers (stream loop, benches, fleet aggregator) can treat them
interchangeably.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.serve import (
    STATS_OPTIONAL_KEYS,
    STATS_REQUIRED_KEYS,
    InferenceServer,
    ServeConfig,
    ServingSurface,
    validate_stats,
)
from repro.serve.sharded import ShardedServeConfig, ShardedServer
from repro.serve.surface import ServingSurfaceBase

needs_shm = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"),
    reason="POSIX shared memory not available",
)


@pytest.fixture(scope="module")
def thread_server(serve_classifier):
    server = InferenceServer(ServeConfig(n_workers=1, max_batch=8))
    server.register("m", serve_classifier)
    with server:
        yield server


@pytest.fixture(scope="module")
def sharded_server(serve_classifier):
    if not os.path.isdir("/dev/shm"):
        pytest.skip("POSIX shared memory not available")
    server = ShardedServer(ShardedServeConfig(
        n_shards=2, max_batch=8, max_wait=0.002, default_deadline=None,
    ))
    server.register("m", serve_classifier)
    with server:
        yield server


class TestProtocol:
    def test_both_backends_satisfy_the_protocol(self, thread_server,
                                                sharded_server):
        assert isinstance(thread_server, ServingSurface)
        assert isinstance(sharded_server, ServingSurface)

    def test_both_backends_share_the_base(self, thread_server,
                                          sharded_server):
        assert isinstance(thread_server, ServingSurfaceBase)
        assert isinstance(sharded_server, ServingSurfaceBase)

    def test_a_random_object_does_not(self):
        assert not isinstance(object(), ServingSurface)


class TestStatsSchema:
    def test_thread_stats_validate(self, thread_server):
        thread_server.predict("m", np.zeros(24), timeout=30.0)
        snap = thread_server.stats()
        validate_stats(snap)
        assert set(snap) == STATS_REQUIRED_KEYS

    @needs_shm
    def test_sharded_stats_validate(self, sharded_server):
        sharded_server.predict("m", np.zeros(24), timeout=30.0)
        snap = sharded_server.stats()
        validate_stats(snap)
        assert set(snap) == STATS_REQUIRED_KEYS | STATS_OPTIONAL_KEYS

    @needs_shm
    def test_required_keys_agree_across_backends(self, thread_server,
                                                 sharded_server):
        thread_keys = set(thread_server.stats())
        sharded_keys = set(sharded_server.stats())
        assert thread_keys <= sharded_keys
        assert sharded_keys - thread_keys <= STATS_OPTIONAL_KEYS
        for key in ("queue", "policy", "resilience"):
            assert (set(thread_server.stats()[key])
                    == set(sharded_server.stats()[key]))

    def test_validate_rejects_missing_and_unknown_keys(self, thread_server):
        snap = thread_server.stats()
        broken = dict(snap)
        broken.pop("queue")
        with pytest.raises(ValueError, match="missing required"):
            validate_stats(broken)
        extra = dict(snap)
        extra["workers"] = {}  # the old pre-schema drift key
        with pytest.raises(ValueError, match="unknown top-level"):
            validate_stats(extra)

    def test_validate_rejects_malformed_nested_dicts(self, thread_server):
        snap = thread_server.stats()
        bad = dict(snap)
        bad["policy"] = {"level": 0}
        with pytest.raises(ValueError, match="policy"):
            validate_stats(bad)
        bad = dict(snap)
        bad["deployments"] = {"m": {"kind": "classifier"}}
        with pytest.raises(ValueError, match="deployments"):
            validate_stats(bad)

    def test_illegal_extra_stats_fail_fast(self, serve_classifier):
        class Rogue(InferenceServer):
            def _extra_stats(self):
                return {"not_in_schema": 1}

        rogue = Rogue(ServeConfig(n_workers=1))
        rogue.register("m", serve_classifier)
        with pytest.raises(RuntimeError, match="outside the stats schema"):
            rogue.stats()


class TestPredictEncoded:
    def test_thread_parity_with_direct_model(self, thread_server,
                                             serve_classifier,
                                             serve_queries):
        dep = thread_server.registry.get("m")
        encoded = dep.encode(serve_queries[:16])
        via_server = thread_server.predict_encoded("m", encoded)
        direct = serve_classifier.predict_encoded(encoded)
        np.testing.assert_array_equal(via_server, direct)

    def test_thread_dim_reduction_passthrough(self, thread_server,
                                              serve_classifier,
                                              serve_queries):
        dep = thread_server.registry.get("m")
        encoded = dep.encode(serve_queries[:8])
        via_server = thread_server.predict_encoded("m", encoded, dim=256)
        direct = serve_classifier.predict_encoded(encoded, dim=256)
        np.testing.assert_array_equal(via_server, direct)

    @needs_shm
    def test_sharded_parity_with_packed_model(self, sharded_server,
                                              serve_packed, serve_queries):
        dep = sharded_server.registry.get("m")
        encoded = dep.encode(serve_queries[:16])
        via_server = sharded_server.predict_encoded("m", encoded)
        direct = serve_packed.predict_packed(
            serve_packed.encode_packed(serve_queries[:16]))
        np.testing.assert_array_equal(via_server, direct)

    def test_matches_the_submit_path(self, thread_server, serve_queries):
        batch = serve_queries[:8]
        dep = thread_server.registry.get("m")
        side_door = thread_server.predict_encoded("m", dep.encode(batch))
        queued = [p.label for p in
                  thread_server.predict_many("m", batch, timeout=30.0)]
        np.testing.assert_array_equal(side_door, queued)


class TestUtilization:
    def test_thread_worker_utilization_shape(self, thread_server,
                                             serve_queries):
        thread_server.predict_many("m", serve_queries[:8], timeout=30.0)
        util = thread_server.worker_utilization()
        assert set(util) >= {"busy_seconds", "served"}
        assert len(util["busy_seconds"]) == len(util["served"])

    @needs_shm
    def test_sharded_worker_utilization_shape(self, sharded_server,
                                              serve_queries):
        sharded_server.predict_many("m", serve_queries[:8], timeout=60.0)
        util = sharded_server.worker_utilization()
        assert set(util) >= {"busy_seconds", "served"}
        assert len(util["busy_seconds"]) == 2  # one entry per shard
