"""SharedModelArena lifecycle: publish, attach, detach, never leak."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.shared import SharedModelArena

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"),
    reason="POSIX shared memory not available",
)


def _segments(prefix: str):
    return [f for f in os.listdir("/dev/shm") if f.startswith(prefix)]


def test_publish_attach_round_trip():
    a = np.arange(12, dtype=np.uint64).reshape(3, 4)
    b = np.linspace(0, 1, 7, dtype=np.float64)
    with SharedModelArena(prefix="t_arena1") as arena:
        spec = arena.publish({"a": a, "b": b}, meta=b"hello", epoch=3)
        assert spec.epoch == 3
        assert spec.meta == b"hello"
        assert spec.payload_bytes == a.nbytes + b.nbytes
        views = arena.attach(spec)
        np.testing.assert_array_equal(views["a"], a)
        np.testing.assert_array_equal(views["b"], b)
        # 64-byte alignment of every array
        for aspec in spec.arrays:
            assert aspec.offset % 64 == 0
    assert not _segments("t_arena1")


def test_attached_views_are_read_only():
    with SharedModelArena(prefix="t_arena2") as arena:
        spec = arena.publish({"a": np.ones(4, dtype=np.uint64)})
        views = arena.attach(spec)
        with pytest.raises(ValueError):
            views["a"][0] = 2
        writable = arena.attach(spec, writable=True)
        writable["a"][0] = 2
        assert arena.attach(spec)["a"][0] == 2  # one mapping per segment


def test_unlink_and_detach_idempotent():
    arena = SharedModelArena(prefix="t_arena3")
    spec = arena.publish({"a": np.zeros(2, dtype=np.uint64)})
    assert spec.segment in arena.owned()
    arena.unlink(spec.segment)
    arena.unlink(spec.segment)  # no-op
    arena.detach(spec.segment)  # never attached: no-op
    assert not _segments("t_arena3")
    arena.close_all()


def test_consumer_detach_does_not_destroy_segment():
    publisher = SharedModelArena(prefix="t_arena4")
    consumer = SharedModelArena(prefix="t_arena4c")
    try:
        spec = publisher.publish({"a": np.arange(8, dtype=np.uint64)})
        views = consumer.attach(spec)
        np.testing.assert_array_equal(views["a"], np.arange(8))
        del views
        consumer.detach(spec.segment)
        # the publisher's segment must survive a consumer detach
        assert _segments("t_arena4")
        again = consumer.attach(spec)
        np.testing.assert_array_equal(again["a"], np.arange(8))
    finally:
        del again
        consumer.close_all()
        publisher.close_all()
    assert not _segments("t_arena4")


def test_close_all_with_live_views_defers_but_unlinks():
    arena = SharedModelArena(prefix="t_arena5")
    spec = arena.publish({"a": np.arange(4, dtype=np.uint64)})
    view = arena.attach(spec)["a"]
    arena.close_all()  # view still alive: close defers, unlink proceeds
    assert not _segments("t_arena5")
    assert int(view[3]) == 3  # mapping stays valid until the view dies
