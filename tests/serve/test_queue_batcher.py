"""Unit tests for the bounded request queue and the micro-batcher."""

import threading
import time

import numpy as np
import pytest

from repro.serve.batcher import MicroBatcher
from repro.serve.queue import QueueClosed, QueueFull, Request, RequestQueue


def _req(i=0):
    return Request(x=np.asarray([float(i)]), model="m")


class TestRequestQueue:
    def test_fifo(self):
        q = RequestQueue(maxsize=4)
        for i in range(3):
            q.put(_req(i))
        assert [q.get(timeout=0).x[0] for _ in range(3)] == [0.0, 1.0, 2.0]

    def test_full_rejects(self):
        q = RequestQueue(maxsize=2)
        q.put(_req())
        q.put(_req())
        with pytest.raises(QueueFull):
            q.put(_req())
        assert q.depth() == 2

    def test_closed_rejects_put(self):
        q = RequestQueue(maxsize=2)
        q.close()
        with pytest.raises(QueueClosed):
            q.put(_req())

    def test_get_timeout_returns_none(self):
        q = RequestQueue(maxsize=2)
        t0 = time.monotonic()
        assert q.get(timeout=0.02) is None
        assert time.monotonic() - t0 < 1.0

    def test_close_wakes_blocked_consumer(self):
        q = RequestQueue(maxsize=2)
        got = []

        def consume():
            got.append(q.get(timeout=5.0))

        t = threading.Thread(target=consume)
        t.start()
        time.sleep(0.05)
        q.close()
        t.join(timeout=2.0)
        assert not t.is_alive()
        assert got == [None]

    def test_drain_empties(self):
        q = RequestQueue(maxsize=4)
        q.put(_req(1))
        q.put(_req(2))
        drained = q.drain()
        assert len(drained) == 2
        assert q.depth() == 0

    def test_bad_maxsize(self):
        with pytest.raises(ValueError):
            RequestQueue(maxsize=0)


class TestMicroBatcher:
    def test_coalesces_up_to_max_batch(self):
        q = RequestQueue(maxsize=16)
        for i in range(10):
            q.put(_req(i))
        b = MicroBatcher(q, max_batch=4, max_wait=0.0)
        batch = b.next_batch(timeout=0.1)
        assert len(batch) == 4
        assert [r.x[0] for r in batch] == [0.0, 1.0, 2.0, 3.0]
        assert q.depth() == 6

    def test_empty_on_timeout(self):
        q = RequestQueue(maxsize=4)
        b = MicroBatcher(q, max_batch=4, max_wait=0.001)
        assert b.next_batch(timeout=0.02) == []

    def test_linger_collects_late_arrivals(self):
        q = RequestQueue(maxsize=8)
        b = MicroBatcher(q, max_batch=8, max_wait=0.25)

        def late_producer():
            time.sleep(0.03)
            q.put(_req(2))

        q.put(_req(1))
        t = threading.Thread(target=late_producer)
        t.start()
        batch = b.next_batch(timeout=0.5)
        t.join()
        assert len(batch) == 2

    def test_dispatches_before_linger_when_full(self):
        q = RequestQueue(maxsize=8)
        for i in range(3):
            q.put(_req(i))
        b = MicroBatcher(q, max_batch=3, max_wait=10.0)
        t0 = time.monotonic()
        batch = b.next_batch(timeout=0.1)
        assert len(batch) == 3
        assert time.monotonic() - t0 < 5.0  # did not sleep out the linger

    def test_bad_params(self):
        q = RequestQueue(maxsize=2)
        with pytest.raises(ValueError):
            MicroBatcher(q, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(q, max_wait=-1.0)
