"""End-to-end distributed tracing across the sharded serving fleet.

The acceptance checks for the observability tentpole:

- one ``trace_id`` follows a request from ``submit`` through the
  batcher into a shard *worker process* and back to the response, in
  both replica and class-partitioned routing modes, with the worker's
  ``serve.encode``/``serve.search`` spans re-parented under the
  submitting request's trace in the exported JSONL;
- an injected chaos kill produces a flight-recorder postmortem bundle
  containing the affected trace;
- the SLO engine's burn-rate gauge reacts within one evaluation
  window under load.
"""

from __future__ import annotations

import os
import re

import pytest

from repro.obs import trace as obs_trace
from repro.obs.export import CollectorSink
from repro.obs.lint import lint_records
from repro.obs.recorder import load_bundle
from repro.obs.slo import SLObjective
from repro.serve.resilience import ChaosPolicy
from repro.serve.server import InferenceServer, ServeConfig
from repro.serve.sharded import ShardedServeConfig, ShardedServer

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"),
    reason="POSIX shared memory not available",
)

HEX_ID = re.compile(r"^[0-9a-f]{16}$")


def _config(**kw):
    base = dict(n_shards=2, max_batch=8, max_wait=0.002,
                max_shed_level=0, default_deadline=None)
    base.update(kw)
    return ShardedServeConfig(**base)


@pytest.fixture(autouse=True)
def _tracing_isolation():
    obs_trace.reset()
    yield
    obs_trace.reset()


def spans_for(sink, trace_id):
    return [s for s in sink.spans if s.get("trace_id") == trace_id]


def run_traced(server, queries, n=6):
    """Serve ``n`` traced single-request batches; return (sink, preds)."""
    sink = CollectorSink()
    obs_trace.enable_tracing(sink)
    preds = []
    with server:
        for x in queries[:n]:
            # sequential submits so every batch is its own trace leader
            preds.append(server.submit("m", x).result(timeout=60.0))
    obs_trace.disable_tracing()
    return sink, preds


def assert_request_tree(sink, pred, partition=False):
    """One request's span tree: root <- dispatch <- worker spans."""
    assert pred.trace_id is not None and HEX_ID.match(pred.trace_id)
    spans = spans_for(sink, pred.trace_id)
    by_name = {}
    for span in spans:
        by_name.setdefault(span["name"], []).append(span)
    root = by_name["serve.request"][0]
    assert root.get("parent_span_id") is None
    assert root["span_id"] and HEX_ID.match(root["span_id"])
    dispatch = by_name["serve.dispatch"][0]
    assert dispatch["parent_span_id"] == root["span_id"]
    # worker spans: emitted in another process, re-parented under the
    # dispatch span of this request's batch
    parent_pid = os.getpid()
    for name in ("serve.encode", "serve.search"):
        workers = by_name[name]
        assert workers, f"no {name} spans for trace {pred.trace_id}"
        for span in workers:
            assert span["parent_span_id"] == dispatch["span_id"]
            assert span["pid"] != parent_pid
    if partition:
        # scatter: every shard searches; parent-side merge span exists
        search_shards = {
            s["attrs"]["shard"] for s in by_name["serve.search"]
        }
        assert len(search_shards) == 2
        merge = by_name["serve.merge"][0]
        assert merge["parent_span_id"] == dispatch["span_id"]
        assert merge["pid"] == parent_pid
    # the whole tree lints clean against the trace schema
    findings = lint_records(enumerate(spans, 1))
    assert [f.message for f in findings] == []


class TestReplicaModeTracing:
    def test_trace_follows_request_into_worker_process(
            self, serve_classifier, serve_queries):
        server = ShardedServer(_config(mode="replica"))
        server.register("m", serve_classifier)
        sink, preds = run_traced(server, serve_queries)
        for pred in preds:
            assert_request_tree(sink, pred)
        # every request got its own trace
        assert len({p.trace_id for p in preds}) == len(preds)

    def test_untraced_requests_carry_no_trace_id(
            self, serve_classifier, serve_queries):
        server = ShardedServer(_config(mode="replica"))
        server.register("m", serve_classifier)
        with server:
            pred = server.submit("m", serve_queries[0]).result(timeout=60.0)
        assert pred.trace_id is None


class TestPartitionModeTracing:
    def test_scatter_gather_spans_reparent_and_merge(
            self, serve_classifier, serve_queries):
        server = ShardedServer(_config(mode="partition"))
        server.register("m", serve_classifier)
        sink, preds = run_traced(server, serve_queries, n=4)
        for pred in preds:
            assert_request_tree(sink, pred, partition=True)


class TestChaosKillBundle:
    def test_kill_dumps_bundle_with_affected_trace(
            self, serve_classifier, serve_queries, tmp_path):
        chaos = ChaosPolicy(kill_rate=1.0, max_kills=1, seed=3)
        server = ShardedServer(
            _config(max_retries=6, retry_backoff=0.02,
                    postmortem_dir=str(tmp_path)),
            chaos=chaos,
        )
        server.register("m", serve_classifier)
        sink, preds = run_traced(server, serve_queries, n=4)
        assert all(p.label is not None for p in preds)  # retried fine
        bundles = sorted(tmp_path.glob("flight-worker_kill-*.json"))
        assert bundles, "chaos kill produced no postmortem bundle"
        bundle = load_bundle(str(bundles[0]))
        assert bundle["trigger"] == "worker_kill"
        assert any(e["kind"] == "worker_kill" for e in bundle["events"])
        # the bundle names the affected trace and leads with its spans
        affected = bundle["trace_id"]
        assert affected is not None and HEX_ID.match(affected)
        assert affected in {p.trace_id for p in preds}
        assert bundle["spans"][0]["trace_id"] == affected


class TestSLOReaction:
    def test_burn_rate_reacts_within_one_window(self, serve_classifier,
                                                serve_queries):
        slo = SLObjective(
            "latency", target=0.9, latency_threshold_s=1e-9,
            windows=(0.5, 2.0), burn_threshold=2.0,
        )
        server = InferenceServer(ServeConfig(
            max_batch=4, n_workers=2, slos=[slo],
        ))
        server.register("m", serve_classifier)
        with server:
            futs = [server.submit("m", x) for x in serve_queries[:20]]
            for f in futs:
                f.result(timeout=30.0)
            snap = server.stats()["slo"]["latency"]
            prom = server.render_prometheus()
        # every request misses a 1 ns latency target: the short window
        # saturates within this (sub-window-length) burst
        assert snap["burn"]["0.5s"] >= 2.0
        assert snap["breaching"] is True
        assert 'serve_slo_burn_rate{slo="latency",window="0.5s"}' in prom
        assert 'serve_slo_breaching{slo="latency"} 1.0' in prom

    def test_healthy_load_does_not_breach(self, serve_classifier,
                                          serve_queries):
        slo = SLObjective("latency", target=0.9,
                          latency_threshold_s=30.0, windows=(0.5, 2.0))
        server = InferenceServer(ServeConfig(
            max_batch=4, n_workers=2, slos=[slo],
        ))
        server.register("m", serve_classifier)
        with server:
            futs = [server.submit("m", x) for x in serve_queries[:10]]
            for f in futs:
                f.result(timeout=30.0)
            snap = server.stats()["slo"]["latency"]
        assert snap["breaching"] is False
        assert snap["burn"]["0.5s"] == 0.0
