"""Shared fixtures: small deterministic problems the whole suite reuses."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.classifier import HDClassifier
from repro.core.encoders import GenericEncoder

TEST_DIM = 256
TEST_LEVELS = 16


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def toy_problem():
    """A small, clearly learnable 3-class problem: (X_train, y_train, X_test, y_test)."""
    gen = np.random.default_rng(7)
    n_classes, d = 3, 24
    protos = gen.normal(scale=1.5, size=(n_classes, d))
    y = gen.integers(0, n_classes, size=240)
    X = protos[y] + gen.normal(scale=0.6, size=(240, d))
    return X[:180], y[:180], X[180:], y[180:]


@pytest.fixture(scope="session")
def fitted_generic_classifier(toy_problem):
    """A trained GENERIC classifier on the toy problem (session-scoped)."""
    X_train, y_train, _, _ = toy_problem
    enc = GenericEncoder(dim=TEST_DIM, num_levels=TEST_LEVELS, seed=3)
    clf = HDClassifier(enc, epochs=5, seed=3)
    clf.fit(X_train, y_train)
    return clf


@pytest.fixture(scope="session")
def tiny_dataset():
    """A tiny registry dataset shared by dataset-dependent tests."""
    from repro.datasets import load_dataset

    return load_dataset("CARDIO", "tiny")
