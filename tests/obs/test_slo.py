"""Tests for the SLO engine (repro.obs.slo)."""

import pytest

from repro.obs.registry import Registry
from repro.obs.slo import SLObjective, SLOEngine


class FakeClock:
    def __init__(self, t=1000.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class FakeLadder:
    def __init__(self):
        self.calls = []

    def force_tier(self, tier):
        self.calls.append(tier)


def make_engine(clock, *, registry=None, ladder=None, tier=None,
                windows=(5.0, 60.0), threshold=0.1):
    obj = SLObjective(
        "latency", target=0.9, latency_threshold_s=threshold,
        windows=windows, burn_threshold=2.0, degrade_tier=tier,
    )
    return obj, SLOEngine([obj], registry=registry, ladder=ladder,
                          clock=clock)


class TestObjectiveValidation:
    def test_target_must_be_fraction(self):
        with pytest.raises(ValueError, match="target"):
            SLObjective("x", target=1.0)

    def test_needs_windows(self):
        with pytest.raises(ValueError, match="window"):
            SLObjective("x", windows=())

    def test_duplicate_names_rejected(self):
        a = SLObjective("same")
        b = SLObjective("same", target=0.5)
        with pytest.raises(ValueError, match="duplicate"):
            SLOEngine([a, b])


class TestBurnRates:
    def test_all_good_burns_zero(self):
        clock = FakeClock()
        _, eng = make_engine(clock)
        for _ in range(50):
            eng.record(0.01, ok=True)
        out = eng.evaluate()["latency"]
        assert out["burn"]["5s"] == 0.0
        assert out["breaching"] is False

    def test_burn_is_bad_fraction_over_budget(self):
        clock = FakeClock()
        _, eng = make_engine(clock)
        # 20% bad against a 10% budget -> burn 2.0 in the short window
        for i in range(50):
            eng.record(0.01, ok=(i % 5 != 0))
        out = eng.evaluate()["latency"]
        assert out["burn"]["5s"] == pytest.approx(2.0)

    def test_slow_requests_count_as_bad(self):
        clock = FakeClock()
        _, eng = make_engine(clock, threshold=0.05)
        for _ in range(10):
            eng.record(0.2, ok=True)  # ok but over the latency threshold
        out = eng.evaluate()["latency"]
        assert out["burn"]["5s"] == pytest.approx(10.0)  # 100% / 10%

    def test_empty_window_burns_zero_and_never_breaches(self):
        clock = FakeClock()
        _, eng = make_engine(clock)
        out = eng.evaluate()["latency"]
        assert out["burn"]["5s"] == 0.0
        assert out["breaching"] is False

    def test_old_samples_age_out_of_short_window(self):
        clock = FakeClock()
        _, eng = make_engine(clock)
        for _ in range(20):
            eng.record(1.0, ok=False)
        clock.advance(30.0)  # past the 5 s window, inside the 60 s one
        out = eng.evaluate()["latency"]
        assert out["burn"]["5s"] == 0.0
        assert out["burn"]["60s"] > 0.0


class TestBreachLatching:
    def test_breach_requires_all_windows(self):
        clock = FakeClock()
        _, eng = make_engine(clock, windows=(5.0, 60.0))
        # short-window spike only: 60 s window sees mostly good history
        for _ in range(500):
            eng.record(0.01, ok=True)
        clock.advance(10.0)
        for _ in range(20):
            eng.record(1.0, ok=False)
        out = eng.evaluate()["latency"]
        assert out["burn"]["5s"] >= 2.0
        assert out["burn"]["60s"] < 2.0
        assert out["breaching"] is False

    def test_breach_and_hysteresis_recovery(self):
        clock = FakeClock()
        _, eng = make_engine(clock)
        for _ in range(50):
            eng.record(1.0, ok=False)
        out = eng.evaluate()["latency"]
        assert out["breaching"] is True
        assert out["breach_count"] == 1
        # good traffic pushes the short window burn under threshold/2
        clock.advance(6.0)
        for _ in range(50):
            eng.record(0.01, ok=True)
        out = eng.evaluate()["latency"]
        assert out["breaching"] is False
        assert out["breach_count"] == 1  # recovery does not re-count


class TestLadderDrive:
    def test_breach_forces_tier_then_releases(self):
        clock = FakeClock()
        ladder = FakeLadder()
        _, eng = make_engine(clock, ladder=ladder, tier=3)
        for _ in range(50):
            eng.record(1.0, ok=False)
        eng.evaluate()
        assert ladder.calls == [3]
        clock.advance(6.0)
        for _ in range(50):
            eng.record(0.01, ok=True)
        eng.evaluate()
        assert ladder.calls == [3, 0]

    def test_no_tier_means_ladder_untouched(self):
        clock = FakeClock()
        ladder = FakeLadder()
        _, eng = make_engine(clock, ladder=ladder, tier=None)
        for _ in range(50):
            eng.record(1.0, ok=False)
        eng.evaluate()
        assert ladder.calls == []

    def test_ladder_errors_do_not_poison_evaluate(self):
        class Exploding:
            def force_tier(self, tier):
                raise RuntimeError("ladder detached")

        clock = FakeClock()
        _, eng = make_engine(clock, ladder=Exploding(), tier=2)
        for _ in range(50):
            eng.record(1.0, ok=False)
        assert eng.evaluate()["latency"]["breaching"] is True


class TestGauges:
    def test_burn_and_breach_gauges_land_in_registry(self):
        clock = FakeClock()
        reg = Registry(namespace="serve")
        _, eng = make_engine(clock, registry=reg)
        for _ in range(50):
            eng.record(1.0, ok=False)
        eng.evaluate()
        text = reg.render_prometheus()
        assert 'serve_slo_burn_rate{slo="latency",window="5s"}' in text
        assert 'serve_slo_breaching{slo="latency"} 1.0' in text

    def test_snapshot_is_evaluate(self):
        clock = FakeClock()
        _, eng = make_engine(clock)
        eng.record(0.01, ok=True)
        snap = eng.snapshot()
        assert set(snap) == {"latency"}
        assert set(snap["latency"]) >= {
            "target", "burn", "breaching", "breach_count",
        }
