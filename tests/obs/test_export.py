"""Tests for exporters: summarize, Prometheus text + HTTP endpoint."""

import urllib.error
import urllib.request

import pytest

from repro.obs.export import (
    CollectorSink,
    PrometheusEndpoint,
    render_prometheus,
    summarize,
)
from repro.obs.registry import REGISTRY, Registry


class TestSummarize:
    def test_aggregates_by_name(self):
        spans = [
            {"name": "encode", "seconds": 0.1,
             "ops": {"xor_ops": 10, "mem_bytes": 4}},
            {"name": "encode", "seconds": 0.2, "ops": {"xor_ops": 5}},
            {"name": "train", "seconds": 1.0, "error": True},
        ]
        stages = summarize(spans)
        assert set(stages) == {"encode", "train"}
        enc = stages["encode"]
        assert enc["spans"] == 2
        assert enc["wall_s"] == pytest.approx(0.3)
        assert enc["xor_ops"] == 15
        assert enc["mem_bytes"] == 4
        assert enc["add_ops"] == enc["mul_ops"] == 0
        assert stages["train"]["errors"] == 1

    def test_empty(self):
        assert summarize([]) == {}


class TestRenderHelper:
    def test_defaults_to_global_registry(self):
        REGISTRY.counter("something").inc()
        assert "something 1" in render_prometheus()

    def test_explicit_registry(self):
        reg = Registry(namespace="t")
        reg.counter("c").inc(2)
        assert "t_c 2" in render_prometheus(reg)


class TestPrometheusEndpoint:
    def test_serves_metrics_over_http(self):
        reg = Registry(namespace="serve")
        reg.counter("served").inc(9)
        endpoint = PrometheusEndpoint(reg, port=0)
        try:
            with urllib.request.urlopen(endpoint.url, timeout=5) as resp:
                assert resp.status == 200
                assert "text/plain" in resp.headers["Content-Type"]
                body = resp.read().decode()
            assert "serve_served 9" in body
            # metrics are live, not a boot-time snapshot
            reg.counter("served").inc()
            with urllib.request.urlopen(endpoint.url, timeout=5) as resp:
                assert "serve_served 10" in resp.read().decode()
        finally:
            endpoint.close()

    def test_unknown_route_404(self):
        endpoint = PrometheusEndpoint(Registry(), port=0)
        try:
            url = endpoint.url.replace("/metrics", "/nope")
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(url, timeout=5)
            assert err.value.code == 404
        finally:
            endpoint.close()


class TestCollectorSink:
    def test_maxlen_bounds_storage_not_count(self):
        sink = CollectorSink(maxlen=2)
        for i in range(5):
            sink.emit({"name": str(i)})
        assert sink.emitted == 5
        assert len(sink.spans) == 2
        sink.clear()
        assert sink.emitted == 0 and sink.spans == []
