"""Tests for the trace-schema validator (repro.obs.lint)."""

import json

from repro.obs import distributed as dist
from repro.obs.lint import lint_records, lint_trace, main


def write_trace(tmp_path, records):
    path = tmp_path / "trace.jsonl"
    path.write_text(
        "\n".join(json.dumps(r) for r in records) + "\n"
    )
    return path


def make_trace_records():
    """A well-formed two-span distributed trace."""
    trace = dist.fmt_id(dist.new_trace_id())
    root = dist.fmt_id(dist.new_span_id())
    child = dist.fmt_id(dist.new_span_id())
    return [
        {"name": "serve.request", "seconds": 0.01, "trace_id": trace,
         "span_id": root, "pid": 100},
        {"name": "serve.encode", "seconds": 0.005, "trace_id": trace,
         "span_id": child, "parent_span_id": root, "pid": 101,
         "attrs": {"shard": 0}, "ops": {"xor_ops": 10}},
    ]


def errors(findings):
    return [f for f in findings if f.severity == "error"]


class TestRecordSchema:
    def test_clean_trace_has_no_findings(self):
        assert lint_records(enumerate(make_trace_records(), 1)) == []

    def test_untraced_records_need_only_name_and_seconds(self):
        findings = lint_records([(1, {"name": "encode", "seconds": 0.1})])
        assert findings == []

    def test_missing_name(self):
        findings = lint_records([(1, {"seconds": 0.1})])
        assert any("name" in f.message for f in errors(findings))

    def test_bad_seconds(self):
        for seconds in (None, "fast", -1.0, float("nan"), True):
            findings = lint_records(
                [(1, {"name": "x", "seconds": seconds})]
            )
            assert errors(findings), f"seconds={seconds!r} accepted"

    def test_malformed_ids(self):
        for bad in ("xyz", "123", "A" * 16, 42):
            findings = lint_records([(1, {
                "name": "x", "seconds": 0.1,
                "trace_id": bad, "span_id": "a" * 16,
            })])
            assert any("trace_id" in f.message for f in errors(findings))

    def test_partial_ids_rejected(self):
        findings = lint_records([(1, {
            "name": "x", "seconds": 0.1, "span_id": "a" * 16,
        })])
        assert any("both trace_id and span_id" in f.message
                   for f in errors(findings))

    def test_bad_ops_values(self):
        findings = lint_records([(1, {
            "name": "x", "seconds": 0.1,
            "ops": {"xor_ops": "many"},
        })])
        assert any("ops" in f.message for f in errors(findings))


class TestReferentialChecks:
    def test_dangling_parent_is_error(self):
        records = make_trace_records()
        records[1]["parent_span_id"] = "f" * 16
        findings = lint_records(enumerate(records, 1))
        assert any("not found in trace" in f.message
                   for f in errors(findings))

    def test_allow_dangling_downgrades(self):
        records = make_trace_records()
        records[1]["parent_span_id"] = "f" * 16
        findings = lint_records(enumerate(records, 1),
                                allow_dangling=True)
        assert errors(findings) == []
        assert any(f.severity == "warning" for f in findings)

    def test_duplicate_span_id_is_error(self):
        records = make_trace_records()
        records[1]["span_id"] = records[0]["span_id"]
        records[1]["parent_span_id"] = None
        findings = lint_records(enumerate(records, 1))
        assert any("duplicate span_id" in f.message
                   for f in errors(findings))

    def test_rootless_trace_is_error(self):
        records = make_trace_records()[1:]  # drop the root span
        findings = lint_records(enumerate(records, 1))
        assert any("no root span" in f.message for f in errors(findings))

    def test_parents_resolve_per_trace_not_globally(self):
        a = make_trace_records()
        b = make_trace_records()
        # b's child points at a's root -- valid id, wrong trace
        b[1]["parent_span_id"] = a[0]["span_id"]
        findings = lint_records(enumerate(a + b, 1))
        assert any("not found in trace" in f.message
                   for f in errors(findings))


class TestFileAndCli:
    def test_lint_trace_clean_file(self, tmp_path):
        path = write_trace(tmp_path, make_trace_records())
        assert lint_trace(path) == []

    def test_invalid_json_line_is_error(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"name": "x", "seconds": 0.1}\nnot json\n')
        findings = lint_trace(path)
        assert any("not valid JSON" in f.message for f in errors(findings))

    def test_cli_exit_codes(self, tmp_path, capsys):
        good = write_trace(tmp_path, make_trace_records())
        assert main(good) == 0
        assert "OK" in capsys.readouterr().out
        bad_records = make_trace_records()
        bad_records[1]["parent_span_id"] = "f" * 16
        bad = write_trace(tmp_path, bad_records)
        assert main(bad) == 1
        assert "FAIL" in capsys.readouterr().out
        assert main(bad, allow_dangling=True) == 0

    def test_module_subcommand(self, tmp_path, capsys):
        from repro.obs.report import main as obs_main

        path = write_trace(tmp_path, make_trace_records())
        assert obs_main(["lint", str(path)]) == 0
        out = capsys.readouterr().out
        assert "0 errors" in out
