"""Tests for distributed trace identity (repro.obs.distributed)."""

import threading

from repro.obs import distributed as dist


class TestIds:
    def test_ids_are_64_bit_and_nonzero(self):
        for _ in range(1000):
            value = dist.new_span_id()
            assert 0 < value < 1 << 64

    def test_ids_unique_within_thread(self):
        ids = {dist.new_trace_id() for _ in range(10_000)}
        assert len(ids) == 10_000

    def test_ids_unique_across_threads(self):
        out = []

        def mint():
            out.append([dist.new_span_id() for _ in range(2000)])

        threads = [threading.Thread(target=mint) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        flat = [i for chunk in out for i in chunk]
        assert len(set(flat)) == len(flat)

    def test_fmt_parse_roundtrip(self):
        value = dist.new_trace_id()
        text = dist.fmt_id(value)
        assert len(text) == 16 and int(text, 16) == value
        assert dist.parse_id(text) == value

    def test_fmt_masks_to_64_bits(self):
        assert dist.fmt_id((1 << 64) + 5) == dist.fmt_id(5)


class TestTraceContext:
    def test_new_trace_root_span_is_trace_root(self):
        ctx = dist.new_trace()
        assert ctx.trace_id != ctx.span_id  # independent ids

    def test_child_keeps_trace_changes_span(self):
        ctx = dist.new_trace()
        child = ctx.child()
        assert child.trace_id == ctx.trace_id
        assert child.span_id != ctx.span_id

    def test_wire_roundtrip(self):
        ctx = dist.new_trace()
        wire = ctx.to_wire()
        back = dist.TraceContext.from_wire(wire)
        assert back == ctx

    def test_from_wire_none(self):
        assert dist.TraceContext.from_wire(None) is None


class TestCurrentContext:
    def test_default_is_none(self):
        assert dist.current_context() is None

    def test_use_context_scopes(self):
        ctx = dist.new_trace()
        with dist.use_context(ctx):
            assert dist.current_context() == ctx
        assert dist.current_context() is None

    def test_use_context_none_scopes_no_context(self):
        outer = dist.new_trace()
        dist.set_context(outer)
        try:
            with dist.use_context(None):
                assert dist.current_context() is None
            assert dist.current_context() == outer
        finally:
            dist.clear_context()

    def test_context_is_thread_local(self):
        ctx = dist.new_trace()
        seen = []
        dist.set_context(ctx)
        try:
            t = threading.Thread(
                target=lambda: seen.append(dist.current_context())
            )
            t.start()
            t.join()
        finally:
            dist.clear_context()
        assert seen == [None]
