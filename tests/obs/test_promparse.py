"""Promtool-style conformance tests for the Prometheus exposition."""

import math

import pytest

from repro.obs.promparse import ParseError, parse_text, validate
from repro.obs.registry import Registry


def build_registry():
    reg = Registry(namespace="serve")
    reg.counter("served", help="requests served").inc(7)
    reg.counter("errors", labels=("model",)).labels(model="m").inc(2)
    reg.gauge("queue_depth").set(3)
    hist = reg.histogram("total", help="end-to-end latency")
    for value in (0.0005, 0.002, 0.002, 0.05, 1.2):
        hist.record(value)
    labeled = reg.histogram("stage_seconds", labels=("stage",))
    labeled.labels(stage="encode").record(0.01)
    labeled.labels(stage="search").record(0.001)
    return reg


class TestParse:
    def test_registry_exposition_parses_clean(self):
        families = parse_text(build_registry().render_prometheus())
        assert families["serve_served"].kind == "counter"
        assert families["serve_served"].samples[0].value == 7
        assert families["serve_total"].kind == "histogram"
        assert families["serve_total"].help == "end-to-end latency"

    def test_histogram_series_fold_into_base_family(self):
        families = parse_text(build_registry().render_prometheus())
        names = {s.name for s in families["serve_total"].samples}
        assert names == {
            "serve_total_bucket", "serve_total_sum", "serve_total_count",
        }
        assert "serve_total_bucket" not in families

    def test_labels_parse_with_escapes(self):
        families = parse_text(
            '# TYPE m counter\n'
            'm{a="x\\"y",b="line\\nbreak"} 1\n'
        )
        labels = families["m"].samples[0].labels
        assert labels == {"a": 'x"y', "b": "line\nbreak"}

    def test_inf_value(self):
        families = parse_text("# TYPE g gauge\ng +Inf\n")
        assert families["g"].samples[0].value == math.inf

    @pytest.mark.parametrize("line", [
        "no_value_here",
        'bad{unclosed="x" 1',
        "1bad_name 3",
        'm{9bad="l"} 1',
        "m not_a_number",
    ])
    def test_malformed_lines_raise(self, line):
        with pytest.raises(ParseError):
            parse_text(line + "\n")


class TestValidate:
    """The promtool-style checks the CI exposition gate runs."""

    def test_live_registry_validates_clean(self):
        families = parse_text(build_registry().render_prometheus())
        assert validate(families) == []

    def test_missing_type_flagged(self):
        findings = validate(parse_text("m 1\n"))
        assert any("no # TYPE" in f for f in findings)

    def test_histogram_bucket_counts_must_be_cumulative(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="1"} 3\n'       # decreasing: invalid
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 1.0\nh_count 5\n"
        )
        findings = validate(parse_text(text))
        assert any("not cumulative" in f for f in findings)

    def test_histogram_requires_inf_bucket(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            "h_sum 1.0\nh_count 5\n"
        )
        findings = validate(parse_text(text))
        assert any("+Inf" in f for f in findings)

    def test_inf_bucket_must_equal_count(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 4\n'
            "h_sum 1.0\nh_count 5\n"
        )
        findings = validate(parse_text(text))
        assert any("_count" in f for f in findings)

    def test_histogram_requires_sum_and_count(self):
        text = "# TYPE h histogram\n" 'h_bucket{le="+Inf"} 4\n'
        findings = validate(parse_text(text))
        assert any("missing _sum" in f for f in findings)
        assert any("missing _count" in f for f in findings)

    def test_negative_counter_flagged(self):
        findings = validate(parse_text("# TYPE c counter\nc -1\n"))
        assert any("counter value" in f for f in findings)

    def test_labeled_histogram_groups_checked_independently(self):
        reg = Registry()
        hist = reg.histogram("lat", labels=("stage",))
        hist.labels(stage="a").record(0.1)
        hist.labels(stage="b").record(0.2)
        families = parse_text(reg.render_prometheus())
        assert validate(families) == []
        # two distinct label groups, each with its own +Inf bucket
        infs = [s for s in families["lat"].samples
                if s.labels.get("le") == "+Inf"]
        assert {s.labels["stage"] for s in infs} == {"a", "b"}


class TestEndToEndExposition:
    def test_serve_namespace_exposition_is_scrape_conformant(self):
        """The full promtool-style gate on a populated serve registry."""
        families = parse_text(build_registry().render_prometheus())
        assert validate(families) == []

    def test_absorbed_worker_exposition_is_scrape_conformant(self):
        """Shard-absorbed series keep the exposition conformant."""
        parent = Registry(namespace="serve")
        for shard in ("0", "1"):
            worker = Registry(namespace="serve")
            worker.histogram("stage_seconds", labels=("stage",)).labels(
                stage="encode").record(0.02)
            worker.counter("served").inc(3)
            parent.absorb_state(worker.state(),
                                extra_labels={"shard": shard})
        families = parse_text(parent.render_prometheus())
        assert validate(families) == []
