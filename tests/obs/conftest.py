"""Shared isolation for the observability tests.

Tracing state and the process-global registry are module-level
singletons; every test in this package gets them reset on both sides so
traced tests cannot leak spans or aggregate families into each other
(or into the rest of the suite).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.classifier import HDClassifier
from repro.core.encoders import GenericEncoder
from repro.obs import registry as obs_registry
from repro.obs import trace as obs_trace


@pytest.fixture(autouse=True)
def _obs_isolation():
    obs_trace.reset()
    obs_registry.REGISTRY.clear()
    yield
    obs_trace.reset()
    obs_registry.REGISTRY.clear()


@pytest.fixture(scope="session")
def serve_classifier(toy_problem):
    """A small trained deployment for the serve-span wiring test."""
    X_train, y_train, _, _ = toy_problem
    enc = GenericEncoder(dim=256, num_levels=16, seed=11)
    return HDClassifier(enc, epochs=3, seed=11).fit(X_train, y_train)


@pytest.fixture(scope="session")
def serve_queries(toy_problem):
    _, _, X_test, _ = toy_problem
    return np.asarray(X_test, dtype=np.float64)
