"""Tests for the flight recorder (repro.obs.recorder)."""

import json
import os
import threading

import pytest

from repro.obs import trace as obs_trace
from repro.obs.recorder import SCHEMA, FlightRecorder, load_bundle


class TestRings:
    def test_span_ring_is_bounded(self):
        rec = FlightRecorder(capacity_spans=4)
        for i in range(10):
            rec.emit({"name": "s", "seconds": 0.0, "i": i})
        spans = rec.spans()
        assert len(spans) == 4
        assert [s["i"] for s in spans] == [6, 7, 8, 9]

    def test_event_ring_is_bounded(self):
        rec = FlightRecorder(capacity_events=3)
        for i in range(5):
            rec.record_event("tick", i=i)
        assert [e["i"] for e in rec.events()] == [2, 3, 4]

    def test_record_event_stamps_time_and_stringifies(self):
        rec = FlightRecorder(clock=lambda: 123.5)
        event = rec.record_event(
            "breaker_transition", state="open", code=2,
            exc=ValueError("boom"),
        )
        assert event["t"] == 123.5
        assert event["code"] == 2
        assert event["exc"] == "boom"
        json.dumps(event)  # ring stays JSON-serializable by construction

    def test_events_filter_by_kind(self):
        rec = FlightRecorder()
        rec.record_event("a")
        rec.record_event("b")
        rec.record_event("a")
        assert len(rec.events("a")) == 2
        assert len(rec.events("b")) == 1

    def test_snapshot_counts(self):
        rec = FlightRecorder()
        rec.emit({"name": "s", "seconds": 0.0})
        rec.record_event("kill")
        snap = rec.snapshot()
        assert snap["spans"] == 1
        assert snap["events"] == 1
        assert snap["bundles_written"] == 0
        assert snap["recent_events"][0]["kind"] == "kill"

    def test_acts_as_trace_sink(self):
        rec = FlightRecorder()
        obs_trace.enable_tracing(rec)
        with obs_trace.span("serve.request"):
            pass
        assert rec.spans()[0]["name"] == "serve.request"


class TestBundles:
    def test_bundle_pulls_affected_trace_first(self):
        rec = FlightRecorder()
        rec.emit({"name": "other", "trace_id": "b" * 16, "seconds": 0.0})
        rec.emit({"name": "hit", "trace_id": "a" * 16, "seconds": 0.0})
        bundle = rec.build_bundle("worker_kill", trace_id="a" * 16)
        assert bundle["schema"] == SCHEMA
        assert bundle["spans"][0]["name"] == "hit"
        assert bundle["trace_id"] == "a" * 16

    def test_dump_and_load_roundtrip(self, tmp_path):
        rec = FlightRecorder(dir=str(tmp_path))
        rec.record_event("worker_kill", worker=3)
        path = rec.dump("worker_kill", extra={"batch": 7})
        assert path is not None and os.path.exists(path)
        assert not os.path.exists(path + ".tmp")
        bundle = load_bundle(path)
        assert bundle["trigger"] == "worker_kill"
        assert bundle["extra"] == {"batch": 7}
        assert bundle["events"][0]["worker"] == 3
        assert rec.bundles_written == 1

    def test_dump_without_dir_returns_none(self):
        rec = FlightRecorder()
        assert rec.dump("anything") is None
        assert rec.bundles_written == 0

    def test_dump_sanitizes_trigger_in_filename(self, tmp_path):
        rec = FlightRecorder(dir=str(tmp_path))
        path = rec.dump("worker kill/0")
        assert "/0" not in os.path.basename(path)
        assert os.path.exists(path)

    def test_prune_keeps_newest(self, tmp_path):
        rec = FlightRecorder(dir=str(tmp_path), max_bundles=3)
        for _ in range(6):
            rec.dump("kill")
        names = sorted(p.name for p in tmp_path.glob("flight-*.json"))
        assert len(names) == 3
        assert names[-1].endswith("0006.json")

    def test_load_bundle_rejects_other_json(self, tmp_path):
        path = tmp_path / "not_a_bundle.json"
        path.write_text(json.dumps({"schema": "something/9"}))
        with pytest.raises(ValueError, match="schema"):
            load_bundle(str(path))


class TestConcurrency:
    def test_parallel_emit_and_event_never_lose_ring_shape(self):
        rec = FlightRecorder(capacity_spans=128, capacity_events=128)

        def hammer(i):
            for j in range(500):
                rec.emit({"name": "s", "seconds": 0.0})
                rec.record_event("e", i=i, j=j)

        threads = [threading.Thread(target=hammer, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(rec.spans()) == 128
        assert len(rec.events()) == 128
        bundle = rec.build_bundle("post")
        json.dumps(bundle)
