"""Concurrency and property tests for ``Registry.absorb_state``.

The sharded server's collector absorbs worker-registry snapshots while
serving threads hammer the same parent registry; these tests pin the
invariants that makes safe:

- absorbing is replacement per ``(labels..., shard)`` child, so
  concurrent absorbs of the same worker's successive snapshots are
  idempotent and never double-count;
- counter series are monotone: as long as each worker's own counters
  only grow between snapshots, the absorbed per-shard series (and
  their sum) never step backwards, whatever the absorb interleaving;
- two workers reporting under a colliding ``shard`` label collapse to
  one series (last write wins) instead of corrupting family state.
"""

import random
import threading

from repro.obs.registry import Registry


def worker_state(served, errors=0, stage_s=()):
    """Build a worker-style registry snapshot with given counts."""
    reg = Registry(namespace="serve")
    reg.counter("served").inc(served)
    if errors:
        reg.counter("errors").inc(errors)
    hist = reg.histogram("stage_seconds", labels=("stage",))
    for value in stage_s:
        hist.labels(stage="encode").record(value)
    return reg.state()


def served_by_shard(parent):
    """{shard_label: served_count} from the parent's snapshot."""
    state = parent.state()
    fam = next(
        (f for f in state["families"] if f["name"] == "served"), None
    )
    if fam is None:
        return {}
    shard_pos = fam["label_names"].index("shard")
    return {
        child["labels"][shard_pos]: child["state"]["value"]
        for child in fam["children"]
    }


class TestEightThreadHammer:
    def test_concurrent_absorbs_from_eight_shards(self):
        """8 threads x 50 snapshots each: per-shard monotone, no loss."""
        parent = Registry(namespace="serve")
        rounds = 50
        finals = {}

        def shard_thread(shard):
            count = 0
            rng = random.Random(shard)
            for _ in range(rounds):
                count += rng.randrange(1, 10)
                parent.absorb_state(
                    worker_state(count, stage_s=(0.001,)),
                    extra_labels={"shard": str(shard)},
                )
            finals[shard] = count

        threads = [
            threading.Thread(target=shard_thread, args=(i,))
            for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        by_shard = served_by_shard(parent)
        assert set(by_shard) == {str(i) for i in range(8)}
        # replacement semantics: each series holds exactly the last
        # snapshot its worker published, nothing doubled or lost
        for shard, count in finals.items():
            assert by_shard[str(shard)] == count

    def test_absorb_races_reader_and_renderer(self):
        """snapshot()/render_prometheus() racing absorbs never corrupt."""
        parent = Registry(namespace="serve")
        stop = threading.Event()
        failures = []

        def absorber(shard):
            count = 0
            while not stop.is_set():
                count += 1
                parent.absorb_state(
                    worker_state(count, errors=count // 3,
                                 stage_s=(0.001, 0.002)),
                    extra_labels={"shard": str(shard)},
                )

        def reader():
            while not stop.is_set():
                try:
                    parent.snapshot()
                    text = parent.render_prometheus()
                    assert "serve_served" in text or text == ""
                except Exception as exc:  # noqa: BLE001 - the assertion
                    failures.append(exc)
                    return

        threads = [threading.Thread(target=absorber, args=(i,))
                   for i in range(4)]
        threads += [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        import time
        time.sleep(0.3)
        stop.set()
        for t in threads:
            t.join(timeout=10.0)
        assert failures == []


class TestMonotonicityProperty:
    def test_interleaved_snapshots_never_step_backwards(self):
        """Property: randomly interleaved in-order worker snapshots keep
        every per-shard served series monotone non-decreasing."""
        rng = random.Random(1234)
        for trial in range(20):
            parent = Registry(namespace="serve")
            n_shards = rng.randrange(2, 5)
            # each worker publishes an increasing series of snapshots
            series = {
                shard: [0] for shard in range(n_shards)
            }
            for shard in range(n_shards):
                for _ in range(rng.randrange(3, 8)):
                    series[shard].append(
                        series[shard][-1] + rng.randrange(0, 6)
                    )
            # random global interleaving that preserves per-shard order
            queue = [
                (shard, count)
                for shard, counts in series.items()
                for count in counts[1:]
            ]
            per_shard_positions = {s: 0 for s in series}
            schedule = []
            taken = {s: [c for sh, c in queue if sh == s]
                     for s in series}
            for _ in queue:
                candidates = [s for s in series
                              if per_shard_positions[s] < len(taken[s])]
                shard = rng.choice(candidates)
                schedule.append(
                    (shard, taken[shard][per_shard_positions[shard]])
                )
                per_shard_positions[shard] += 1
            last_seen = {str(s): 0 for s in series}
            for shard, count in schedule:
                parent.absorb_state(
                    worker_state(count),
                    extra_labels={"shard": str(shard)},
                )
                by_shard = served_by_shard(parent)
                for label, value in by_shard.items():
                    assert value >= last_seen[label], (
                        f"trial {trial}: shard {label} went backwards "
                        f"({last_seen[label]} -> {value})"
                    )
                    last_seen[label] = value


class TestShardLabelCollisions:
    def test_same_shard_label_replaces_not_duplicates(self):
        parent = Registry(namespace="serve")
        parent.absorb_state(worker_state(10),
                            extra_labels={"shard": "0"})
        parent.absorb_state(worker_state(25),
                            extra_labels={"shard": "0"})
        by_shard = served_by_shard(parent)
        assert by_shard == {"0": 25}

    def test_collision_with_different_inner_labels_stays_separate(self):
        parent = Registry(namespace="serve")
        reg_a = Registry(namespace="serve")
        reg_a.counter("errors", labels=("model",)).labels(model="a").inc(1)
        reg_b = Registry(namespace="serve")
        reg_b.counter("errors", labels=("model",)).labels(model="b").inc(2)
        parent.absorb_state(reg_a.state(), extra_labels={"shard": "0"})
        parent.absorb_state(reg_b.state(), extra_labels={"shard": "0"})
        state = parent.state()
        fam = next(f for f in state["families"] if f["name"] == "errors")
        keys = {tuple(c["labels"]) for c in fam["children"]}
        assert keys == {("a", "0"), ("b", "0")}

    def test_collision_exposition_stays_scrape_conformant(self):
        from repro.obs.promparse import parse_text, validate

        parent = Registry(namespace="serve")
        for shard in ("0", "0", "1"):
            parent.absorb_state(
                worker_state(5, stage_s=(0.001, 0.1)),
                extra_labels={"shard": shard},
            )
        findings = validate(parse_text(parent.render_prometheus()))
        assert findings == []
