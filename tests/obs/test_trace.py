"""Tests for the span tracer (repro.obs.trace)."""

import json
import threading

import pytest

from repro.obs import registry as obs_registry
from repro.obs import trace as obs_trace
from repro.obs.export import CollectorSink, JsonlSink, load_trace


class TestDisabledPath:
    def test_span_is_shared_noop(self):
        a = obs_trace.span("encode", engine="packed")
        b = obs_trace.span("train")
        assert a is b  # one stateless singleton, nothing allocated
        assert a.recording is False

    def test_noop_span_absorbs_everything(self):
        with obs_trace.span("x") as sp:
            sp.add_ops(xor_ops=5, custom=2)
            sp.set(foo=1)
        assert obs_registry.REGISTRY.families() == []

    def test_emit_span_noop_when_disabled(self):
        obs_trace.emit_span("train.epoch", 0.5, ops={"add_ops": 10})
        assert obs_registry.REGISTRY.families() == []

    def test_traced_decorator_passthrough(self):
        calls = []

        @obs_trace.traced("f")
        def f(x):
            calls.append(x)
            return x + 1

        assert f(1) == 2
        assert calls == [1]
        assert obs_registry.REGISTRY.families() == []


class TestEnabledPath:
    def test_span_records_time_ops_attrs(self):
        sink = CollectorSink()
        obs_trace.enable_tracing(sink)
        with obs_trace.span("encode", engine="packed", samples=4) as sp:
            assert sp.recording
            sp.add_ops(xor_ops=100, add_ops=50, mem_bytes=64)
            sp.set(dim=512)
        (rec,) = sink.spans
        assert rec["name"] == "encode"
        assert rec["seconds"] >= 0.0
        assert rec["attrs"] == {"engine": "packed", "samples": 4, "dim": 512}
        assert rec["ops"] == {"xor_ops": 100, "add_ops": 50, "mem_bytes": 64}
        assert "error" not in rec

    def test_nesting_records_parent_path(self):
        sink = CollectorSink()
        obs_trace.enable_tracing(sink)
        with obs_trace.span("train"):
            with obs_trace.span("train.epoch"):
                assert obs_trace.current_span().path == "train/train.epoch"
        paths = [rec["path"] for rec in sink.spans]
        assert paths == ["train/train.epoch", "train"]  # inner finishes first
        assert obs_trace.current_span() is None

    def test_error_flag_set_and_exception_propagates(self):
        sink = CollectorSink()
        obs_trace.enable_tracing(sink)
        with pytest.raises(RuntimeError):
            with obs_trace.span("boom"):
                raise RuntimeError("no")
        assert sink.spans[0]["error"] is True

    def test_emit_span_inherits_live_parent(self):
        sink = CollectorSink()
        obs_trace.enable_tracing(sink)
        with obs_trace.span("train"):
            obs_trace.emit_span(
                "train.epoch", 0.25,
                attrs={"epoch": 0}, ops={"add_ops": 10, "mul_ops": 0},
            )
        epoch = sink.spans[0]
        assert epoch["path"] == "train/train.epoch"
        assert epoch["seconds"] == 0.25
        assert epoch["ops"] == {"add_ops": 10}  # zero entries dropped

    def test_registry_aggregation(self):
        obs_trace.enable_tracing()
        with obs_trace.span("encode") as sp:
            sp.add_ops(xor_ops=7, mem_bytes=32)
        with obs_trace.span("encode") as sp:
            sp.add_ops(xor_ops=3)
        reg = obs_registry.REGISTRY
        hist = reg.histogram("span_seconds", labels=("name",)).labels(
            name="encode")
        assert hist.count == 2
        ops = reg.counter("span_ops_total", labels=("name", "op"))
        assert ops.labels(name="encode", op="xor_ops").value == 10
        assert reg.counter("span_bytes_total", labels=("name",)).labels(
            name="encode").value == 32

    def test_traced_decorator_records(self):
        sink = CollectorSink()
        obs_trace.enable_tracing(sink)

        @obs_trace.traced("policy.tick", kind="test")
        def tick():
            return 42

        assert tick() == 42
        assert sink.spans[0]["name"] == "policy.tick"
        assert sink.spans[0]["attrs"] == {"kind": "test"}

    def test_broken_sink_does_not_break_workload(self):
        class Broken:
            def emit(self, record):
                raise IOError("disk full")

        good = CollectorSink()
        obs_trace.enable_tracing(Broken(), good)
        with obs_trace.span("x"):
            pass
        assert good.emitted == 1

    def test_threads_have_independent_stacks(self):
        sink = CollectorSink()
        obs_trace.enable_tracing(sink)
        seen = {}

        def work():
            with obs_trace.span("worker"):
                seen["path"] = obs_trace.current_span().path

        with obs_trace.span("outer"):
            t = threading.Thread(target=work)
            t.start()
            t.join()
        # the worker thread's stack is empty: no "outer/" prefix
        assert seen["path"] == "worker"


class TestJsonlRoundTrip:
    def test_sink_writes_loadable_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        obs_trace.enable_tracing(sink)
        with obs_trace.span("encode", engine="packed") as sp:
            sp.add_ops(xor_ops=5)
        with obs_trace.span("train"):
            pass
        obs_trace.disable_tracing()
        sink.close()
        assert sink.emitted == 2
        spans = load_trace(path)
        assert [s["name"] for s in spans] == ["encode", "train"]
        assert spans[0]["ops"] == {"xor_ops": 5}
        # each line is standalone JSON
        lines = path.read_text().strip().splitlines()
        assert all(json.loads(line) for line in lines)


class TestLifecycle:
    def test_enable_disable_reset(self):
        assert not obs_trace.tracing_enabled()
        sink = CollectorSink()
        obs_trace.enable_tracing(sink)
        assert obs_trace.tracing_enabled()
        obs_trace.disable_tracing()
        assert not obs_trace.tracing_enabled()
        # sink stays registered across disable, dropped by reset
        obs_trace.enable_tracing()
        with obs_trace.span("x"):
            pass
        assert sink.emitted == 1
        obs_trace.reset()
        obs_trace.enable_tracing()
        with obs_trace.span("y"):
            pass
        assert sink.emitted == 1
