"""Tests for the shared metric registry (repro.obs.registry)."""

import json
import threading

import pytest

from repro.obs.registry import (
    Counter,
    CounterFamily,
    Gauge,
    Histogram,
    Registry,
)


class TestInstruments:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_gauge_tracks_max(self):
        g = Gauge()
        g.set(3)
        g.set(1)
        g.inc(0.5)
        assert g.value == 1.5
        assert g.max == 3.0

    def test_histogram_percentiles_bracket_samples(self):
        h = Histogram()
        for v in (0.001, 0.002, 0.004, 0.008):
            h.record(v)
        assert h.count == 4
        assert h.sum == pytest.approx(0.015)
        assert 0.001 <= h.percentile(50) <= 0.008
        assert h.percentile(100) == pytest.approx(0.008, rel=0.4)

    def test_histogram_snapshot_schema(self):
        h = Histogram()
        h.record(0.5)
        snap = h.snapshot()
        assert set(snap) == {
            "count", "mean_s", "p50_s", "p95_s", "p99_s", "min_s", "max_s"
        }
        assert snap["count"] == 1
        assert snap["max_s"] == 0.5

    def test_histogram_overflow_reports_true_max(self):
        h = Histogram(least=1e-6, growth=1.35, buckets=8)  # top bound ~8e-6
        h.record(123.0)
        assert h.percentile(99) == pytest.approx(123.0)


class TestFamilies:
    def test_labels_keep_separate_series(self):
        fam = CounterFamily("encoded", label_names=("engine",))
        fam.labels(engine="packed").inc(3)
        fam.labels(engine="reference").inc()
        assert fam.labels(engine="packed").value == 3
        assert fam.labels(engine="reference").value == 1

    def test_label_mismatch_rejected(self):
        fam = CounterFamily("encoded", label_names=("engine",))
        with pytest.raises(ValueError):
            fam.labels(wrong="x")
        with pytest.raises(ValueError):
            fam.labels()

    def test_unlabeled_family_proxies_instrument_api(self):
        fam = CounterFamily("served")
        fam.inc(2)  # proxy straight to the default child
        assert fam.value == 2
        assert fam.default.value == 2

    def test_default_raises_for_labeled_family(self):
        fam = CounterFamily("encoded", label_names=("engine",))
        with pytest.raises(ValueError):
            fam.default


class TestRegistry:
    def test_get_or_create_is_stable(self):
        reg = Registry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_collision_rejected(self):
        reg = Registry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")

    def test_label_collision_rejected(self):
        reg = Registry()
        reg.counter("x", labels=("engine",))
        with pytest.raises(ValueError, match="labels"):
            reg.counter("x", labels=("other",))

    def test_snapshot_schema_and_json(self):
        reg = Registry()
        reg.counter("served").inc(7)
        reg.gauge("depth").set(3)
        reg.histogram("lat").record(0.01)
        reg.counter("enc", labels=("engine",)).labels(engine="packed").inc()
        snap = reg.snapshot()
        assert set(snap) == {"counters", "gauges", "histograms"}
        assert snap["counters"]["served"] == 7
        assert snap["counters"]["enc{engine=packed}"] == 1
        assert snap["gauges"]["depth"] == {"value": 3.0, "max": 3.0}
        assert snap["histograms"]["lat"]["count"] == 1
        json.dumps(snap)  # must round-trip

    def test_clear(self):
        reg = Registry()
        reg.counter("a").inc()
        reg.clear()
        assert reg.families() == []


class TestPrometheusRender:
    def test_counter_gauge_lines(self):
        reg = Registry(namespace="serve")
        reg.counter("served", help="requests served").inc(5)
        reg.gauge("queue_depth").set(2)
        text = reg.render_prometheus()
        assert "# HELP serve_served requests served" in text
        assert "# TYPE serve_served counter" in text
        assert "serve_served 5" in text
        assert "serve_queue_depth 2.0" in text
        assert text.endswith("\n")

    def test_labels_and_escaping(self):
        reg = Registry()
        reg.counter("enc", labels=("engine",)).labels(engine='pa"cked').inc()
        text = reg.render_prometheus()
        assert 'enc{engine="pa\\"cked"} 1' in text

    def test_histogram_renders_cumulative_le_buckets(self):
        reg = Registry()
        h = reg.histogram("lat").labels()
        for v in (0.001, 0.002, 0.003):
            h.record(v)
        text = reg.render_prometheus()
        assert "# TYPE lat histogram" in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_sum" in text
        assert "lat_count 3" in text
        # cumulative counts are monotone non-decreasing in le order
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines() if line.startswith("lat_bucket")
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 3

    def test_bad_metric_names_sanitized(self):
        reg = Registry()
        reg.counter("1weird-name").inc()
        text = reg.render_prometheus()
        assert "_1weird_name 1" in text


class TestThreadHammer:
    """Regression: inc/record are read-modify-writes; 8 writers, no loss."""

    N_THREADS = 8
    N_OPS = 2500

    def _hammer(self, op):
        barrier = threading.Barrier(self.N_THREADS)

        def work():
            barrier.wait()
            for _ in range(self.N_OPS):
                op()

        threads = [threading.Thread(target=work) for _ in range(self.N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def test_counter_hammer_loses_nothing(self):
        c = Counter()
        self._hammer(lambda: c.inc())
        assert c.value == self.N_THREADS * self.N_OPS

    def test_histogram_hammer_loses_nothing(self):
        h = Histogram()
        self._hammer(lambda: h.record(0.001))
        assert h.count == self.N_THREADS * self.N_OPS
        assert h.sum == pytest.approx(self.N_THREADS * self.N_OPS * 0.001)

    def test_labeled_family_hammer(self):
        fam = CounterFamily("c", label_names=("t",))
        barrier = threading.Barrier(self.N_THREADS)

        def work(i):
            barrier.wait()
            for _ in range(self.N_OPS):
                fam.labels(t=str(i % 2)).inc()

        threads = [
            threading.Thread(target=work, args=(i,))
            for i in range(self.N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = sum(child.value for _, child in fam.children())
        assert total == self.N_THREADS * self.N_OPS
