"""Integration: the hot paths actually emit spans with op counts.

These tests exercise the *wiring* -- encoders, the retraining engine,
the serve pipeline and the eval harness all call into
:mod:`repro.obs.trace` -- rather than the tracer itself (covered in
``test_trace.py``).
"""

import numpy as np
import pytest

from repro.core.classifier import HDClassifier
from repro.core.encoders import GenericEncoder
from repro.eval.harness import parallel_map
from repro.obs import trace as obs_trace
from repro.obs.export import CollectorSink, summarize


@pytest.fixture
def sink():
    s = CollectorSink()
    obs_trace.enable_tracing(s)
    yield s
    obs_trace.reset()


def _named(sink, name):
    return [rec for rec in sink.spans if rec["name"] == name]


class TestEncodeSpans:
    def test_encode_batch_emits_span_with_op_profile(self, sink):
        X = np.random.default_rng(0).normal(size=(8, 10))
        enc = GenericEncoder(dim=128, num_levels=8, seed=1,
                             engine="reference").fit(X)
        enc.encode_batch(X)
        (rec,) = _named(sink, "encode")
        assert rec["attrs"]["engine"] == "reference"
        assert rec["attrs"]["samples"] == 8
        assert rec["attrs"]["dim"] == 128
        profile = enc.op_profile()
        assert rec["ops"]["xor_ops"] == profile.xor_ops * 8
        assert rec["ops"]["mem_bytes"] == profile.mem_bytes * 8

    def test_engine_label_reflects_resolved_engine(self, sink):
        X = np.random.default_rng(0).normal(size=(4, 10))
        enc = GenericEncoder(dim=128, num_levels=8, seed=1,
                             engine="packed").fit(X)
        enc.encode_batch(X)
        (rec,) = _named(sink, "encode")
        assert rec["attrs"]["engine"] == "packed"

    def test_untraced_encode_emits_nothing(self):
        X = np.random.default_rng(0).normal(size=(4, 10))
        enc = GenericEncoder(dim=128, num_levels=8, seed=1).fit(X)
        enc.encode_batch(X)  # tracing disabled by the conftest fixture


class TestTrainSpans:
    def test_fit_emits_train_and_epoch_spans(self, sink, toy_problem):
        X_train, y_train, _, _ = toy_problem
        enc = GenericEncoder(dim=128, num_levels=8, seed=3)
        clf = HDClassifier(enc, epochs=3, seed=3).fit(X_train, y_train)
        (train,) = _named(sink, "train")
        assert train["attrs"]["engine"] in ("reference", "gram")
        assert train["attrs"]["epochs_run"] == clf.report_.epochs_run
        assert train["ops"]["mul_ops"] > 0  # similarity scoring MACs
        epochs = _named(sink, "train.epoch")
        assert len(epochs) == clf.report_.epochs_run
        assert all(e["path"] == "train/train.epoch" for e in epochs)
        assert [e["attrs"]["epoch"] for e in epochs] == list(
            range(len(epochs)))


class TestServeSpans:
    def test_serve_pipeline_emits_encode_and_search(self, sink,
                                                    serve_classifier,
                                                    serve_queries):
        from repro.serve.server import InferenceServer, ServeConfig

        server = InferenceServer(ServeConfig(n_workers=1))
        server.register("m", serve_classifier)
        with server:
            for x in serve_queries[:4]:
                server.predict("m", x)
        stages = summarize(sink.spans)
        assert stages["serve.encode"]["spans"] >= 1
        search = stages["serve.search"]
        assert search["spans"] >= 1
        assert search["add_ops"] > 0 and search["mul_ops"] > 0


class TestEvalSpans:
    def test_parallel_map_wraps_jobs(self, sink):
        out = parallel_map(_double, [1, 2, 3], n_jobs=1)
        assert out == [2, 4, 6]
        (outer,) = _named(sink, "eval.map")
        assert outer["attrs"]["items"] == 3
        assert outer["attrs"]["task"] == "_double"
        jobs = _named(sink, "eval.job")
        assert len(jobs) == 3
        assert all(j["path"] == "eval.map/eval.job" for j in jobs)
        assert sorted(j["attrs"]["index"] for j in jobs) == [0, 1, 2]

    def test_parallel_map_threaded_jobs_traced(self, sink):
        out = parallel_map(_double, list(range(6)), n_jobs=2, mode="thread")
        assert out == [0, 2, 4, 6, 8, 10]
        assert len(_named(sink, "eval.job")) == 6

    def test_untraced_map_identical(self):
        assert parallel_map(_double, [3, 4], n_jobs=1) == [6, 8]


def _double(x):
    return 2 * x


class TestTracedTable1:
    def test_tiny_run_produces_reportable_trace(self, sink, tmp_path):
        from repro.eval.experiments import table1
        from repro.obs.export import JsonlSink
        from repro.obs.report import render_trace_report

        jsonl = JsonlSink(tmp_path / "t1.jsonl")
        obs_trace.add_sink(jsonl)
        result = table1.run(profile="tiny", datasets=["ISOLET"],
                            include_ml=False)
        obs_trace.disable_tracing()
        jsonl.close()
        assert result.rows
        stages = summarize(sink.spans)
        assert "encode" in stages and "train" in stages
        assert stages["encode"]["xor_ops"] > 0
        report = render_trace_report(jsonl.path)
        assert "encode" in report and "total_uJ" in report
