"""Tests for the op-count -> energy bridge (repro.obs.energy)."""

import pytest

from repro.hardware.energy import EnergyModel, WORST_STATIC_W
from repro.hardware.params import DEFAULT_PARAMS
from repro.obs.energy import CLASS_MEM_STAGES, OpEnergyBridge


@pytest.fixture(scope="module")
def bridge():
    return OpEnergyBridge()


class TestEstimate:
    def test_zero_ops_zero_energy(self, bridge):
        est = bridge.estimate()
        assert est["ops"] == 0
        assert est["total_j"] == 0.0
        assert est["asic_time_s"] == 0.0

    def test_cycles_follow_lane_count(self, bridge):
        lanes = DEFAULT_PARAMS.lanes
        est = bridge.estimate(xor_ops=lanes * 1000)
        assert est["est_cycles"] == pytest.approx(1000)
        assert est["asic_time_s"] == pytest.approx(
            1000 / DEFAULT_PARAMS.clock_hz)

    def test_datapath_energy_linear_in_ops(self, bridge):
        e1 = bridge.estimate(xor_ops=1000)["datapath_j"]
        e2 = bridge.estimate(xor_ops=2000)["datapath_j"]
        assert e2 == pytest.approx(2 * e1)
        # op flavor doesn't matter for the datapath charge
        assert bridge.estimate(add_ops=1000)["datapath_j"] == pytest.approx(e1)

    def test_memory_charged_at_level_rate(self, bridge):
        model = EnergyModel(DEFAULT_PARAMS)
        bytes_per_row = DEFAULT_PARAMS.max_dim / 8.0
        est = bridge.estimate(mem_bytes=int(bytes_per_row) * 10,
                              stage="encode")
        assert est["memory_j"] == pytest.approx(10 * model.e_level_read)

    def test_search_stages_charge_class_memory(self, bridge):
        for stage in CLASS_MEM_STAGES:
            est = bridge.estimate(add_ops=100, mem_bytes=999, stage=stage)
            assert est["memory_j"] == pytest.approx(
                100 * bridge.e_class_word_j)

    def test_static_scales_with_asic_time_not_host_time(self, bridge):
        est = bridge.estimate(xor_ops=10**6)
        assert est["static_j"] == pytest.approx(
            WORST_STATIC_W * est["asic_time_s"])

    def test_totals_consistent(self, bridge):
        est = bridge.estimate(xor_ops=500, add_ops=200, mul_ops=100,
                              mem_bytes=4096)
        assert est["ops"] == 800
        assert est["dynamic_j"] == pytest.approx(
            est["datapath_j"] + est["memory_j"])
        assert est["total_j"] == pytest.approx(
            est["dynamic_j"] + est["static_j"])


class TestEstimateStages:
    def test_folds_a_summary(self, bridge):
        stages = {
            "encode": {"spans": 2, "wall_s": 0.1, "errors": 0,
                       "xor_ops": 1000, "add_ops": 100, "mul_ops": 0,
                       "mem_bytes": 256},
            "search": {"spans": 1, "wall_s": 0.05, "errors": 0,
                       "xor_ops": 0, "add_ops": 500, "mul_ops": 500,
                       "mem_bytes": 0},
            "idle": {"spans": 1, "wall_s": 1.0, "errors": 0,
                     "xor_ops": 0, "add_ops": 0, "mul_ops": 0,
                     "mem_bytes": 0},
        }
        out = bridge.estimate_stages(stages, skip=("idle",))
        assert set(out) == {"encode", "search"}
        assert out["encode"]["total_j"] > 0
        # search stage charged class-memory words for its adds
        assert out["search"]["memory_j"] == pytest.approx(
            500 * bridge.e_class_word_j)
