"""Tests for the trace report and the ``python -m repro.obs`` CLI."""

import json

import pytest

from repro.obs.report import main, render_trace_report, trace_report


@pytest.fixture
def trace_file(tmp_path):
    spans = [
        {"name": "encode", "seconds": 0.12,
         "attrs": {"engine": "packed"},
         "ops": {"xor_ops": 4_000_000, "add_ops": 1_000_000,
                 "mem_bytes": 2**21}},
        {"name": "encode", "seconds": 0.08,
         "ops": {"xor_ops": 1_000_000}},
        {"name": "train", "seconds": 0.90,
         "ops": {"mul_ops": 3_000_000, "add_ops": 3_000_000}},
        {"name": "train.epoch", "seconds": 0.30},
    ]
    path = tmp_path / "trace.jsonl"
    path.write_text("\n".join(json.dumps(s) for s in spans) + "\n")
    return path


class TestTraceReport:
    def test_aggregate_with_energy(self, trace_file):
        stages = trace_report(trace_file)
        assert stages["encode"]["spans"] == 2
        assert stages["encode"]["xor_ops"] == 5_000_000
        assert stages["encode"]["energy"]["total_j"] > 0
        # wall-time-only stages still get a (zero-energy) estimate row
        assert stages["train.epoch"]["energy"]["total_j"] == 0.0

    def test_no_energy(self, trace_file):
        stages = trace_report(trace_file, energy=False)
        assert "energy" not in stages["encode"]

    def test_render_sorted_by_wall_time(self, trace_file):
        text = render_trace_report(trace_file)
        assert "stage" in text and "total_uJ" in text
        lines = text.splitlines()
        train_row = next(i for i, l in enumerate(lines) if "train " in l or l.strip().startswith("train"))
        encode_row = next(i for i, l in enumerate(lines) if "encode" in l)
        assert train_row < encode_row  # train has the larger wall_s
        assert "5.00M" in text  # human-scaled op counts

    def test_render_empty_trace(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert "no spans recorded" in render_trace_report(empty)


class TestCli:
    def test_report_table(self, trace_file, capsys):
        assert main(["report", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "repro.obs report" in out
        assert "encode" in out and "train" in out

    def test_report_json(self, trace_file, capsys):
        assert main(["report", "--json", str(trace_file)]) == 0
        stages = json.loads(capsys.readouterr().out)
        assert stages["encode"]["spans"] == 2
        assert "energy" in stages["encode"]

    def test_report_no_energy(self, trace_file, capsys):
        assert main(["report", "--no-energy", "--json",
                     str(trace_file)]) == 0
        stages = json.loads(capsys.readouterr().out)
        assert "energy" not in stages["encode"]

    def test_missing_file_errors(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["report", str(tmp_path / "nope.jsonl")])
        assert "not found" in capsys.readouterr().err


def distributed_trace():
    """Synthetic 4-request distributed trace with one slow outlier."""
    spans = []
    for i in range(4):
        trace = f"{i:016x}".replace("0", "a", 1) if i == 0 else f"{i + 1:016x}"
        root = f"{0xbb00 + i:016x}"
        dispatch = f"{0xcc00 + i:016x}"
        slow = i == 3
        root_s = 0.5 if slow else 0.01
        spans.append({"name": "serve.request", "seconds": root_s,
                      "trace_id": trace, "span_id": root})
        spans.append({"name": "serve.dispatch", "seconds": root_s * 0.9,
                      "trace_id": trace, "span_id": dispatch,
                      "parent_span_id": root, "attrs": {"shard": i % 2}})
        spans.append({"name": "serve.search",
                      "seconds": root_s * 0.8 if slow else 0.001,
                      "trace_id": trace, "span_id": f"{0xdd00 + i:016x}",
                      "parent_span_id": dispatch,
                      "attrs": {"shard": i % 2}})
        spans.append({"name": "serve.encode", "seconds": 0.001,
                      "trace_id": trace, "span_id": f"{0xee00 + i:016x}",
                      "parent_span_id": dispatch,
                      "attrs": {"shard": i % 2}})
    return spans


class TestTraceAttribution:
    def test_untraced_spans_yield_none(self):
        from repro.obs.report import trace_attribution

        assert trace_attribution(
            [{"name": "encode", "seconds": 0.1}]
        ) is None

    def test_percentiles_and_tail_stage_dominance(self):
        from repro.obs.report import trace_attribution

        out = trace_attribution(distributed_trace())
        assert out["traces"] == 4 and out["roots"] == 4
        assert out["latency_s"]["max"] == pytest.approx(0.5)
        assert out["latency_s"]["p50"] == pytest.approx(0.01)
        # the p99 tail is the slow request; search on shard 1 dominates
        stages = out["tail"]["stages"]
        top = max(stages.items(), key=lambda kv: kv[1]["wall_s"])
        assert top[0] == "serve.dispatch[shard=1]"
        assert stages["serve.search[shard=1]"]["share_of_tail"] > 0.5

    def test_critical_path_follows_slowest_child(self):
        from repro.obs.report import trace_attribution

        out = trace_attribution(distributed_trace())
        slow_path = next(
            p for p in out["critical_paths"]
            if "serve.search[shard=1]" in p["path"]
        )
        assert slow_path["path"] == (
            "serve.request > serve.dispatch[shard=1] > "
            "serve.search[shard=1]"
        )
        # ranked by total wall time: the slow request's path leads
        assert out["critical_paths"][0] == slow_path

    def test_render_report_includes_attribution(self, tmp_path, capsys):
        path = tmp_path / "dist.jsonl"
        path.write_text("\n".join(
            json.dumps(s) for s in distributed_trace()
        ) + "\n")
        assert main(["report", "--no-energy", str(path)]) == 0
        out = capsys.readouterr().out
        assert "distributed traces: 4 rooted / 4 total" in out
        assert "critical paths" in out
        assert "serve.dispatch[shard=1]" in out

    def test_plain_trace_report_has_no_attribution(self, trace_file,
                                                   capsys):
        assert main(["report", "--no-energy", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "distributed traces" not in out
