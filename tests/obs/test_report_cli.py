"""Tests for the trace report and the ``python -m repro.obs`` CLI."""

import json

import pytest

from repro.obs.report import main, render_trace_report, trace_report


@pytest.fixture
def trace_file(tmp_path):
    spans = [
        {"name": "encode", "seconds": 0.12,
         "attrs": {"engine": "packed"},
         "ops": {"xor_ops": 4_000_000, "add_ops": 1_000_000,
                 "mem_bytes": 2**21}},
        {"name": "encode", "seconds": 0.08,
         "ops": {"xor_ops": 1_000_000}},
        {"name": "train", "seconds": 0.90,
         "ops": {"mul_ops": 3_000_000, "add_ops": 3_000_000}},
        {"name": "train.epoch", "seconds": 0.30},
    ]
    path = tmp_path / "trace.jsonl"
    path.write_text("\n".join(json.dumps(s) for s in spans) + "\n")
    return path


class TestTraceReport:
    def test_aggregate_with_energy(self, trace_file):
        stages = trace_report(trace_file)
        assert stages["encode"]["spans"] == 2
        assert stages["encode"]["xor_ops"] == 5_000_000
        assert stages["encode"]["energy"]["total_j"] > 0
        # wall-time-only stages still get a (zero-energy) estimate row
        assert stages["train.epoch"]["energy"]["total_j"] == 0.0

    def test_no_energy(self, trace_file):
        stages = trace_report(trace_file, energy=False)
        assert "energy" not in stages["encode"]

    def test_render_sorted_by_wall_time(self, trace_file):
        text = render_trace_report(trace_file)
        assert "stage" in text and "total_uJ" in text
        lines = text.splitlines()
        train_row = next(i for i, l in enumerate(lines) if "train " in l or l.strip().startswith("train"))
        encode_row = next(i for i, l in enumerate(lines) if "encode" in l)
        assert train_row < encode_row  # train has the larger wall_s
        assert "5.00M" in text  # human-scaled op counts

    def test_render_empty_trace(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert "no spans recorded" in render_trace_report(empty)


class TestCli:
    def test_report_table(self, trace_file, capsys):
        assert main(["report", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "repro.obs report" in out
        assert "encode" in out and "train" in out

    def test_report_json(self, trace_file, capsys):
        assert main(["report", "--json", str(trace_file)]) == 0
        stages = json.loads(capsys.readouterr().out)
        assert stages["encode"]["spans"] == 2
        assert "energy" in stages["encode"]

    def test_report_no_energy(self, trace_file, capsys):
        assert main(["report", "--no-energy", "--json",
                     str(trace_file)]) == 0
        stages = json.loads(capsys.readouterr().out)
        assert "energy" not in stages["encode"]

    def test_missing_file_errors(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["report", str(tmp_path / "nope.jsonl")])
        assert "not found" in capsys.readouterr().err
