"""Tests for the live dashboard renderer (repro.obs.top)."""

import json

from repro.obs.registry import Registry
from repro.obs.top import main, render_dashboard, render_prometheus_frame


def sample_stats():
    return {
        "queue": {"depth": 3, "maxsize": 1024},
        "policy": {"level": 1, "recent_p95_s": 0.004},
        "deployments": {
            "m": {"kind": "packed", "dim": 2048, "serving_dim": 1024,
                  "version": 2, "degraded": True},
        },
        "histograms": {
            "total": {"count": 40, "p50_s": 0.002, "p95_s": 0.004,
                      "p99_s": 0.005},
            "stage_seconds": {
                "('encode',)": {"count": 40, "p50_s": 0.001,
                                "p95_s": 0.002, "p99_s": 0.002},
            },
            "empty": {"count": 0},
        },
        "slo": {
            "availability": {"target": 0.99, "burn": {"5s": 3.0,
                                                      "60s": 2.5},
                             "breaching": True, "breach_count": 2},
        },
        "recorder": {"spans": 57, "events": 4, "bundles_written": 1,
                     "recent_events": [
                         {"kind": "worker_kill", "t": 1.0, "worker": 2},
                     ]},
        "shards": {
            "1": {"shard": 1, "pid": 222, "served": 16,
                  "busy_seconds": 0.4, "rss_kb": 40960},
            "0": {"shard": 0, "pid": 221, "served": 24,
                  "busy_seconds": 0.5, "rss_kb": 40960},
        },
    }


class TestRenderDashboard:
    def test_sections_present(self):
        frame = render_dashboard(sample_stats())
        for needle in ("queue 3/1024", "shed level 1", "model m",
                       "DEGRADED", "BREACH", "worker_kill",
                       "bundles 1", "shard  0", "shard  1"):
            assert needle in frame, needle

    def test_histograms_show_percentiles_and_skip_empty(self):
        frame = render_dashboard(sample_stats())
        assert "total" in frame
        assert "stage_seconds('encode',)" in frame
        assert "empty" not in frame

    def test_shards_sorted_by_id(self):
        frame = render_dashboard(sample_stats())
        assert frame.index("shard  0") < frame.index("shard  1")

    def test_no_slo_configured(self):
        stats = sample_stats()
        stats["slo"] = None
        assert "no objectives configured" in render_dashboard(stats)

    def test_minimal_stats_dict(self):
        # a thread-server stats() without sharding keys still renders
        frame = render_dashboard({"queue": {"depth": 0, "maxsize": 8}})
        assert "queue 0/8" in frame
        assert "shard" not in frame


class TestPrometheusFrame:
    def test_scrape_frame(self):
        reg = Registry(namespace="serve")
        reg.counter("served").inc(9)
        hist = reg.histogram("total")
        hist.record(0.002)
        reg.gauge("slo_burn_rate", labels=("slo", "window")).labels(
            slo="lat", window="5s").set(1.25)
        frame = render_prometheus_frame(reg.render_prometheus())
        assert "serve_served 9" in frame
        assert "n=1" in frame and "mean=2.000ms" in frame
        assert "slo_burn_rate" in frame


class TestCli:
    def test_requires_exactly_one_source(self, capsys):
        assert main() == 2
        assert main(stats_json="x", url="y") == 2

    def test_once_renders_stats_file(self, tmp_path, capsys):
        path = tmp_path / "stats.json"
        path.write_text(json.dumps(sample_stats()))
        assert main(stats_json=path, once=True) == 0
        out = capsys.readouterr().out
        assert "repro.obs top" in out
        assert "queue 3/1024" in out

    def test_unreadable_stats_file_still_renders(self, tmp_path, capsys):
        path = tmp_path / "missing.json"
        assert main(stats_json=path, once=True) == 0
        assert "unreadable" in capsys.readouterr().out
