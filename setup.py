"""Legacy setup shim.

The execution environment ships setuptools without the ``wheel`` package,
so PEP 517 editable installs fail with "invalid command 'bdist_wheel'".
This shim lets ``pip install -e . --no-use-pep517`` (and plain
``pip install -e .`` on modern toolchains via pyproject.toml) work.
"""

from setuptools import setup

setup()
